//! Quickstart: simulate a small research cluster for a week and compute
//! the paper's headline reliability numbers from its telemetry.
//!
//! Run with: `cargo run --release --example quickstart`

use rsc_reliability::analysis::attribution::{cause_rates, AttributionConfig};
use rsc_reliability::analysis::mttf::{estimate_node_failure_rate, MttfProjection};
use rsc_reliability::analysis::report::status_breakdown;
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::SimDuration;

fn main() {
    // A 64-node (512 GPU) cluster with RSC-1-like failure behaviour.
    let config = SimConfig::small_test_cluster();
    println!(
        "simulating {} ({} GPUs) for 28 days...",
        config.cluster.name(),
        config.cluster.total_gpus()
    );
    let mut sim = ClusterSim::new(config, 42);
    sim.run(SimDuration::from_days(28));
    println!("mean utilization: {:.1}%", sim.mean_utilization() * 100.0);
    let telemetry = sim.into_telemetry().seal();

    println!("\njob records: {}", telemetry.jobs().len());
    println!("health events: {}", telemetry.health_events().len());
    println!(
        "injected failures (ground truth): {}",
        telemetry.ground_truth_failures().len()
    );

    println!("\nscheduler status breakdown:");
    for share in status_breakdown(&telemetry) {
        if share.job_fraction > 0.0 {
            println!(
                "  {:<14} {:>6.2}% of jobs, {:>6.2}% of GPU time",
                share.status.label(),
                share.job_fraction * 100.0,
                share.gpu_time_fraction * 100.0
            );
        }
    }

    let attribution = AttributionConfig::paper_default();
    let rates = cause_rates(&telemetry, &attribution);
    println!("\ntop attributed failure causes (per GPU-hour):");
    for (cause, rate) in rates.rates.iter().take(5) {
        let label = cause.map(|c| c.label()).unwrap_or("unattributed");
        println!("  {label:<16} {rate:.2e}");
    }

    // Small clusters see few large-job failures in a week; fall back to the
    // paper's published rate when the estimate is empty.
    let r_f = estimate_node_failure_rate(&telemetry, &attribution, 8);
    let r_f = if r_f > 0.0 { r_f } else { 6.5e-3 };
    let projection = MttfProjection::new(r_f);
    println!(
        "\nnode failure rate: {:.2} per 1000 node-days",
        r_f * 1000.0
    );
    println!("projected MTTF if this cluster ran one giant job:");
    for gpus in [512u32, 4096, 16_384] {
        println!("  {gpus:>6} GPUs -> {:>7.1} h", projection.mttf_hours(gpus));
    }
}
