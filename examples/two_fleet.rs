//! Two-fleet concurrent run: RSC-1 and RSC-2 simulated side by side in one
//! process, reduced to the paper's cross-fleet comparison (§III).
//!
//! Both fleets execute concurrently on the scenario runner's worker pool
//! with independently derived seeds; each fleet's sealed telemetry lands
//! in the artifact cache under its own fingerprint, and the combined
//! comparison is written as `two_fleet_comparison.csv`.
//!
//! Run with: `cargo run --release --example two_fleet [-- days [seed]]`
//! (defaults: scaled-down fleets over 30 days — pass `--full` as the
//! days argument suffix, e.g. `30 42 --full`, for full-size fleets).

use rsc_reliability::sim::fleet::FleetSet;
use rsc_reliability::sim::{ScenarioRunner, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut nums = args.iter().filter(|a| *a != "--full");
    let days: u64 = nums
        .next()
        .map(|v| v.parse().expect("days must be an integer"))
        .unwrap_or(30);
    let seed: u64 = nums
        .next()
        .map(|v| v.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    let runner = ScenarioRunner::new().workers(2);
    let set = if full {
        FleetSet::rsc_pair(runner, seed, days)
    } else {
        // Divisor-8 fleets keep the example interactive (~seconds) while
        // preserving each preset's workload mix and failure rates.
        let mut set = FleetSet::new(runner);
        set.add_fleet("RSC-1/8", SimConfig::rsc1().scaled_down(8), seed, days);
        set.add_fleet("RSC-2/8", SimConfig::rsc2().scaled_down(8), seed, days);
        set
    };

    println!("two-fleet run: {} days, base seed {seed}", days);
    for fleet in set.fleets() {
        println!(
            "  {:<8} {:>7} nodes  seed {}",
            fleet.name,
            fleet.scenario.config.cluster.num_nodes(),
            fleet.scenario.seed
        );
    }

    let t0 = std::time::Instant::now();
    let result = set.run();
    println!(
        "\nsimulated {} fleets in {:.2} s (cache: {} hit, {} miss)",
        result.fleets.len(),
        t0.elapsed().as_secs_f64(),
        result.cache.hits,
        result.cache.misses
    );
    for fleet in &result.fleets {
        println!(
            "  {:<8} artifact {:016x}.snap  ({} job records)",
            fleet.name,
            fleet.fingerprint,
            fleet.view.jobs().len()
        );
    }

    let cmp = result.comparison();
    println!(
        "\n{:<8} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "fleet", "nodes", "jobs", "node-fails", "fail/1k n-d", "gpu swaps", "exclusions"
    );
    for r in &cmp.rows {
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>12.3} {:>10} {:>10}",
            r.name,
            r.nodes,
            r.job_records,
            r.node_fails,
            r.failures_per_1000_node_days,
            r.gpu_swaps,
            r.exclusions
        );
    }
    if cmp.rows.len() == 2 && cmp.rows[1].failures_per_1000_node_days > 0.0 {
        println!(
            "\ncross-fleet failure-rate ratio: {:.2}x (paper §III: ≈2.8x RSC-1 vs RSC-2)",
            cmp.rows[0].failures_per_1000_node_days / cmp.rows[1].failures_per_1000_node_days
        );
    }

    let out = "two_fleet_comparison.csv";
    std::fs::write(out, cmp.to_csv()).expect("write comparison CSV");
    println!("[csv] wrote {out}");
}
