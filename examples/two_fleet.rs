//! Two-fleet concurrent run: RSC-1 and RSC-2 simulated side by side in one
//! process, reduced to the paper's cross-fleet comparison (§III).
//!
//! Both fleets execute concurrently on the scenario runner's worker pool
//! with independently derived seeds; each fleet's sealed telemetry lands
//! in the artifact cache under its own fingerprint, and the combined
//! comparison is written as `two_fleet_comparison.csv`.
//!
//! Run with: `cargo run --release --example two_fleet [-- days [seed]]`
//! (defaults: scaled-down fleets over 30 days — pass `--full` as the
//! days argument suffix, e.g. `30 42 --full`, for full-size fleets).
//!
//! `--memory-budget BYTES` caps the set's combined resident telemetry:
//! the cap splits across the fleets proportionally to node count and each
//! fleet spills rotated segments under its share. `--memory-budget auto`
//! derives the cap from the cgroup v2 limit (half of
//! `memory.max`/`memory.high`), falling back to 4 GiB outside a limited
//! cgroup. Sealed telemetry and the comparison CSV are byte-identical
//! with or without a budget.

use rsc_reliability::sim::fleet::FleetSet;
use rsc_reliability::sim::{ScenarioRunner, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut budget_arg: Option<String> = None;
    let mut nums = Vec::new();
    let mut iter = args.iter().filter(|a| *a != "--full");
    while let Some(a) = iter.next() {
        if a == "--memory-budget" {
            budget_arg = Some(
                iter.next()
                    .expect("--memory-budget needs BYTES or `auto`")
                    .clone(),
            );
        } else {
            nums.push(a.clone());
        }
    }
    let days: u64 = nums
        .first()
        .map(|v| v.parse().expect("days must be an integer"))
        .unwrap_or(30);
    let seed: u64 = nums
        .get(1)
        .map(|v| v.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    let runner = ScenarioRunner::new().workers(2);
    let mut set = if full {
        FleetSet::rsc_pair(runner, seed, days)
    } else {
        // Divisor-8 fleets keep the example interactive (~seconds) while
        // preserving each preset's workload mix and failure rates.
        let mut set = FleetSet::new(runner);
        set.add_fleet("RSC-1/8", SimConfig::rsc1().scaled_down(8), seed, days);
        set.add_fleet("RSC-2/8", SimConfig::rsc2().scaled_down(8), seed, days);
        set
    };
    match budget_arg.as_deref() {
        Some("auto") => {
            let cap = set.set_auto_memory_budget(4 << 30);
            println!("memory budget: {:.1} MiB global (auto)", mib(cap));
        }
        Some(v) => {
            let cap: usize = v.parse().expect("--memory-budget BYTES must be an integer");
            set.set_global_memory_budget(cap);
            println!("memory budget: {:.1} MiB global", mib(cap));
        }
        None => {}
    }
    if let Some(shares) = set.fleet_budgets() {
        for (fleet, share) in set.fleets().iter().zip(&shares) {
            println!("  {:<8} {:>9.1} MiB share", fleet.name, mib(*share));
        }
    }

    println!("two-fleet run: {} days, base seed {seed}", days);
    for fleet in set.fleets() {
        println!(
            "  {:<8} {:>7} nodes  seed {}",
            fleet.name,
            fleet.scenario.config.cluster.num_nodes(),
            fleet.scenario.seed
        );
    }

    let t0 = std::time::Instant::now();
    let result = set.run();
    println!(
        "\nsimulated {} fleets in {:.2} s (cache: {} hit, {} miss)",
        result.fleets.len(),
        t0.elapsed().as_secs_f64(),
        result.cache.hits,
        result.cache.misses
    );
    for fleet in &result.fleets {
        println!(
            "  {:<8} artifact {:016x}.snap  ({} job records)",
            fleet.name,
            fleet.fingerprint,
            fleet.view.jobs().len()
        );
    }

    let cmp = result.comparison();
    println!(
        "\n{:<8} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "fleet", "nodes", "jobs", "node-fails", "fail/1k n-d", "gpu swaps", "exclusions"
    );
    for r in &cmp.rows {
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>12.3} {:>10} {:>10}",
            r.name,
            r.nodes,
            r.job_records,
            r.node_fails,
            r.failures_per_1000_node_days,
            r.gpu_swaps,
            r.exclusions
        );
    }
    if cmp.rows.len() == 2 && cmp.rows[1].failures_per_1000_node_days > 0.0 {
        println!(
            "\ncross-fleet failure-rate ratio: {:.2}x (paper §III: ≈2.8x RSC-1 vs RSC-2)",
            cmp.rows[0].failures_per_1000_node_days / cmp.rows[1].failures_per_1000_node_days
        );
    }

    let out = "two_fleet_comparison.csv";
    std::fs::write(out, cmp.to_csv()).expect("write comparison CSV");
    println!("[csv] wrote {out}");
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
