//! Adaptive routing walkthrough: degrade fabric links with a simulated
//! `mlxreg` register write and watch a 512-GPU All-Reduce's bandwidth with
//! static vs adaptive routing (the paper's §IV-B / Fig. 12 experiments).
//!
//! Run with: `cargo run --release --example adaptive_routing`

use rsc_reliability::cluster::ids::NodeId;
use rsc_reliability::cluster::spec::ClusterSpec;
use rsc_reliability::network::collective::{evaluate_collectives, AllReduce};
use rsc_reliability::network::experiments::contention_experiment;
use rsc_reliability::network::fabric::{Fabric, LinkId, SPINE_PLANES};
use rsc_reliability::network::routing::RoutingPolicy;

fn main() {
    let spec = ClusterSpec::new("demo", 64); // 512 GPUs
    let mut fabric = Fabric::new(&spec);
    let allreduce = AllReduce::new((0..64).map(NodeId::new).collect());
    println!("512-GPU ring All-Reduce over {} pods\n", spec.num_pods());

    let policies = [
        ("adaptive routing", RoutingPolicy::Adaptive),
        (
            "static + SHIELD",
            RoutingPolicy::Static {
                shield_threshold: 0.95,
            },
        ),
    ];

    println!("healthy fabric:");
    for (name, policy) in policies {
        let bw = evaluate_collectives(&fabric, std::slice::from_ref(&allreduce), policy);
        println!("  {name:<18} {:>7.0} Gb/s busbw", bw.busbw_gbps[0]);
    }

    // Degrade 50% of uplinks by 80% — a bad optics batch.
    let mut degraded = 0;
    for pod in 0..spec.num_pods() {
        for rail in 0..8u8 {
            for plane in 0..SPINE_PLANES as u8 {
                if (pod + rail as u32 + plane as u32).is_multiple_of(2) {
                    fabric.inject_error_rate(LinkId::Uplink { pod, rail, plane }, 0.8);
                    degraded += 1;
                }
            }
        }
    }
    println!("\ninjected 80% error rate on {degraded} uplinks (mlxreg-style):");
    for (name, policy) in policies {
        let bw = evaluate_collectives(&fabric, std::slice::from_ref(&allreduce), policy);
        println!("  {name:<18} {:>7.0} Gb/s busbw", bw.busbw_gbps[0]);
    }

    println!("\ncontention study: 64 concurrent 2-node All-Reduce groups:");
    let result = contention_experiment(64, 99);
    let (mean_ar, mean_st) = result.means();
    let (cv_ar, cv_st) = result.cvs();
    println!("  adaptive:  mean {mean_ar:>6.0} Gb/s, coeff. of variation {cv_ar:.3}");
    println!("  static:    mean {mean_st:>6.0} Gb/s, coeff. of variation {cv_st:.3}");
    println!("\n(paper Obs. 12: without resilience mechanisms, more than half the");
    println!(" fabric bandwidth can be lost to a few bad links)");
}
