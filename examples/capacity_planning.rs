//! Capacity planning for a future AI supercomputer: project MTTF and
//! checkpoint requirements across candidate cluster sizes and reliability
//! grades (the paper's §III "looking towards the future" exercise).
//!
//! Run with: `cargo run --release --example capacity_planning`

use rsc_reliability::analysis::ettr::requirements::max_coupled_interval_mins;
use rsc_reliability::analysis::mttf::MttfProjection;

fn main() {
    let sizes = [16_384u32, 32_768, 65_536, 100_000, 131_072];
    let grades = [
        ("RSC-1 grade (6.50/1k node-days)", 6.50e-3),
        ("RSC-2 grade (2.34/1k node-days)", 2.34e-3),
        ("next-gen    (1.00/1k node-days)", 1.00e-3),
    ];

    println!("projected MTTF of a full-cluster job:");
    print!("{:>36}", "");
    for s in sizes {
        print!("{s:>12}");
    }
    println!();
    for (label, r_f) in grades {
        let proj = MttfProjection::new(r_f);
        print!("{label:>36}");
        for s in sizes {
            let h = proj.mttf_hours(s);
            let cell = if h >= 1.0 {
                format!("{h:.1}h")
            } else {
                format!("{:.0}min", h * 60.0)
            };
            print!("{cell:>12}");
        }
        println!();
    }

    println!("\ncheckpoint cadence needed for E[ETTR] = 0.9 (u0 coupled, 1-min queues):");
    print!("{:>36}", "");
    for s in sizes {
        print!("{s:>12}");
    }
    println!();
    for (label, r_f) in grades {
        print!("{label:>36}");
        for s in sizes {
            let cell = match max_coupled_interval_mins(s, r_f, 0.9, 1.0, 7.0) {
                Some(m) if m >= 1.0 => format!("{m:.0}min"),
                Some(m) => format!("{:.0}s", m * 60.0),
                None => "n/a".to_string(),
            };
            print!("{cell:>12}");
        }
        println!();
    }

    println!("\nreading: at 100k GPUs even an RSC-2-grade fleet needs ~2-minute");
    println!("checkpoint+restart cycles for ETTR 0.9 — motivating the paper's call");
    println!("for fault-tolerant training that *copes with* failure rather than");
    println!("merely recovering from it.");
}
