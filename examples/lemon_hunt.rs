//! Lemon hunt: plant defective nodes in a simulated cluster, run a month
//! of workload, then find them from telemetry alone — the paper's §IV-A
//! detection pipeline end to end.
//!
//! Run with: `cargo run --release --example lemon_hunt`

use rsc_reliability::analysis::lemon::{compute_features, DetectionQuality, LemonDetector};
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::{SimDuration, SimTime};

fn main() {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 4;
    let mut sim = ClusterSim::new(config, 1234);
    let truth = sim.lemons().node_ids();
    println!(
        "planted {} lemons among 64 nodes (ground truth hidden from the detector)",
        truth.len()
    );
    for lemon in sim.lemons().lemons() {
        println!(
            "  {} root cause: {}, +{:.2} failures/day",
            lemon.node, lemon.root_cause, lemon.extra_rate_per_day
        );
    }

    sim.run(SimDuration::from_days(28));
    let store = sim.into_telemetry().seal();

    let features = compute_features(&store, SimTime::ZERO, store.horizon());
    let detector = LemonDetector::rsc_default();

    println!("\nnodes scoring ≥1 detection criterion:");
    println!(
        "{:>8} {:>6} {:>5} {:>8} {:>10} {:>12} {:>12} {:>7}",
        "node", "excl", "xids", "tickets", "out_count", "multi_fails", "single_fails", "score"
    );
    for f in &features {
        let score = detector.score(f);
        if score >= 1 {
            let marker = if truth.contains(&f.node) {
                " <- lemon"
            } else {
                ""
            };
            println!(
                "{:>8} {:>6} {:>5} {:>8} {:>10} {:>12} {:>12} {:>7}{marker}",
                f.node.to_string(),
                f.excl_jobid_count,
                f.xid_cnt,
                f.tickets,
                f.out_count,
                f.multi_node_node_fails,
                f.single_node_node_fails,
                score
            );
        }
    }

    let detected = detector.detect(&features);
    let quality = DetectionQuality::evaluate(&detected, &truth);
    println!(
        "\nflagged {} nodes: precision {:.0}%, recall {:.0}% (paper: >85% accuracy)",
        detected.len(),
        quality.precision() * 100.0,
        quality.recall() * 100.0
    );
}
