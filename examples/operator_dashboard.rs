//! Operator dashboard: one month of a simulated cluster condensed into the
//! health report an on-call infra engineer would want — the operational
//! counterpart of the paper's measurement methodology.
//!
//! Run with: `cargo run --release --example operator_dashboard`

use rsc_reliability::analysis::attribution::{
    cause_rates, completed_jobs_seeing_checks, AttributionConfig,
};
use rsc_reliability::analysis::availability::{fleet_availability, worst_nodes};
use rsc_reliability::analysis::cluster_goodput::goodput_waterfall;
use rsc_reliability::analysis::fit::fit_failure_process;
use rsc_reliability::analysis::lemon::{compute_features, LemonDetector};
use rsc_reliability::analysis::queueing::{mean_wait_hours, wait_by_size_and_qos};
use rsc_reliability::sched::job::QosClass;
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::{SimDuration, SimTime};

fn main() {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 3;
    let mut sim = ClusterSim::new(config, 2026);
    sim.run(SimDuration::from_days(30));
    let util = sim.mean_utilization();
    let store = sim.into_telemetry().seal();

    println!(
        "=== cluster health report: {} (30 days) ===",
        store.cluster_name()
    );
    println!(
        "jobs: {}   utilization: {:.1}%",
        store.jobs().len(),
        util * 100.0
    );

    // Goodput waterfall.
    let w = goodput_waterfall(
        &store,
        8,
        SimDuration::from_mins(60),
        SimDuration::from_mins(5),
    );
    let (p, r, l, i) = w.fractions();
    println!("\n-- goodput waterfall (fraction of capacity) --");
    println!(
        "  productive {:.1}% | restart {:.2}% | replay {:.2}% | idle {:.1}%",
        p * 100.0,
        r * 100.0,
        l * 100.0,
        i * 100.0
    );

    // Fleet availability.
    let fleet = fleet_availability(&store);
    println!("\n-- availability --");
    println!(
        "  fleet availability {:.3}%, MTTR {:.1} h (p90 {:.1} h), {:.1} node-days lost",
        fleet.fleet_availability * 100.0,
        fleet.mttr_hours,
        fleet.mttr_p90_hours,
        fleet.lost_node_days
    );
    println!("  worst nodes:");
    for a in worst_nodes(&fleet, 3) {
        println!(
            "    {}: {} repairs, {:.1} h down",
            a.node,
            a.repairs,
            a.downtime.as_hours()
        );
    }

    // Failure causes + process character.
    let rates = cause_rates(&store, &AttributionConfig::paper_default());
    println!("\n-- top failure causes (per GPU-hour) --");
    for (cause, rate) in rates.rates.iter().take(4) {
        println!(
            "    {:<16} {rate:.2e}",
            cause.map(|c| c.label()).unwrap_or("unattributed")
        );
    }
    if let Some(fit) = fit_failure_process(&store, 20) {
        let verdict = if fit.shape < 0.85 {
            "bursty — look for shared causes"
        } else if fit.shape > 1.15 {
            "suspiciously regular"
        } else {
            "Poisson-like, 1/N projections apply"
        };
        println!(
            "  failure process: Weibull shape {:.2} over {} gaps ({verdict})",
            fit.shape, fit.samples
        );
    }

    // Check calibration.
    let calib = completed_jobs_seeing_checks(&store);
    println!("\n-- health-check calibration --");
    println!(
        "  {:.2}% of completed jobs saw a failed check (target: <1%)",
        calib * 100.0
    );

    // Queueing.
    println!("\n-- queueing --");
    println!("  mean wait overall: {:.2} h", mean_wait_hours(&store));
    for b in wait_by_size_and_qos(&store) {
        if b.qos == QosClass::High && b.count >= 5 {
            println!(
                "  high-QoS {:>4}+ GPUs: {:.2} h mean over {} starts",
                b.gpus_lo, b.mean_wait_hours, b.count
            );
        }
    }

    // Lemon candidates.
    let features = compute_features(&store, SimTime::ZERO, store.horizon());
    let detector = LemonDetector::rsc_default();
    let flagged = detector.detect(&features);
    println!("\n-- lemon candidates --");
    if flagged.is_empty() {
        println!("  none flagged this window");
    }
    for node in &flagged {
        let f = &features[node.as_usize()];
        println!(
            "  {} (tickets {}, out {}, multi-node fails {}, xids {})",
            node, f.tickets, f.out_count, f.multi_node_node_fails, f.xid_cnt
        );
    }
    println!("\n(every number above computes from the same JobRecord/HealthEvent/");
    println!(" NodeEvent streams a production Slurm cluster already has)");
}
