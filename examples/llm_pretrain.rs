//! LLM pretraining reliability study: how checkpoint cadence and failure
//! rate shape the Effective Training Time Ratio of a large run — the
//! workload that motivates the paper's §III analysis.
//!
//! Run with: `cargo run --release --example llm_pretrain`

use rsc_reliability::analysis::ettr::analytical::{expected_ettr, EttrParams};
use rsc_reliability::analysis::ettr::montecarlo::monte_carlo_ettr;
use rsc_reliability::analysis::ettr::requirements::max_coupled_interval_mins;
use rsc_reliability::simcore::rng::SimRng;

fn main() {
    // A hypothetical multi-week pretraining run on half of RSC-1.
    let gpus = 8_192u32;
    let nodes = gpus / 8;
    let r_f = 6.5e-3; // RSC-1's failures per node-day
    println!(
        "pretraining run: {gpus} GPUs ({nodes} nodes), r_f = {:.2}/1000 node-days",
        r_f * 1000.0
    );
    println!("MTTF for this run: {:.1} h\n", 24.0 / (nodes as f64 * r_f));

    println!(
        "{:>18} {:>12} {:>14}",
        "checkpoint every", "E[ETTR]", "monte carlo"
    );
    println!("{}", "-".repeat(48));
    let mut rng = SimRng::seed_from(7);
    for ckpt_mins in [120.0, 60.0, 30.0, 15.0, 5.0] {
        let params = EttrParams {
            nodes,
            r_f,
            queue_time: 2.0 / 60.0 / 24.0,
            restart_overhead: 5.0 / 60.0 / 24.0,
            checkpoint_interval: ckpt_mins / 60.0 / 24.0,
            productive_time: 14.0, // two weeks of productive training
        };
        let analytic = expected_ettr(&params);
        let mc = monte_carlo_ettr(&params, 2_000, &mut rng);
        println!(
            "{:>14} min {:>12.3} {:>10.3} ±{:.3}",
            ckpt_mins,
            analytic,
            mc.mean,
            1.645 * mc.std_error
        );
    }

    println!("\nhow good must the infrastructure get? (ETTR 0.9 targets)");
    for (label, rate) in [
        ("RSC-1-like rate", 6.5e-3),
        ("RSC-2-like rate", 2.34e-3),
        ("2x better than RSC-2", 1.17e-3),
    ] {
        match max_coupled_interval_mins(gpus, rate, 0.9, 1.0, 14.0) {
            Some(mins) => println!("  {label:<22} checkpoint (and restart) every {mins:.0} min"),
            None => println!("  {label:<22} unreachable at any checkpoint cadence"),
        }
    }
    println!("\n(the paper's Obs. 10: hourly checkpoints already cost an 8k-GPU run");
    println!(" noticeable ETTR; at 100k GPUs they become untenable)");
}
