//! NCCL-timeout triage: reproduce the paper's §V debugging methodology —
//! compare per-rank collective logs to find the first collective where
//! some ranks arrived and others did not, and classify the likely domain.
//!
//! Run with: `cargo run --release --example nccl_timeout_triage`

use rsc_reliability::analysis::nccl_debug::{
    diagnose, healthy_traces, CollectiveKind, TimeoutVerdict,
};

fn describe(verdict: &TimeoutVerdict) {
    match verdict {
        TimeoutVerdict::NoHangObserved => {
            println!("  -> no hang in this window; look elsewhere");
        }
        TimeoutVerdict::MismatchedCollectives { seq, variants } => {
            println!("  -> SPMD mismatch at collective #{seq} (user-program domain):");
            for (kind, ranks) in variants {
                println!("       {kind} issued by ranks {ranks:?}");
            }
            println!("     fix the divergent branch; the network is innocent");
        }
        TimeoutVerdict::MissingRanks { seq, missing } => {
            println!("  -> collective #{seq} never saw ranks {missing:?}");
            println!("     those ranks are stuck *before* the collective — check their");
            println!("     hosts (crash, data loader, preempted process) first");
        }
        TimeoutVerdict::StuckInCollective { seq } => {
            println!("  -> every rank entered collective #{seq}, none left:");
            println!("     suspect the fabric between participants (hardware domain)");
        }
    }
}

fn main() {
    println!("scenario 1: a healthy 16-rank run");
    let traces = healthy_traces(16, 100);
    describe(&diagnose(&traces));

    println!("\nscenario 2: rank 5's data loader wedges before step 42");
    let mut traces = healthy_traces(16, 100);
    traces[5].ops.truncate(42);
    for t in traces.iter_mut() {
        for op in t.ops.iter_mut() {
            if op.seq >= 42 {
                op.exited = false;
            }
        }
    }
    describe(&diagnose(&traces));

    println!("\nscenario 3: a branch on rank 0 issues an extra broadcast");
    let mut traces = healthy_traces(8, 50);
    for t in traces.iter_mut() {
        for op in t.ops.iter_mut() {
            if op.seq >= 17 {
                op.exited = false;
            }
        }
    }
    traces[0].ops[17].kind = CollectiveKind::Broadcast;
    describe(&diagnose(&traces));

    println!("\nscenario 4: an IB link dies mid-all-reduce");
    let mut traces = healthy_traces(8, 50);
    for t in traces.iter_mut() {
        for op in t.ops.iter_mut() {
            if op.seq == 30 {
                op.exited = false;
            }
            if op.seq > 30 {
                op.entered = false;
                op.exited = false;
            }
        }
    }
    describe(&diagnose(&traces));

    println!("\n(paper §V: \"by logging which ranks started each collective … we can");
    println!(" find the first collective where some ranks started the collective but");
    println!(" others did not, and further investigate the missing ranks\")");
}
