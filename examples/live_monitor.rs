//! Live monitor: attach the streaming reliability monitor to a month-long
//! simulated run and read the cluster's health off the event bus — no
//! sealed telemetry, no batch pass. Prints the alert timeline the on-call
//! channel would have seen, then the end-of-run monitor summary.
//!
//! Run with: `cargo run --release --example live_monitor`

use rsc_reliability::monitor::config::MonitorConfig;
use rsc_reliability::monitor::monitor::ReliabilityMonitor;
use rsc_reliability::sim::bus::SharedObserver;
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::SimDuration;

fn main() {
    // A small cluster with a few seeded lemons so the alert pipeline has
    // something to find.
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 3;

    let handle = SharedObserver::new(ReliabilityMonitor::new(MonitorConfig::rsc_default()));
    let mut sim = ClusterSim::new(config, 2026);
    sim.attach_observer(Box::new(handle.clone()));
    sim.run(SimDuration::from_days(30));
    drop(sim); // release the simulator's clone of the handle

    let monitor = handle.try_into_inner().expect("sole handle");
    let report = monitor.report();

    println!(
        "=== live monitor: {} ({} nodes, 30 days) ===",
        report.cluster, report.num_nodes
    );

    println!("\n-- alert timeline --");
    if report.alerts.is_empty() {
        println!("  (no alerts raised)");
    }
    for alert in &report.alerts {
        let node = alert
            .key
            .node()
            .map(|n| format!(" {n}"))
            .unwrap_or_default();
        let cleared = match alert.cleared_at {
            Some(at) => format!("cleared day {:.1}", at.as_days()),
            None => "still active".to_string(),
        };
        println!(
            "  day {:>5.1}  {:<16}{node}  {} ({})",
            alert.raised_at.as_days(),
            alert.key.label(),
            alert.message,
            cleared
        );
    }

    println!("\n-- end-of-run summary --");
    for line in report.summary_lines() {
        println!("  {line}");
    }

    println!("\n(the same numbers stream from a cache replay: see");
    println!(" rsc_reliability::monitor::runner::MonitoredRunner)");
}
