//! Offline stand-in for `rand` 0.8.
//!
//! The workspace funnels every random draw through
//! `rsc_sim_core::rng::SimRng`, which uses exactly four pieces of the rand
//! API: `StdRng::seed_from_u64`, `RngCore::next_u64`, `Rng::gen::<f64>()`,
//! and `Rng::gen_range(Range<u64>)`. This build environment cannot reach
//! crates.io, so this crate reimplements that surface **bit-exactly**
//! against rand 0.8.5 + rand_chacha 0.3:
//!
//! - `SeedableRng::seed_from_u64` expands the 64-bit seed with the PCG32
//!   output function (same multiplier/increment/rotation as rand_core 0.6).
//! - `StdRng` is ChaCha12 in the djb variant (64-bit block counter in
//!   words 12–13, 64-bit stream in words 14–15, both zero), emitting the
//!   keystream four blocks per refill in sequential block order, words
//!   little-endian — matching `rand_chacha::ChaCha12Rng`.
//! - `next_u64` follows rand_core `BlockRng` semantics: two consecutive
//!   u32 words, low word first.
//! - `gen::<f64>()` is the `Standard` distribution's 53-bit multiply.
//! - `gen_range(low..high)` is the widening-multiply rejection sampler
//!   (`sample_single`) from rand 0.8's `UniformInt`.
//!
//! Keeping these bit-exact preserves every pinned-seed expectation in the
//! repo (sealed snapshot bytes, lockstep suites, bench determinism gates).

use core::ops::Range;

/// Core RNG trait, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable RNG trait, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed via PCG32 expansion (rand_core 0.6).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling from the `Standard` distribution (the `rng.gen::<T>()` path).
pub trait StandardSample: Sized {
    /// Draw one value with the same bit-consumption as rand 0.8's
    /// `Standard` distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 `Standard` for f64: 53-bit multiply into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Uniform sampling over a half-open range (the `rng.gen_range` path).
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[low, high)` with rand 0.8's `sample_single`
    /// bit-consumption.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<u64>) -> u64 {
        let (low, high) = (range.start, range.end);
        assert!(low < high, "gen_range: empty range");
        // rand 0.8 UniformInt::<u64>::sample_single — Lemire widening
        // multiply with a rejection zone aligned to the top of the word.
        let span = high.wrapping_sub(low);
        let zone = (span << span.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let wide = (v as u128) * (span as u128);
            let (hi, lo) = ((wide >> 64) as u64, wide as u64);
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }
}

/// Convenience methods over any `RngCore`, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_ROUNDS: usize = 12;
    /// Words per refill: rand_chacha generates four 16-word blocks at a time.
    const BUF_WORDS: usize = 64;

    /// The standard RNG: ChaCha12, bit-compatible with
    /// `rand::rngs::StdRng` from rand 0.8 (which is
    /// `rand_chacha::ChaCha12Rng`).
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    impl core::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("StdRng").finish_non_exhaustive()
        }
    }

    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            for blk in 0..4u64 {
                let counter = self.counter.wrapping_add(blk);
                let mut x: [u32; 16] = [
                    0x6170_7865,
                    0x3320_646e,
                    0x7962_2d32,
                    0x6b20_6574,
                    self.key[0],
                    self.key[1],
                    self.key[2],
                    self.key[3],
                    self.key[4],
                    self.key[5],
                    self.key[6],
                    self.key[7],
                    counter as u32,
                    (counter >> 32) as u32,
                    0,
                    0,
                ];
                let initial = x;
                for _ in 0..CHACHA_ROUNDS / 2 {
                    quarter(&mut x, 0, 4, 8, 12);
                    quarter(&mut x, 1, 5, 9, 13);
                    quarter(&mut x, 2, 6, 10, 14);
                    quarter(&mut x, 3, 7, 11, 15);
                    quarter(&mut x, 0, 5, 10, 15);
                    quarter(&mut x, 1, 6, 11, 12);
                    quarter(&mut x, 2, 7, 8, 13);
                    quarter(&mut x, 3, 4, 9, 14);
                }
                let base = blk as usize * 16;
                for i in 0..16 {
                    self.buf[base + i] = x[i].wrapping_add(initial[i]);
                }
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, w) in key.iter_mut().enumerate() {
                *w = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                // Empty buffer: first draw triggers a refill.
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        fn next_u64(&mut self) -> u64 {
            // rand_core BlockRng::next_u64: low word first, with the
            // split-read path when exactly one word remains.
            let i = self.index;
            if i < BUF_WORDS - 1 {
                self.index += 2;
                (u64::from(self.buf[i + 1]) << 32) | u64::from(self.buf[i])
            } else if i >= BUF_WORDS {
                self.refill();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.refill();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | lo
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let n = chunk.len();
                chunk.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.gen_range(3u64..10u64);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn buffer_boundary_consistency() {
        // Interleave u32/u64 draws across the 64-word refill boundary and
        // check the keystream matches a pure-u32 reading of the same seed.
        let mut words = StdRng::seed_from_u64(5);
        let stream: Vec<u32> = (0..260).map(|_| words.next_u32()).collect();
        let mut mixed = StdRng::seed_from_u64(5);
        // 63 u32 draws leave one word in the buffer; next_u64 must splice
        // word 63 (low) with word 64 (high) from the next refill.
        for w in stream.iter().take(63) {
            assert_eq!(mixed.next_u32(), *w);
        }
        let spliced = mixed.next_u64();
        assert_eq!(spliced as u32, stream[63]);
        assert_eq!((spliced >> 32) as u32, stream[64]);
        assert_eq!(mixed.next_u32(), stream[65]);
    }
}
