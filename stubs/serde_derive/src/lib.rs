//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its record types but
//! never actually serializes through serde (the snapshot codec is
//! hand-rolled). This build environment has no network access to crates.io,
//! so the real proc macro cannot be fetched; this stub accepts the same
//! derive syntax — including `#[serde(...)]` attributes — and expands to
//! nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
