//! Offline stand-in for `proptest`.
//!
//! This build environment cannot reach crates.io, so this crate provides a
//! small, dependency-free property-testing engine with the exact surface
//! the workspace's test suites use:
//!
//! - macros: `proptest!` (with optional `#![proptest_config(..)]`),
//!   `prop_compose!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//! - strategies: integer/float `Range`/`RangeInclusive`, `any::<T>()` for
//!   primitives, strategy tuples, `collection::vec`, `option::of`
//! - config: `ProptestConfig::with_cases`
//!
//! Differences from real proptest: case generation is **deterministic**
//! (seeded from the test's module path and name, so failures reproduce
//! across runs) and failing inputs are reported but not shrunk.

pub mod strategy {
    //! The [`Strategy`] trait and the generators/combinators built on it.

    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating test-case values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy {:?}", self);
                    ((self.start as i128) + rng.below(span as u128) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy {:?}", self);
                    ((*self.start() as i128) + rng.below(span as u128) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    /// String-literal strategies: a `&str` used as a strategy is treated
    /// as a regex (subset) and generates matching `String`s, mirroring
    /// proptest's string strategies. Supported syntax: literal characters,
    /// `[...]` character classes with ranges, and the quantifiers `{n}`,
    /// `{m,n}`, `*`, `+`, `?`.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let chars: Vec<char> = self.chars().collect();
            let mut out = String::new();
            let mut i = 0;
            while i < chars.len() {
                // One atom: a character class or a literal character.
                let class: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed [ in string strategy")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            for c in chars[j]..=chars[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                // Optional quantifier.
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unclosed {{ in string strategy")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse::<usize>().expect("bad quantifier"),
                            hi.parse::<usize>().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.parse::<usize>().expect("bad quantifier");
                            (n, n)
                        }
                    }
                } else if i < chars.len() && chars[i] == '*' {
                    i += 1;
                    (0, 8)
                } else if i < chars.len() && chars[i] == '+' {
                    i += 1;
                    (1, 8)
                } else if i < chars.len() && chars[i] == '?' {
                    i += 1;
                    (0, 1)
                } else {
                    (1, 1)
                };
                let reps = min + rng.below((max - min + 1) as u128) as usize;
                for _ in 0..reps {
                    out.push(class[rng.below(class.len() as u128) as usize]);
                }
            }
            out
        }
    }

    /// Strategy produced by [`any`](crate::any) for a primitive type.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12, N.13)
    }

    /// Map combinator used by `prop_compose!`.
    pub struct MapFn<S, F> {
        strat: S,
        f: F,
    }

    impl<S: Strategy, F> MapFn<S, F> {
        /// Wrap `strat`, applying `f` to every generated value.
        ///
        /// The `Fn` bound lives here (not only on the `Strategy` impl) so
        /// closure parameter types are known at the call site — that is
        /// what lets `prop_compose!` closures destructure the strategy
        /// tuple without type annotations.
        pub fn new<T>(strat: S, f: F) -> Self
        where
            F: Fn(S::Value) -> T,
        {
            MapFn { strat, f }
        }
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapFn<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strat.generate(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Permitted size range for a generated collection (inclusive bounds).
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `Some` with probability 1/2.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Test-case execution support: config, RNG, and error plumbing.

    /// Run configuration; `cases` is the number of accepted cases per test.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic generator RNG (SplitMix64), seeded from the test name
    /// so failures reproduce run to run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u128) -> u128 {
            assert!(n > 0);
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }
    }
}

/// Strategy generating any value of a primitive type.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(core::marker::PhantomData)
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)
/// { body }` runs `cases` generated inputs through the body (the `#[test]`
/// attribute is written by the caller, as with real proptest).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(16).saturating_add(1024) {
                        panic!("proptest: too many rejected cases (prop_assume too strict?)");
                    }
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($arg), &__value));
                        let $arg = __value;
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  inputs:\n    {}",
                                msg,
                                __inputs.join("\n    "),
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Composes named strategies:
/// `prop_compose! { fn name(params)(binds in strategies) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($pname:ident: $pty:ty),* $(,)?)
            ($($arg:pat in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($pname: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::MapFn::new(($($strat,)+), move |($($arg,)+)| $body)
        }
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (generates a replacement) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
