//! Offline stand-in for `criterion`.
//!
//! This build environment cannot reach crates.io, so this shim provides the
//! API surface the workspace's `benches/` targets use — enough for
//! `cargo test`/`cargo clippy --all-targets` to compile them and for
//! `cargo bench` to smoke-run each benchmark body once with a wall-clock
//! printout (no statistics, no reports).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Drives benchmark iterations.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Times `f` (a single call in this shim).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    /// Times `f` applied to a fresh `setup()` value.
    pub fn iter_with_setup<S, O, FS: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: FS,
        mut f: F,
    ) {
        let input = setup();
        black_box(f(input));
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { _private: () };
    let start = Instant::now();
    f(&mut b);
    println!(
        "bench {name}: {:?} (criterion shim, 1 iteration)",
        start.elapsed()
    );
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Top-level benchmark registry handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and (in this shim) immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored by this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Registers and runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
