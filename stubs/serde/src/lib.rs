//! Offline stand-in for `serde`.
//!
//! The workspace's only serde usage is decorative `#[derive(Serialize,
//! Deserialize)]` on record types — nothing in the tree serializes through
//! serde (persistence goes through the hand-rolled snapshot codec). Since
//! this build environment cannot reach crates.io, this stub provides just
//! enough surface for those derives to compile: two empty marker traits and
//! the re-exported no-op derive macros.

/// Marker trait mirroring `serde::Serialize`. No methods: nothing in the
/// workspace calls into serde's data model.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. No methods.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
