//! End-to-end: simulate → export trace CSV → re-import → analyses agree.
//!
//! This is the adoption path for real clusters (convert `sacct` output to
//! the trace schema, run the toolkit), so the invariant that analyses are
//! unchanged across the serialization boundary matters.

use std::io::BufReader;

use rsc_reliability::analysis::ettr::jobrun::reconstruct_job_runs;
use rsc_reliability::analysis::queueing::mean_wait_hours;
use rsc_reliability::analysis::report::{size_distribution, status_breakdown};
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::SimDuration;
use rsc_reliability::telemetry::store::TelemetryStore;
use rsc_reliability::telemetry::trace::{export_jobs, import_jobs};

#[test]
fn analyses_survive_trace_serialization() {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 314);
    sim.run(SimDuration::from_days(14));
    let original = sim.into_telemetry().seal();

    // Round-trip the job records through the CSV schema.
    let mut buf = Vec::new();
    export_jobs(&mut buf, original.jobs()).expect("in-memory export");
    let records = import_jobs(BufReader::new(buf.as_slice())).expect("reimport");
    assert_eq!(records.len(), original.jobs().len());

    let mut reloaded = TelemetryStore::new("reloaded", original.num_nodes());
    reloaded.extend_jobs(records);
    reloaded.set_horizon(original.horizon());
    let reloaded = reloaded.seal();

    // Job-level analyses must agree exactly.
    let a = status_breakdown(&original);
    let b = status_breakdown(&reloaded);
    assert_eq!(a, b);

    let sa = size_distribution(&original);
    let sb = size_distribution(&reloaded);
    assert_eq!(sa, sb);

    assert!((mean_wait_hours(&original) - mean_wait_hours(&reloaded)).abs() < 1e-12);

    let runs_a = reconstruct_job_runs(&original);
    let runs_b = reconstruct_job_runs(&reloaded);
    assert_eq!(runs_a, runs_b);
}

#[test]
fn quotas_bind_in_full_simulation() {
    use rsc_reliability::sched::project::{ProjectId, ProjectQuotas};

    // Give every project a tiny quota and watch utilization collapse:
    // quota enforcement must flow through the whole stack.
    let mut config = SimConfig::small_test_cluster();
    let mut quotas = ProjectQuotas::unlimited();
    for p in 0..12 {
        quotas.set(ProjectId::new(p), 8); // one node each, 12×8 = 96 of 512 GPUs
    }
    config.quotas = quotas;
    let mut sim = ClusterSim::new(config, 99);
    sim.run(SimDuration::from_days(5));
    let util = sim.mean_utilization();
    assert!(
        util < 0.35,
        "quotas capping 96/512 GPUs should depress utilization, got {util}"
    );
}
