//! Memory-layout lockstep twins.
//!
//! The million-node memory work — the generational job arena, and the
//! budget-driven telemetry spill — must be invisible in the sealed
//! telemetry: a run with arena slot recycling and a run without, and a
//! run under a tight resident-memory budget and a run with default
//! segment sizing, all seal byte-identical v3 snapshots. These twins are
//! the sim-level half of the proof; `crates/sched/tests/properties.rs`
//! holds the store-level arena-vs-hashmap lockstep.

use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::SimDuration;
use rsc_reliability::telemetry::snapshot::write_snapshot;
use rsc_reliability::telemetry::TelemetryView;

const SEEDS: [u64; 2] = [4242, 271_828];
const DAYS: u64 = 10;

fn snapshot_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view).unwrap();
    buf
}

#[test]
fn arena_slot_reuse_is_invisible_in_sealed_bytes() {
    for seed in SEEDS {
        let mut recycling = ClusterSim::new(SimConfig::small_test_cluster(), seed);
        recycling.run(SimDuration::from_days(DAYS));
        let reused = recycling.arena_stats().reused;
        assert!(
            reused > 0,
            "the default run must actually recycle slots (seed {seed}), \
             or this twin proves nothing"
        );

        let mut append_only = ClusterSim::new(SimConfig::small_test_cluster(), seed);
        append_only.set_arena_no_reuse(true);
        append_only.run(SimDuration::from_days(DAYS));
        assert_eq!(append_only.arena_stats().reused, 0);
        assert!(
            append_only.arena_stats().capacity > recycling.arena_stats().capacity,
            "the append-only twin's slab must grow past the recycling one \
             (seed {seed})"
        );

        assert_eq!(
            snapshot_bytes(&recycling.into_telemetry().seal()),
            snapshot_bytes(&append_only.into_telemetry().seal()),
            "arena slot reuse leaked into sealed telemetry (seed {seed})"
        );
    }
}

#[test]
fn memory_budget_twin_matches_default_bytes_and_bounds_residency() {
    let seed = SEEDS[0];
    let mut default_run = ClusterSim::new(SimConfig::small_test_cluster(), seed);
    default_run.run(SimDuration::from_days(DAYS));
    let unbounded_resident = default_run.telemetry_resident_bytes();
    let expected = snapshot_bytes(&default_run.into_telemetry().seal());

    // A budget far below the run's unbounded residency, with spill enabled
    // so rotated segments leave memory as the run proceeds.
    let budget = 64 * 1024;
    assert!(
        unbounded_resident > 4 * budget,
        "test scenario too small to exercise the budget \
         (unbounded resident {unbounded_resident} B, budget {budget} B)"
    );
    let dir = std::env::temp_dir().join(format!("rsc-memory-budget-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut budgeted = ClusterSim::new(SimConfig::small_test_cluster(), seed);
    budgeted.set_telemetry_memory_budget(budget);
    budgeted.enable_telemetry_spill(&dir).expect("spill dir");
    budgeted.run(SimDuration::from_days(DAYS));
    assert!(
        budgeted.telemetry_segment_stats().rotations > 0,
        "the budget must force mid-run rotations"
    );
    // End-of-run residency stays in the budget's regime, not the
    // unbounded one. (Exact per-append bounds are pinned in the telemetry
    // crate's store tests; spill timing makes the sim-level bound loose.)
    let resident = budgeted.telemetry_resident_bytes();
    assert!(
        resident < unbounded_resident / 2,
        "budgeted run kept {resident} B resident, \
         unbounded run {unbounded_resident} B"
    );
    assert_eq!(
        expected,
        snapshot_bytes(&budgeted.into_telemetry().seal()),
        "memory budget changed the sealed snapshot bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}
