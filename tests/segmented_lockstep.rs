//! Segmented-vs-monolithic lockstep twins.
//!
//! The telemetry store records into fixed-capacity hash-chained segments,
//! but segmentation is purely an implementation detail of the hot path:
//! the sealed view, its v3 snapshot bytes, and every analysis derived from
//! them must be exactly what a monolithic (never-rotating) store would
//! produce. These tests run same-seed twins at several segment capacities
//! — including one small enough to force many mid-run rotations and one
//! with background spill enabled — and pin the bytes and the derived
//! numbers (MTTF with CIs, `r_f`, ETTR, availability, lemon features)
//! bitwise across all of them.

use rsc_reliability::analysis::attribution::AttributionConfig;
use rsc_reliability::analysis::availability::fleet_availability;
use rsc_reliability::analysis::ettr::jobrun::{
    ettr_by_size_bucket, long_high_priority_runs, reconstruct_job_runs,
};
use rsc_reliability::analysis::lemon::compute_features;
use rsc_reliability::analysis::mttf::{estimate_node_failure_rate, mttf_by_job_size, FailureScope};
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::{SimDuration, SimTime};
use rsc_reliability::telemetry::snapshot::write_snapshot;
use rsc_reliability::telemetry::TelemetryView;

const SEEDS: [u64; 2] = [777, 31_415];
const DAYS: u64 = 10;

/// Runs a pinned-seed twin at the given segment capacity (`None` keeps the
/// store default), returning the sealed view plus the mid-run rotation
/// count observed before sealing.
fn run_twin(
    seed: u64,
    capacity: Option<usize>,
    spill: Option<&std::path::Path>,
) -> (TelemetryView, u64) {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), seed);
    if let Some(cap) = capacity {
        sim.set_telemetry_segment_capacity(cap);
    }
    if let Some(dir) = spill {
        sim.enable_telemetry_spill(dir).expect("spill dir");
    }
    sim.run(SimDuration::from_days(DAYS));
    let rotations = sim.telemetry_segment_stats().rotations;
    (sim.into_telemetry().seal(), rotations)
}

fn snapshot_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view).unwrap();
    buf
}

/// Every derived analysis the paper's figures rest on, bundled so twin
/// comparisons are a single `assert_eq!` with bitwise float semantics.
#[derive(Debug, PartialEq)]
struct DerivedAnalyses {
    mttf_all: Vec<rsc_reliability::analysis::mttf::MttfPoint>,
    mttf_infra: Vec<rsc_reliability::analysis::mttf::MttfPoint>,
    r_f: f64,
    ettr: Vec<rsc_reliability::analysis::ettr::jobrun::EttrBucket>,
    availability: rsc_reliability::analysis::availability::FleetAvailability,
    lemons: Vec<rsc_reliability::analysis::lemon::LemonFeatures>,
}

fn derive(view: &TelemetryView) -> DerivedAnalyses {
    let config = AttributionConfig::default();
    let runs = reconstruct_job_runs(view);
    let long = long_high_priority_runs(&runs, SimDuration::from_days(1));
    DerivedAnalyses {
        mttf_all: mttf_by_job_size(view, FailureScope::AllFailures, &config),
        mttf_infra: mttf_by_job_size(view, FailureScope::InfraOnly, &config),
        r_f: estimate_node_failure_rate(view, &config, 0),
        ettr: ettr_by_size_bucket(&long, SimDuration::from_mins(30), SimDuration::from_mins(5)),
        availability: fleet_availability(view),
        lemons: compute_features(view, SimTime::from_secs(0), view.horizon()),
    }
}

#[test]
fn snapshot_bytes_invariant_across_segment_capacities() {
    for seed in SEEDS {
        let (baseline, _) = run_twin(seed, None, None);
        let (monolithic, mono_rot) = run_twin(seed, Some(usize::MAX), None);
        let (segmented, seg_rot) = run_twin(seed, Some(64), None);
        assert_eq!(
            mono_rot, 0,
            "a segment the size of the address space must never rotate"
        );
        assert!(
            seg_rot > 0,
            "capacity 64 over {DAYS} days must force mid-run rotations (seed {seed})"
        );
        let bytes = snapshot_bytes(&baseline);
        assert_eq!(
            bytes,
            snapshot_bytes(&monolithic),
            "monolithic twin diverged (seed {seed})"
        );
        assert_eq!(
            bytes,
            snapshot_bytes(&segmented),
            "segmented twin diverged (seed {seed})"
        );
    }
}

#[test]
fn derived_analyses_invariant_across_segment_capacities() {
    let (baseline, _) = run_twin(SEEDS[0], None, None);
    let (segmented, rotations) = run_twin(SEEDS[0], Some(64), None);
    assert!(rotations > 0);
    let expected = derive(&baseline);
    assert_eq!(expected, derive(&segmented));
    // The analyses must also be non-degenerate, or the equality proves
    // nothing about the rotated path.
    assert!(!expected.mttf_all.is_empty());
    assert!(expected.mttf_all.iter().any(|p| p.ci90.is_some()));
    assert!(expected.r_f > 0.0);
    assert!(!expected.lemons.is_empty());
    assert!(expected.availability.fleet_availability > 0.0);
}

#[test]
fn spill_twin_matches_in_memory_bytes() {
    let dir = std::env::temp_dir().join(format!("rsc-lockstep-spill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (in_memory, _) = run_twin(SEEDS[1], Some(64), None);
    // Run the spill twin by hand so the directory can be inspected before
    // sealing — seal reloads every spilled segment and deletes its file.
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), SEEDS[1]);
    sim.set_telemetry_segment_capacity(64);
    sim.enable_telemetry_spill(&dir).expect("spill dir");
    sim.run(SimDuration::from_days(DAYS));
    assert!(
        sim.telemetry_segment_stats().rotations > 0,
        "spill twin must actually rotate"
    );
    let spill_files = std::fs::read_dir(&dir).unwrap().count();
    assert!(spill_files > 0, "rotated segments must reach the spill dir");
    let spilled = sim.into_telemetry().seal();
    assert_eq!(snapshot_bytes(&in_memory), snapshot_bytes(&spilled));
    std::fs::remove_dir_all(&dir).ok();
}
