//! Integration tests pinning the paper's quantitative claims that the
//! library must reproduce analytically (no simulation required).

use rsc_reliability::analysis::ettr::analytical::{expected_ettr, EttrParams};
use rsc_reliability::analysis::ettr::montecarlo::monte_carlo_ettr;
use rsc_reliability::analysis::ettr::requirements::max_coupled_interval_mins;
use rsc_reliability::analysis::mttf::MttfProjection;
use rsc_reliability::simcore::rng::SimRng;

const RSC1_RATE: f64 = 6.50e-3;
const RSC2_RATE: f64 = 2.34e-3;

#[test]
fn obs8_mttf_projections() {
    let proj = MttfProjection::new(RSC1_RATE);
    // "we project the MTTF for 16384 GPU jobs to be 1.8 hours and for
    //  131072 GPU jobs to be 0.23 hours"
    assert!((proj.mttf_hours(16_384) - 1.8).abs() < 0.05);
    assert!((proj.mttf_hours(131_072) - 0.23).abs() < 0.01);
    // "the MTTF implied by an RSC-1-like failure rate is ~15 minutes" at
    // O(100k) GPUs.
    let mins = proj.mttf_hours(100_000) * 60.0;
    assert!((12.0..=20.0).contains(&mins), "{mins}");
}

#[test]
fn hypothetical_16k_run_ettr() {
    // "expected ETTR would be 0.7 for a 60 minute checkpoint interval.
    //  Moving to a 5 minute checkpoint interval would increase expected
    //  ETTR to 0.93."
    let base = EttrParams {
        nodes: 2048,
        r_f: RSC1_RATE,
        queue_time: 1.0 / 24.0 / 60.0,
        restart_overhead: 5.0 / 60.0 / 24.0,
        checkpoint_interval: 1.0 / 24.0,
        productive_time: 7.0,
    };
    assert!((expected_ettr(&base) - 0.70).abs() < 0.03);
    let fast = EttrParams {
        checkpoint_interval: 5.0 / 60.0 / 24.0,
        ..base
    };
    assert!((expected_ettr(&fast) - 0.93).abs() < 0.02);
}

#[test]
fn fig10_checkpoint_requirements() {
    // "a checkpoint interval of ~7 minutes is necessary to have an
    //  E[ETTR] = 0.5, which increases to ~21 minutes if failure rates are
    //  closer to RSC-2" (restart overhead coupled to the interval).
    let rsc1 = max_coupled_interval_mins(100_000, RSC1_RATE, 0.5, 1.0, 7.0).unwrap();
    let rsc2 = max_coupled_interval_mins(100_000, RSC2_RATE, 0.5, 1.0, 7.0).unwrap();
    assert!((4.0..=10.0).contains(&rsc1), "rsc1={rsc1}");
    assert!((13.0..=25.0).contains(&rsc2), "rsc2={rsc2}");
    // "to reach ETTR of 0.9 at an RSC-2 failure rate, you would need ~2
    //  minute checkpointing and ~2 minute restart overhead"
    let target09 = max_coupled_interval_mins(100_000, RSC2_RATE, 0.9, 1.0, 7.0).unwrap();
    assert!((1.0..=5.0).contains(&target09), "{target09}");
}

#[test]
fn analytic_vs_monte_carlo_agreement() {
    // "the approximation above is accurate to within ~5%" — even for an
    // 8k-GPU, week-long run.
    let params = EttrParams {
        nodes: 1024,
        r_f: RSC1_RATE,
        queue_time: 5.0 / 60.0 / 24.0,
        restart_overhead: 5.0 / 60.0 / 24.0,
        checkpoint_interval: 1.0 / 24.0,
        productive_time: 7.0,
    };
    let mut rng = SimRng::seed_from(9);
    let mc = monte_carlo_ettr(&params, 8000, &mut rng);
    let analytic = expected_ettr(&params);
    let rel = (mc.mean - analytic).abs() / mc.mean;
    assert!(rel < 0.05, "rel={rel}");
}

#[test]
fn mttf_ratio_between_clusters_tracks_rates() {
    let p1 = MttfProjection::new(RSC1_RATE);
    let p2 = MttfProjection::new(RSC2_RATE);
    let ratio = p2.mttf_hours(8192) / p1.mttf_hours(8192);
    // MTTFs round to whole simulated seconds, so compare loosely.
    assert!((ratio - RSC1_RATE / RSC2_RATE).abs() < 1e-3, "{ratio}");
}
