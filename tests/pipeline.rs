//! End-to-end integration: simulate a cluster, then run every analysis in
//! the paper's pipeline over the resulting telemetry.

use rsc_reliability::analysis::attribution::{
    attribute_failures, attribution_accuracy, cause_rates, AttributionConfig,
};
use rsc_reliability::analysis::ettr::jobrun::reconstruct_job_runs;
use rsc_reliability::analysis::goodput::goodput_loss;
use rsc_reliability::analysis::lemon::compute_features;
use rsc_reliability::analysis::mttf::{estimate_node_failure_rate, mttf_by_job_size, FailureScope};
use rsc_reliability::analysis::report::{size_distribution, status_breakdown};
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::{SimDuration, SimTime};

fn telemetry(days: u64, seed: u64) -> rsc_reliability::telemetry::TelemetryView {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), seed);
    sim.run(SimDuration::from_days(days));
    sim.into_telemetry().seal()
}

#[test]
fn attribution_pipeline_produces_causes() {
    let store = telemetry(45, 101);
    let config = AttributionConfig::paper_default();
    let attributions = attribute_failures(&store, &config);
    assert!(!attributions.is_empty());
    let attributed = attributions.iter().filter(|a| a.is_attributed()).count();
    assert!(attributed > 0, "some failures should have causes");
    // Most FAILED records are pure user failures and stay unattributed.
    assert!(attributed < attributions.len());
    let rates = cause_rates(&store, &config);
    assert!(rates.total_gpu_hours > 0.0);
    assert!(!rates.rates.is_empty());
}

#[test]
fn attribution_mostly_matches_ground_truth() {
    let store = telemetry(60, 102);
    let acc = attribution_accuracy(&store, &AttributionConfig::paper_default());
    assert!(acc > 0.7, "attribution accuracy {acc} too low");
}

#[test]
fn infra_mttf_decreases_with_job_size() {
    // Infrastructure failures scale with node count (Fig. 7); user
    // failures do not, so the MTTF scaling claim is about infra only.
    let store = telemetry(120, 103);
    let points = mttf_by_job_size(
        &store,
        FailureScope::InfraOnly,
        &AttributionConfig::paper_default(),
    );
    assert!(points.len() >= 3);
    // Compare small vs large buckets that saw enough failures to estimate.
    let small = points.iter().find(|p| p.gpus <= 16 && p.failures >= 3);
    let large = points
        .iter()
        .rev()
        .find(|p| p.gpus >= 64 && p.failures >= 3);
    if let (Some(s), Some(l)) = (small, large) {
        assert!(
            l.mttf_hours < s.mttf_hours,
            "large-job MTTF {l:?} should be below small-job {s:?}"
        );
    } else {
        // Even a small cluster over 120 days must see some infra failures.
        assert!(points.iter().any(|p| p.failures > 0));
    }
}

#[test]
fn failure_rate_estimate_is_plausible() {
    let store = telemetry(60, 104);
    // Jobs > 8 GPUs (the small cluster's "large" jobs).
    let r_f = estimate_node_failure_rate(&store, &AttributionConfig::paper_default(), 8);
    // The injected total is 6.5e-3/node-day; the job-level estimate sees
    // the per-node rate amplified by gang scheduling (one node's failure
    // fails a multi-node job) so it can exceed the hardware rate.
    assert!(r_f > 1e-4 && r_f < 1.0, "r_f={r_f}");
}

#[test]
fn job_runs_reconstruct_and_measure() {
    let store = telemetry(45, 105);
    let runs = reconstruct_job_runs(&store);
    assert!(!runs.is_empty());
    let multi_attempt = runs.iter().filter(|r| r.attempts > 1).count();
    assert!(multi_attempt > 0, "some runs should span multiple attempts");
    for run in runs.iter().take(200) {
        let e = run.measured_ettr(SimDuration::from_mins(60), SimDuration::from_mins(5));
        assert!((0.0..=1.0).contains(&e));
    }
}

#[test]
fn goodput_loss_accounts_both_orders() {
    let store = telemetry(60, 106);
    let loss = goodput_loss(&store, &AttributionConfig::paper_default());
    assert!(loss.total_failure_loss > 0.0);
    let share = loss.preemption_share();
    assert!((0.0..1.0).contains(&share));
}

#[test]
fn report_fractions_are_normalized() {
    let store = telemetry(30, 107);
    let status = status_breakdown(&store);
    let jobs_sum: f64 = status.iter().map(|s| s.job_fraction).sum();
    assert!((jobs_sum - 1.0).abs() < 1e-9);
    let sizes = size_distribution(&store);
    let size_sum: f64 = sizes.iter().map(|s| s.job_fraction).sum();
    assert!((size_sum - 1.0).abs() < 1e-9);
    let gpu_sum: f64 = sizes.iter().map(|s| s.gpu_time_fraction).sum();
    assert!((gpu_sum - 1.0).abs() < 1e-6);
}

#[test]
fn lemon_features_cover_all_nodes() {
    let store = telemetry(30, 108);
    let features = compute_features(&store, SimTime::ZERO, store.horizon());
    assert_eq!(features.len(), 64);
    // Telemetry-rich cluster: some node has a nonzero signal.
    assert!(features
        .iter()
        .any(|f| f.out_count > 0 || f.single_node_node_fails > 0 || f.xid_cnt > 0));
}

#[test]
fn facade_reexports_are_wired() {
    // Compile-time check that the facade exposes each subsystem.
    let _ = rsc_reliability::cluster::ClusterSpec::rsc1();
    let _ = rsc_reliability::failure::ModeCatalog::rsc1();
    let _ = rsc_reliability::health::CheckRegistry::ideal();
    let _ =
        rsc_reliability::network::Fabric::new(&rsc_reliability::cluster::ClusterSpec::small_test());
    let _ = rsc_reliability::workload::WorkloadProfile::rsc1();
    let _ = rsc_reliability::analysis::mttf::MttfProjection::new(1e-3);
}
