//! Whole-system determinism: identical (config, seed) pairs must produce
//! byte-identical telemetry across every stream — the property all
//! reproducible experiments and A/B ablations rest on — and the scenario
//! runner must preserve it whether scenarios execute sequentially, in
//! parallel across worker threads, or load from the artifact cache.

use rsc_reliability::sim::{ClusterSim, ScenarioRunner, ScenarioSpec, SimConfig};
use rsc_reliability::simcore::time::SimDuration;
use rsc_reliability::telemetry::snapshot::write_snapshot;
use rsc_reliability::telemetry::trace::export_jobs;
use rsc_reliability::telemetry::TelemetryView;

fn run(seed: u64, lemons: usize) -> rsc_reliability::telemetry::TelemetryStore {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = lemons;
    let mut sim = ClusterSim::new(config, seed);
    sim.run(SimDuration::from_days(10));
    sim.into_telemetry()
}

fn spec(seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(SimConfig::small_test_cluster(), seed, 5)
}

/// The canonical byte rendering of a sealed view: its snapshot.
fn snapshot_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view).unwrap();
    buf
}

/// Asserts every stream and scalar agrees, then the bytes do too.
fn assert_identical(a: &TelemetryView, b: &TelemetryView) {
    assert_eq!(a.jobs(), b.jobs());
    assert_eq!(a.health_events(), b.health_events());
    assert_eq!(a.node_events(), b.node_events());
    assert_eq!(a.exclusions(), b.exclusions());
    assert_eq!(a.ground_truth_failures(), b.ground_truth_failures());
    assert_eq!(a.gpu_swaps(), b.gpu_swaps());
    assert_eq!(a.horizon(), b.horizon());
    assert_eq!(snapshot_bytes(a), snapshot_bytes(b));
}

#[test]
fn all_streams_identical_across_runs() {
    let a = run(777, 2);
    let b = run(777, 2);
    assert_eq!(a.jobs(), b.jobs());
    assert_eq!(a.health_events(), b.health_events());
    assert_eq!(a.node_events(), b.node_events());
    assert_eq!(a.exclusions(), b.exclusions());
    assert_eq!(a.ground_truth_failures(), b.ground_truth_failures());
    assert_eq!(a.gpu_swaps(), b.gpu_swaps());
    assert_eq!(a.horizon(), b.horizon());

    // Exported bytes, too.
    let mut ba = Vec::new();
    let mut bb = Vec::new();
    export_jobs(&mut ba, &a.jobs().to_vec()).unwrap();
    export_jobs(&mut bb, &b.jobs().to_vec()).unwrap();
    assert_eq!(ba, bb);
}

#[test]
fn sealing_preserves_every_stream() {
    let store = run(555, 1);
    let (jobs, health, nodes, excl, truth, swaps, horizon) = (
        store.jobs().to_vec(),
        store.health_events().to_vec(),
        store.node_events().to_vec(),
        store.exclusions().to_vec(),
        store.ground_truth_failures().to_vec(),
        store.gpu_swaps(),
        store.horizon(),
    );
    let view = store.seal();
    assert_eq!(view.jobs(), &jobs[..]);
    assert_eq!(view.health_events(), &health[..]);
    assert_eq!(view.node_events(), &nodes[..]);
    assert_eq!(view.exclusions(), &excl[..]);
    assert_eq!(view.ground_truth_failures(), &truth[..]);
    assert_eq!(view.gpu_swaps(), swaps);
    assert_eq!(view.horizon(), horizon);
}

#[test]
fn parallel_runner_matches_sequential_simulation() {
    let specs = [spec(31), spec(32), spec(33)];
    let parallel = ScenarioRunner::without_cache().workers(3).run_all(&specs);
    for (s, view) in specs.iter().zip(&parallel) {
        let sequential = s.simulate();
        assert_identical(view, &sequential);
    }
}

#[test]
fn cache_hit_matches_sequential_simulation() {
    let dir = std::env::temp_dir().join(format!("rsc-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(2);
    let specs = [spec(41), spec(42)];

    let (cold, s1) = runner.run_all_with_stats(&specs);
    assert_eq!((s1.hits, s1.misses), (0, 2));
    let (warm, s2) = runner.run_all_with_stats(&specs);
    assert_eq!((s2.hits, s2.misses), (2, 0));

    for ((s, cold_view), warm_view) in specs.iter().zip(&cold).zip(&warm) {
        let sequential = s.simulate();
        // Cold (simulated in a worker), warm (decoded from the artifact),
        // and sequential all agree byte-for-byte.
        assert_identical(cold_view, &sequential);
        assert_identical(warm_view, &sequential);
        // And the artifact on disk is exactly the snapshot serialization.
        let on_disk = std::fs::read(dir.join(s.cache_file_name())).unwrap();
        assert_eq!(on_disk, snapshot_bytes(&sequential));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_isolation_between_subsystems() {
    // Changing the lemon count must not change the workload stream: the
    // first submitted jobs are identical even though lemon planting draws
    // from a (forked, independent) RNG.
    let a = run(42, 0);
    let b = run(42, 3);
    let first_a: Vec<_> = a.jobs().map(|r| (r.job, r.gpus)).take(50).collect();
    let first_b: Vec<_> = b.jobs().map(|r| (r.job, r.gpus)).take(50).collect();
    // Job ids and sizes submitted early agree (the dynamics diverge later
    // as lemon failures reorder completions).
    let agreement = first_a.iter().filter(|x| first_b.contains(x)).count();
    assert!(agreement >= 45, "only {agreement}/50 early jobs agree");
}

#[test]
fn different_seeds_produce_different_telemetry() {
    let a = run(1, 0);
    let b = run(2, 0);
    assert_ne!(a.jobs(), b.jobs());
}
