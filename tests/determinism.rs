//! Whole-system determinism: identical (config, seed) pairs must produce
//! byte-identical telemetry across every stream — the property all
//! reproducible experiments and A/B ablations rest on.

use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::time::SimDuration;
use rsc_reliability::telemetry::trace::export_jobs;

fn run(seed: u64, lemons: usize) -> rsc_reliability::telemetry::TelemetryStore {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = lemons;
    let mut sim = ClusterSim::new(config, seed);
    sim.run(SimDuration::from_days(10));
    sim.into_telemetry()
}

#[test]
fn all_streams_identical_across_runs() {
    let a = run(777, 2);
    let b = run(777, 2);
    assert_eq!(a.jobs(), b.jobs());
    assert_eq!(a.health_events(), b.health_events());
    assert_eq!(a.node_events(), b.node_events());
    assert_eq!(a.exclusions(), b.exclusions());
    assert_eq!(a.ground_truth_failures(), b.ground_truth_failures());
    assert_eq!(a.gpu_swaps(), b.gpu_swaps());
    assert_eq!(a.horizon(), b.horizon());

    // Exported bytes, too.
    let mut ba = Vec::new();
    let mut bb = Vec::new();
    export_jobs(&mut ba, a.jobs()).unwrap();
    export_jobs(&mut bb, b.jobs()).unwrap();
    assert_eq!(ba, bb);
}

#[test]
fn seed_isolation_between_subsystems() {
    // Changing the lemon count must not change the workload stream: the
    // first submitted jobs are identical even though lemon planting draws
    // from a (forked, independent) RNG.
    let a = run(42, 0);
    let b = run(42, 3);
    let first_a: Vec<_> = a.jobs().iter().map(|r| (r.job, r.gpus)).take(50).collect();
    let first_b: Vec<_> = b.jobs().iter().map(|r| (r.job, r.gpus)).take(50).collect();
    // Job ids and sizes submitted early agree (the dynamics diverge later
    // as lemon failures reorder completions).
    let agreement = first_a
        .iter()
        .filter(|x| first_b.contains(x))
        .count();
    assert!(agreement >= 45, "only {agreement}/50 early jobs agree");
}

#[test]
fn different_seeds_produce_different_telemetry() {
    let a = run(1, 0);
    let b = run(2, 0);
    assert_ne!(a.jobs(), b.jobs());
}
