#![warn(missing_docs)]

//! # rsc-reliability
//!
//! A reliability-analysis toolkit and cluster simulator reproducing
//! *"Revisiting Reliability in Large-Scale Machine Learning Research
//! Clusters"* (HPCA 2025).
//!
//! This facade crate re-exports the workspace's public API under one roof:
//!
//! - [`simcore`] — discrete-event simulation primitives;
//! - [`cluster`] — the hardware model (nodes, GPUs, racks, pods);
//! - [`network`] — the rail-optimized InfiniBand fabric and adaptive routing;
//! - [`failure`] — failure taxonomy, hazard processes, and lemon nodes;
//! - [`health`] — periodic health checks and remediation;
//! - [`sched`] — the Slurm-like gang scheduler;
//! - [`workload`] — RSC-1/RSC-2 synthetic workload profiles;
//! - [`storage`] — NFS/AirStore/ObjectStore tiers and checkpoint costs;
//! - [`telemetry`] — simulated cluster logs and time-window queries;
//! - [`sim`] — the wired-up cluster simulation;
//! - [`analysis`] — the paper's contribution: attribution, MTTF, ETTR,
//!   lemon detection, and goodput accounting;
//! - [`monitor`] — the online streaming reliability monitor and alerting
//!   pipeline over the simulator's event bus;
//! - [`serve`] — the `rsc-serve` scenario service: sweep submission over
//!   HTTP, cached analysis queries, and live SSE alert streaming.
//!
//! # Quickstart
//!
//! Simulate a small cluster for a week and compute its hardware failure
//! rate:
//!
//! ```
//! use rsc_reliability::sim::{ClusterSim, SimConfig};
//! use rsc_reliability::simcore::time::SimDuration;
//!
//! let config = SimConfig::small_test_cluster();
//! let mut sim = ClusterSim::new(config, 42);
//! let telemetry = sim.run(SimDuration::from_days(7));
//! assert!(telemetry.jobs().len() > 0);
//! ```

pub use rsc_cluster as cluster;
pub use rsc_core as analysis;
pub use rsc_failure as failure;
pub use rsc_health as health;
pub use rsc_monitor as monitor;
pub use rsc_network as network;
pub use rsc_sched as sched;
pub use rsc_serve as serve;
pub use rsc_sim as sim;
pub use rsc_sim_core as simcore;
pub use rsc_storage as storage;
pub use rsc_telemetry as telemetry;
pub use rsc_workload as workload;
