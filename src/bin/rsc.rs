//! `rsc` — command-line front end for the reproduction.
//!
//! Subcommands:
//!
//! - `simulate` — run a simulated cluster and export a `sacct`-style job
//!   trace CSV;
//! - `analyze`  — run the paper's job-level analyses over a trace CSV
//!   (simulated or converted from real accounting data);
//! - `project`  — MTTF projections from a failure rate;
//! - `ettr`     — expected-ETTR calculator (analytic + Monte Carlo).
//!
//! Run `rsc help` for usage.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use rsc_reliability::analysis::attribution::AttributionConfig;
use rsc_reliability::analysis::cluster_goodput::goodput_waterfall;
use rsc_reliability::analysis::ettr::analytical::{expected_ettr, EttrParams};
use rsc_reliability::analysis::ettr::jobrun::{
    ettr_by_size_bucket, long_high_priority_runs, reconstruct_job_runs,
};
use rsc_reliability::analysis::ettr::montecarlo::monte_carlo_ettr;
use rsc_reliability::analysis::goodput::goodput_loss;
use rsc_reliability::analysis::mttf::{mttf_by_job_size, FailureScope, MttfProjection};
use rsc_reliability::analysis::queueing::{mean_wait_hours, wait_by_size_and_qos};
use rsc_reliability::analysis::report::{size_distribution, status_breakdown};
use rsc_reliability::sim::{ClusterSim, SimConfig};
use rsc_reliability::simcore::rng::SimRng;
use rsc_reliability::simcore::time::SimDuration;
use rsc_reliability::telemetry::store::TelemetryStore;
use rsc_reliability::telemetry::trace::{export_jobs, import_jobs};

const USAGE: &str = "\
rsc — reliability analysis for large-scale ML clusters

USAGE:
  rsc simulate [--cluster rsc1|rsc2|small] [--days N] [--scale D]
               [--seed S] [--lemons N] [--out trace.csv]
  rsc analyze  --trace trace.csv
  rsc project  [--rate PER_1000_NODE_DAYS] [--gpus N[,N...]]
  rsc ettr     --gpus N [--rate R] [--checkpoint MIN] [--overhead MIN]
               [--queue MIN] [--work DAYS] [--trials N]
  rsc help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "analyze" => cmd_analyze(&flags),
        "project" => cmd_project(&flags),
        "ettr" => cmd_ettr(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn flag_f64(flags: &HashMap<String, String>, name: &str, default: f64) -> Result<f64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let cluster = flags.get("cluster").map(String::as_str).unwrap_or("small");
    let days = flag_u64(flags, "days", 30)?;
    let scale = flag_u64(flags, "scale", 1)? as u32;
    let seed = flag_u64(flags, "seed", 42)?;
    let mut config = match cluster {
        "rsc1" => SimConfig::rsc1(),
        "rsc2" => SimConfig::rsc2(),
        "small" => SimConfig::small_test_cluster(),
        other => return Err(format!("unknown cluster {other:?} (rsc1|rsc2|small)")),
    };
    if scale > 1 {
        config = config.scaled_down(scale);
    }
    if let Some(l) = flags.get("lemons") {
        config.lemon_count = l.parse().map_err(|_| "--lemons expects an integer")?;
    }
    println!(
        "simulating {} ({} nodes, {} GPUs) for {days} days, seed {seed}...",
        config.cluster.name(),
        config.cluster.num_nodes(),
        config.cluster.total_gpus()
    );
    let mut sim = ClusterSim::new(config, seed);
    sim.run(SimDuration::from_days(days));
    println!("mean utilization: {:.1}%", sim.mean_utilization() * 100.0);
    let store = sim.into_telemetry();
    println!(
        "records: {} jobs, {} health events, {} failures injected, {} GPU swaps",
        store.jobs().len(),
        store.health_events().len(),
        store.ground_truth_failures().len(),
        store.gpu_swaps()
    );
    if let Some(path) = flags.get("out") {
        let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        let mut w = BufWriter::new(file);
        let jobs: Vec<_> = store.jobs().cloned().collect();
        export_jobs(&mut w, &jobs).map_err(|e| format!("write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags
        .get("trace")
        .ok_or("analyze requires --trace <file>")?;
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let records = import_jobs(BufReader::new(file)).map_err(|e| e.to_string())?;
    if records.is_empty() {
        return Err("trace contains no records".to_string());
    }
    let num_nodes = records
        .iter()
        .flat_map(|r| r.nodes.iter().map(|n| n.index() + 1))
        .max()
        .unwrap_or(1);
    let mut store = TelemetryStore::new("trace", num_nodes);
    let horizon = records.iter().map(|r| r.ended_at).max().expect("non-empty");
    store.extend_jobs(records);
    store.set_horizon(horizon);
    let store = store.seal();

    println!("== status breakdown ==");
    for s in status_breakdown(&store) {
        if s.job_fraction > 0.0 {
            println!(
                "  {:<14} {:>7.3}% of jobs  {:>7.3}% of GPU-time",
                s.status.label(),
                s.job_fraction * 100.0,
                s.gpu_time_fraction * 100.0
            );
        }
    }

    println!("\n== job-size distribution ==");
    for s in size_distribution(&store) {
        println!(
            "  {:>6} GPUs  {:>7.3}% of jobs  {:>7.3}% of GPU-time",
            s.gpus,
            s.job_fraction * 100.0,
            s.gpu_time_fraction * 100.0
        );
    }

    println!("\n== MTTF by job size (all failure statuses) ==");
    let points = mttf_by_job_size(
        &store,
        FailureScope::AllFailures,
        &AttributionConfig::paper_default(),
    );
    for p in points {
        if p.failures > 0 {
            println!(
                "  {:>6} GPUs  {:>5} failures  MTTF {:>9.1} h",
                p.gpus, p.failures, p.mttf_hours
            );
        }
    }

    println!("\n== job runs (ETTR at 60-min checkpoints, 5-min restarts) ==");
    let runs = reconstruct_job_runs(&store);
    let selected = long_high_priority_runs(&runs, SimDuration::from_hours(24));
    println!(
        "  {} runs total, {} long high-priority",
        runs.len(),
        selected.len()
    );
    for b in ettr_by_size_bucket(
        &selected,
        SimDuration::from_mins(60),
        SimDuration::from_mins(5),
    ) {
        println!(
            "  {:>6}-{:<6} GPUs  {:>4} runs  mean ETTR {:.3}",
            b.gpus_lo, b.gpus_hi, b.runs, b.mean_ettr
        );
    }

    let loss = goodput_loss(&store, &AttributionConfig::paper_default());
    println!(
        "\n== goodput loss == {:.0} GPU-h from failures, {:.0} GPU-h from requeue preemptions ({:.1}% second-order)",
        loss.total_failure_loss,
        loss.total_preemption_loss,
        loss.preemption_share() * 100.0
    );

    let w = goodput_waterfall(
        &store,
        8,
        SimDuration::from_mins(60),
        SimDuration::from_mins(5),
    );
    let (p, r, l, i) = w.fractions();
    println!(
        "== capacity waterfall == productive {:.1}% | restart {:.2}% | replay {:.2}% | idle {:.1}%",
        p * 100.0,
        r * 100.0,
        l * 100.0,
        i * 100.0
    );

    println!(
        "\n== queue waits == mean {:.2} h overall",
        mean_wait_hours(&store)
    );
    for b in wait_by_size_and_qos(&store) {
        if b.count >= 50 {
            println!(
                "  {:>6}+ GPUs {:<7} {:>6} starts, mean {:.2} h, max {:.1} h",
                b.gpus_lo,
                b.qos.to_string(),
                b.count,
                b.mean_wait_hours,
                b.max_wait_hours
            );
        }
    }
    Ok(())
}

fn cmd_project(flags: &HashMap<String, String>) -> Result<(), String> {
    let rate = flag_f64(flags, "rate", 6.50)? / 1000.0;
    let gpus: Vec<u32> = match flags.get("gpus") {
        None => vec![1024, 4096, 16_384, 65_536, 131_072],
        Some(v) => v
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad GPU count {s:?}")))
            .collect::<Result<_, _>>()?,
    };
    let proj = MttfProjection::new(rate);
    println!(
        "MTTF projections at {:.2} failures per 1000 node-days:",
        rate * 1000.0
    );
    for g in gpus {
        let h = proj.mttf_hours(g);
        if h >= 1.0 {
            println!("  {g:>8} GPUs -> {h:.2} h");
        } else {
            println!("  {g:>8} GPUs -> {:.1} min", h * 60.0);
        }
    }
    Ok(())
}

fn cmd_ettr(flags: &HashMap<String, String>) -> Result<(), String> {
    let gpus = flag_u64(flags, "gpus", 0)? as u32;
    if gpus == 0 {
        return Err("ettr requires --gpus <count>".to_string());
    }
    let params = EttrParams {
        nodes: gpus.div_ceil(8),
        r_f: flag_f64(flags, "rate", 6.50)? / 1000.0,
        queue_time: flag_f64(flags, "queue", 5.0)? / 60.0 / 24.0,
        restart_overhead: flag_f64(flags, "overhead", 5.0)? / 60.0 / 24.0,
        checkpoint_interval: flag_f64(flags, "checkpoint", 60.0)? / 60.0 / 24.0,
        productive_time: flag_f64(flags, "work", 7.0)?,
    };
    let trials = flag_u64(flags, "trials", 4000)? as u32;
    let analytic = expected_ettr(&params);
    let mut rng = SimRng::seed_from(1);
    let mc = monte_carlo_ettr(&params, trials, &mut rng);
    println!(
        "job: {gpus} GPUs ({} nodes), MTTF {:.2} h",
        params.nodes,
        params.mttf_days() * 24.0
    );
    println!(
        "expected failures over the run: {:.2}",
        params.expected_failures()
    );
    println!("E[ETTR] analytic:     {analytic:.4}");
    println!(
        "E[ETTR] monte carlo:  {:.4} ± {:.4} ({} trials)",
        mc.mean,
        1.645 * mc.std_error,
        trials
    );
    Ok(())
}
