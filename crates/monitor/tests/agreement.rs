//! Streaming-vs-batch agreement harness.
//!
//! One simulated run, two analyses: the `rsc-monitor` streaming
//! estimators fed live over the event bus, and the `rsc-core` batch
//! analyses over the sealed telemetry view. The contract this file pins:
//!
//! - **exact** — counters, cumulative per-bucket MTTF (values *and*
//!   confidence intervals), the status-only failure rate, the expected
//!   ETTR derived from it, fleet availability / MTTR / lost node-days,
//!   and (with un-windowed estimator windows) the lemon features;
//! - **tolerated** — log-histogram quantiles (p90 within the histogram's
//!   documented ~10% bucket resolution);
//! - **paths** — a live run and a cache-replayed run produce equal
//!   reports, field for field.

use rsc_core::availability::fleet_availability;
use rsc_core::lemon::{compute_features, compute_windowed_features};
use rsc_core::mttf::{estimate_status_only_failure_rate, mttf_by_job_size, FailureScope};
use rsc_core::AttributionConfig;
use rsc_monitor::config::MonitorConfig;
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_monitor::replay::replay_view;
use rsc_sim::bus::SharedObserver;
use rsc_sim::config::SimConfig;
use rsc_sim::runner::ScenarioSpec;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::view::TelemetryView;

const DAYS: u64 = 30;
const SEED: u64 = 20_250_301;

/// Runs the fixture scenario live with a monitor attached, returning the
/// monitor and the sealed view it observed.
fn live_monitored(config: MonitorConfig) -> (ReliabilityMonitor, TelemetryView) {
    let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), SEED, DAYS);
    let handle = SharedObserver::new(ReliabilityMonitor::new(config));
    let view = spec.simulate_observed(Box::new(handle.clone()));
    let monitor = handle.try_into_inner().expect("sole handle");
    (monitor, view)
}

#[test]
fn counters_match_view_exactly() {
    let (monitor, view) = live_monitored(MonitorConfig::rsc_default());
    let c = monitor.counters();
    assert_eq!(c.jobs as usize, view.jobs().len());
    assert_eq!(c.health_events as usize, view.health_events().len());
    assert_eq!(c.node_events as usize, view.node_events().len());
    assert_eq!(c.exclusions as usize, view.exclusions().len());
    assert_eq!(c.ground_truth as usize, view.ground_truth_failures().len());
    assert_eq!(c.ckpt_fallbacks as usize, view.ckpt_fallbacks().len());
    assert_eq!(
        c.jobs_started as usize,
        view.jobs()
            .iter()
            .filter(|r| r.started_at.is_some())
            .count()
    );
    let gpu_hours: f64 = view
        .jobs()
        .iter()
        .map(|r| r.runtime().as_hours() * r.gpus as f64)
        .sum();
    assert_eq!(c.gpu_hours, gpu_hours);
    assert_eq!(monitor.gpu_swaps(), view.gpu_swaps());
    assert_eq!(monitor.horizon(), Some(view.horizon()));
    // The run produced enough signal for the harness to be meaningful.
    assert!(c.jobs > 100, "fixture too quiet: {} jobs", c.jobs);
    assert!(c.node_events > 0);
}

#[test]
fn streaming_mttf_equals_batch_bitwise() {
    let (monitor, view) = live_monitored(MonitorConfig::rsc_default());
    let batch = mttf_by_job_size(
        &view,
        FailureScope::AllFailures,
        &AttributionConfig::default(),
    );
    let streaming = monitor.mttf().points();
    // Bitwise equality: same fold order, same arithmetic, same CI math.
    assert_eq!(streaming, batch);
    assert!(!batch.is_empty());
}

#[test]
fn streaming_failure_rate_and_ettr_equal_batch() {
    let cfg = MonitorConfig::rsc_default();
    let min_gpus = cfg.min_gpus;
    let ref_job = cfg.ref_job;
    let (monitor, view) = live_monitored(cfg);
    let batch_rate = estimate_status_only_failure_rate(&view, min_gpus);
    assert_eq!(monitor.failure_rate().rate(), batch_rate);
    assert!(batch_rate > 0.0, "fixture produced no infra failures");

    let batch_ettr = rsc_core::expected_ettr(&ref_job.params(batch_rate));
    assert_eq!(monitor.expected_ettr(), Some(batch_ettr));
}

#[test]
fn streaming_availability_equals_batch() {
    let (monitor, view) = live_monitored(MonitorConfig::rsc_default());
    let batch = fleet_availability(&view);
    let snap = monitor.availability().snapshot(view.horizon());
    assert_eq!(snap.fleet_availability, batch.fleet_availability);
    assert_eq!(snap.mttr_hours, batch.mttr_hours);
    assert_eq!(snap.lost_node_days, batch.lost_node_days);
    assert!(snap.completed_repairs > 0);
    // p90 comes from the log-bucketed histogram: exact rank, quantized
    // value. The bucket midpoint is within ±4.4% of the true value; allow
    // 10% for headroom.
    let rel = (snap.mttr_p90_hours - batch.mttr_p90_hours).abs() / batch.mttr_p90_hours;
    assert!(
        rel < 0.10,
        "p90 drifted: streaming {} vs batch {}",
        snap.mttr_p90_hours,
        batch.mttr_p90_hours
    );
}

#[test]
fn unwindowed_lemon_features_equal_batch() {
    let (monitor, view) = live_monitored(MonitorConfig::unwindowed(DAYS));
    let batch = compute_features(&view, SimTime::ZERO, view.horizon());
    let streaming = monitor.lemon_features();
    assert_eq!(streaming, batch);
    // The fixture exercises at least one non-trivial signal.
    assert!(batch.iter().any(|f| f.tickets > 0 || f.out_count > 0));
}

#[test]
fn windowed_lemon_features_equal_batch_twin() {
    // The operational trailing-window view, with the window tightened to
    // 7 days over the 30-day run so it genuinely trims early-run signal
    // (the default 28-day window happens to cover every signal in this
    // fixture, which would make the vacuity check below meaningless).
    let mut config = MonitorConfig::rsc_default();
    config.lemon_window = SimDuration::from_days(7);
    let window = config.lemon_window;
    let (monitor, view) = live_monitored(config);
    let horizon = view.horizon();
    let twin = compute_windowed_features(&view, horizon, window);
    assert_eq!(monitor.lemon_features(), twin);
    // The window is not vacuous: the full-range pass disagrees, so the
    // trailing view really dropped early-run signal.
    let full = compute_features(&view, SimTime::ZERO, horizon);
    assert_ne!(twin, full);
    // A window covering the whole run degenerates to the full range
    // (the twin's lower bound saturates at time zero).
    assert_eq!(
        compute_windowed_features(&view, horizon, SimDuration::from_days(DAYS)),
        full
    );
}

#[test]
fn replayed_report_equals_live_report() {
    for config in [
        MonitorConfig::rsc_default(),
        MonitorConfig::unwindowed(DAYS),
    ] {
        let (live, view) = live_monitored(config.clone());
        let mut replayed = ReliabilityMonitor::new(config);
        replay_view(&view, &mut replayed);
        assert_eq!(live.report(), replayed.report());
    }
}

#[test]
fn detection_latency_is_bounded_and_matched() {
    let (monitor, view) = live_monitored(MonitorConfig::rsc_default());
    let d = monitor.detection();
    assert_eq!(d.injected() as usize, view.ground_truth_failures().len());
    assert!(d.matched() <= d.injected());
    assert!(d.matched() > 0, "no injected failure was ever detected");
    // Detection can't be instantaneous or absurdly slow in the fixture.
    let ttd = d.histogram();
    assert!(ttd.mean() > 0.0);
    assert!(ttd.max() < 24.0 * 7.0, "TTD beyond a week: {}", ttd.max());
}
