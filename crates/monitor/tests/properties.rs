//! Property tests for the streaming estimators and the alert engine.
//!
//! Two invariants, each checked both by `proptest` strategies and by a
//! plain deterministic mirror (the mirrors run in minimal environments
//! where the proptest harness is stubbed out):
//!
//! 1. **streaming equals batch** — for arbitrary synthetic telemetry,
//!    replaying the sealed view through a [`ReliabilityMonitor`] yields
//!    cumulative MTTF points, failure rate, and availability identical to
//!    the `rsc-core` batch analyses;
//! 2. **alerts never flap inside the debounce window** — for arbitrary
//!    raise/clear/hold signal sequences at arbitrary times, consecutive
//!    transitions of one key are at least the debounce apart.

use proptest::prelude::*;

use rsc_cluster::ids::{JobId, NodeId};
use rsc_core::availability::fleet_availability;
use rsc_core::mttf::{estimate_status_only_failure_rate, mttf_by_job_size, FailureScope};
use rsc_core::AttributionConfig;
use rsc_monitor::alerts::{AlertEngine, AlertKey, AlertSignal};
use rsc_monitor::config::MonitorConfig;
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_monitor::replay::replay_view;
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{NodeEvent, NodeEventKind, TelemetryStore};
use rsc_telemetry::view::TelemetryView;

const NODES: u32 = 8;
const HORIZON_DAYS: u64 = 20;

/// A tiny deterministic generator so the plain mirrors can sweep many
/// synthetic cases without the proptest runtime.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One synthetic job: (start_hours, runtime_hours, gpus, status_pick).
type JobCase = (u32, u32, u32, u8);
/// One synthetic remediation visit: (node, enter_hours, repair_hours).
type VisitCase = (u32, u32, u32);

fn status_from(pick: u8) -> JobStatus {
    match pick % 5 {
        0 => JobStatus::Completed,
        1 => JobStatus::Failed,
        2 => JobStatus::NodeFail,
        3 => JobStatus::Requeued,
        _ => JobStatus::Cancelled,
    }
}

fn synthetic_view(jobs: &[JobCase], visits: &[VisitCase]) -> TelemetryView {
    let mut store = TelemetryStore::new("prop", NODES);
    let horizon = SimTime::from_days(HORIZON_DAYS);
    let horizon_hours = HORIZON_DAYS * 24;
    // Chronological by end time so the store matches the driver's
    // flush-ordered layout (grouped under daily sweeps).
    let mut ordered: Vec<&JobCase> = jobs.iter().collect();
    ordered.sort_by_key(|&&(start, runtime, _, _)| start as u64 + runtime as u64);
    for (i, &&(start_h, runtime_h, gpus, pick)) in ordered.iter().enumerate() {
        let started_at = SimTime::from_hours(start_h as u64 % horizon_hours);
        let ended_at = started_at + SimDuration::from_hours(1 + runtime_h as u64 % 72);
        store.push_job(JobRecord {
            job: JobId::new(i as u64),
            attempt: 0,
            run: None,
            gpus: 1 + gpus % 64,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(i as u32 % NODES)],
            enqueued_at: started_at,
            started_at: Some(started_at),
            ended_at,
            status: status_from(pick),
            preempted_by: None,
            instigator: None,
        });
    }
    let mut node_events: Vec<NodeEvent> = Vec::new();
    for &(node, enter_h, repair_h) in visits {
        let at = SimTime::from_hours(enter_h as u64 % (horizon_hours - 48));
        let exit = at + SimDuration::from_hours(1 + repair_h as u64 % 48);
        node_events.push(NodeEvent {
            node: NodeId::new(node % NODES),
            at,
            kind: NodeEventKind::EnterRemediation,
        });
        node_events.push(NodeEvent {
            node: NodeId::new(node % NODES),
            at: exit,
            kind: NodeEventKind::ExitRemediation,
        });
    }
    node_events.sort_by_key(|e| e.at);
    for e in node_events {
        store.push_node_event(e);
    }
    store.set_horizon(horizon);
    store.seal()
}

fn assert_streaming_equals_batch(view: &TelemetryView) {
    let config = MonitorConfig::unwindowed(HORIZON_DAYS);
    let min_gpus = config.min_gpus;
    let mut monitor = ReliabilityMonitor::new(config);
    replay_view(view, &mut monitor);

    assert_eq!(
        monitor.mttf().points(),
        mttf_by_job_size(
            view,
            FailureScope::AllFailures,
            &AttributionConfig::default()
        )
    );
    assert_eq!(
        monitor.failure_rate().rate(),
        estimate_status_only_failure_rate(view, min_gpus)
    );
    let batch = fleet_availability(view);
    let snap = monitor.availability().snapshot(view.horizon());
    assert_eq!(snap.fleet_availability, batch.fleet_availability);
    assert_eq!(snap.mttr_hours, batch.mttr_hours);
    assert_eq!(snap.lost_node_days, batch.lost_node_days);
    assert_eq!(monitor.counters().jobs as usize, view.jobs().len());
    assert_eq!(
        monitor.counters().node_events as usize,
        view.node_events().len()
    );
}

/// Replays one signal schedule through an engine and asserts the no-flap
/// invariants: per key, consecutive transitions are >= debounce apart,
/// and no raise lands within the re-raise cooldown of the preceding clear
/// of the same key.
fn assert_no_flap_with_cooldown(
    debounce_days: u64,
    cooldown_days: u64,
    schedule: &[(u32, u8, bool)],
) {
    let debounce = SimDuration::from_days(debounce_days);
    let cooldown = SimDuration::from_days(cooldown_days);
    let mut engine = AlertEngine::with_cooldowns(debounce, cooldown);
    let mut last_transition: std::collections::BTreeMap<AlertKey, SimTime> =
        std::collections::BTreeMap::new();
    let mut last_clear: std::collections::BTreeMap<AlertKey, SimTime> =
        std::collections::BTreeMap::new();
    let mut t = SimTime::ZERO;
    for &(advance_mins, key_pick, raise) in schedule {
        t += SimDuration::from_mins(advance_mins as u64 % (5 * 24 * 60));
        let key = match key_pick % 3 {
            0 => AlertKey::MttfRegression,
            1 => AlertKey::QuarantineSurge,
            _ => AlertKey::LemonSuspect(NodeId::new(key_pick as u32 % 4)),
        };
        let signal = if raise {
            AlertSignal::Raise {
                value: 1.0,
                threshold: 1.0,
                message: String::new(),
            }
        } else {
            AlertSignal::Clear
        };
        if engine.evaluate(t, key, signal) {
            if let Some(&prev) = last_transition.get(&key) {
                assert!(
                    t.saturating_since(prev) >= debounce,
                    "key {key:?} flapped: transitions at {prev:?} and {t:?} < {debounce:?} apart"
                );
            }
            if raise {
                if let Some(&cleared) = last_clear.get(&key) {
                    assert!(
                        t.saturating_since(cleared) >= cooldown,
                        "key {key:?} re-raised at {t:?}, inside the {cooldown:?} cooldown \
                         after clearing at {cleared:?}"
                    );
                }
            } else {
                last_clear.insert(key, t);
            }
            last_transition.insert(key, t);
        }
    }
    // Structural sanity: every alert in the log that cleared did so at or
    // after its raise.
    for a in engine.log() {
        if let Some(cleared) = a.cleared_at {
            assert!(cleared >= a.raised_at);
        }
    }
}

/// The cooldown-free engine (`AlertEngine::new`) is the zero-cooldown
/// special case.
fn assert_no_flap(debounce_days: u64, schedule: &[(u32, u8, bool)]) {
    assert_no_flap_with_cooldown(debounce_days, 0, schedule);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_streaming_equals_batch(
        jobs in proptest::collection::vec((0u32..480, 0u32..96, 0u32..64, 0u8..8), 0..60),
        visits in proptest::collection::vec((0u32..8, 0u32..400, 0u32..60), 0..20),
    ) {
        assert_streaming_equals_batch(&synthetic_view(&jobs, &visits));
    }

    #[test]
    fn prop_alerts_never_flap(
        debounce_days in 0u64..4,
        schedule in proptest::collection::vec((0u32..4000, 0u8..8, 0u8..2), 0..200),
    ) {
        let schedule: Vec<(u32, u8, bool)> =
            schedule.into_iter().map(|(a, k, r)| (a, k, r == 1)).collect();
        assert_no_flap(debounce_days, &schedule);
    }

    #[test]
    fn prop_reraise_cooldown_holds(
        debounce_days in 0u64..4,
        cooldown_days in 0u64..7,
        schedule in proptest::collection::vec((0u32..4000, 0u8..8, 0u8..2), 0..200),
    ) {
        let schedule: Vec<(u32, u8, bool)> =
            schedule.into_iter().map(|(a, k, r)| (a, k, r == 1)).collect();
        assert_no_flap_with_cooldown(debounce_days, cooldown_days, &schedule);
    }
}

#[test]
fn mirror_streaming_equals_batch() {
    let mut rng = XorShift(0x5eed_cafe_f00d_0001);
    for _ in 0..48 {
        let jobs: Vec<JobCase> = (0..rng.below(60))
            .map(|_| {
                (
                    rng.below(480) as u32,
                    rng.below(96) as u32,
                    rng.below(64) as u32,
                    rng.below(8) as u8,
                )
            })
            .collect();
        let visits: Vec<VisitCase> = (0..rng.below(20))
            .map(|_| {
                (
                    rng.below(8) as u32,
                    rng.below(400) as u32,
                    rng.below(60) as u32,
                )
            })
            .collect();
        assert_streaming_equals_batch(&synthetic_view(&jobs, &visits));
    }
}

#[test]
fn mirror_alerts_never_flap() {
    let mut rng = XorShift(0x5eed_cafe_f00d_0002);
    for _ in 0..48 {
        let debounce_days = rng.below(4);
        let schedule: Vec<(u32, u8, bool)> = (0..rng.below(200))
            .map(|_| {
                (
                    rng.below(4000) as u32,
                    rng.below(8) as u8,
                    rng.below(2) == 0,
                )
            })
            .collect();
        assert_no_flap(debounce_days, &schedule);
    }
}

#[test]
fn mirror_reraise_cooldown_holds() {
    let mut rng = XorShift(0x5eed_cafe_f00d_0003);
    for _ in 0..48 {
        let debounce_days = rng.below(4);
        let cooldown_days = rng.below(7);
        let schedule: Vec<(u32, u8, bool)> = (0..rng.below(200))
            .map(|_| {
                (
                    rng.below(4000) as u32,
                    rng.below(8) as u8,
                    rng.below(2) == 0,
                )
            })
            .collect();
        assert_no_flap_with_cooldown(debounce_days, cooldown_days, &schedule);
    }
}

#[test]
fn mirror_empty_view_is_all_zero() {
    let view = synthetic_view(&[], &[]);
    let mut monitor = ReliabilityMonitor::new(MonitorConfig::unwindowed(HORIZON_DAYS));
    replay_view(&view, &mut monitor);
    assert_eq!(monitor.counters().jobs, 0);
    assert!(monitor.mttf().points().is_empty());
    assert_eq!(monitor.failure_rate().rate(), 0.0);
    assert!(monitor.expected_ettr().is_none());
    let snap = monitor.availability().snapshot(view.horizon());
    assert_eq!(snap.fleet_availability, 1.0);
    assert_eq!(snap.completed_repairs, 0);
}
