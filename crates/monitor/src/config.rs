//! Monitor configuration: estimator windows, the reference job for the
//! continuous E[ETTR] readout, and the alerting policy.

use serde::{Deserialize, Serialize};

use rsc_core::ettr::analytical::EttrParams;
use rsc_core::lemon::LemonDetector;
use rsc_sim_core::time::SimDuration;

/// The hypothetical training job whose expected ETTR the monitor tracks
/// continuously as the streaming failure-rate estimate evolves (paper
/// Eq. 1). All durations in days, matching [`EttrParams`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefJob {
    /// Nodes the reference job occupies.
    pub nodes: u32,
    /// Expected queue time after submission and each interruption, days.
    pub queue_time: f64,
    /// Restart overhead `u0`, days.
    pub restart_overhead: f64,
    /// Checkpoint interval, days.
    pub checkpoint_interval: f64,
    /// Productive runtime the job needs, days.
    pub productive_time: f64,
}

impl RefJob {
    /// The paper's hypothetical: a 128-node job, 5-minute restart
    /// overhead, hourly checkpoints, one week of productive time.
    pub fn rsc_default() -> Self {
        RefJob {
            nodes: 128,
            queue_time: 5.0 / 60.0 / 24.0,
            restart_overhead: 5.0 / 60.0 / 24.0,
            checkpoint_interval: 1.0 / 24.0,
            productive_time: 7.0,
        }
    }

    /// Completes the reference job into [`EttrParams`] with a failure
    /// rate (failures per node-day).
    pub fn params(&self, r_f: f64) -> EttrParams {
        EttrParams {
            nodes: self.nodes,
            r_f,
            queue_time: self.queue_time,
            restart_overhead: self.restart_overhead,
            checkpoint_interval: self.checkpoint_interval,
            productive_time: self.productive_time,
        }
    }
}

/// Raise/clear thresholds and the transition debounce for the alert
/// pipeline.
///
/// Every alert has distinct raise and clear conditions (hysteresis), and
/// once a key transitions (raise or clear) the opposite transition is
/// suppressed until `debounce` has elapsed — so alerts cannot flap faster
/// than the debounce window no matter how noisy the estimators get.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertPolicy {
    /// Minimum simulated time between opposite transitions of one alert.
    pub debounce: SimDuration,
    /// After a key clears, suppress re-raising *that key* until this much
    /// time has elapsed since the clear. `ZERO` (the default) disables the
    /// cooldown, reproducing pre-cooldown alert logs exactly.
    pub reraise_cooldown: SimDuration,
    /// Raise `MttfRegression` when the rolling-window MTTF's upper
    /// confidence bound falls below this fraction of the cumulative MTTF.
    pub mttf_raise_ratio: f64,
    /// Clear `MttfRegression` when the rolling point estimate recovers to
    /// this fraction of the cumulative MTTF.
    pub mttf_clear_ratio: f64,
    /// Minimum failures inside the rolling window before `MttfRegression`
    /// may raise (significance floor for the moment-based interval).
    pub min_rolling_failures: u64,
    /// Raise `QuarantineSurge` at this many quarantines in the window.
    pub quarantine_raise: u32,
    /// Clear `QuarantineSurge` at or below this many.
    pub quarantine_clear: u32,
    /// Clear a `LemonSuspect` only when the node's windowed score drops
    /// this many criteria below the detector's raise threshold.
    pub lemon_clear_margin: u32,
}

impl AlertPolicy {
    /// Defaults: 2-day debounce, raise on a 2× MTTF regression with ≥ 5
    /// windowed failures, quarantine surge at 3 nodes.
    pub fn rsc_default() -> Self {
        AlertPolicy {
            debounce: SimDuration::from_days(2),
            reraise_cooldown: SimDuration::ZERO,
            mttf_raise_ratio: 0.5,
            mttf_clear_ratio: 0.8,
            min_rolling_failures: 5,
            quarantine_raise: 3,
            quarantine_clear: 1,
            lemon_clear_margin: 1,
        }
    }
}

impl Default for AlertPolicy {
    fn default() -> Self {
        AlertPolicy::rsc_default()
    }
}

/// Full monitor configuration.
///
/// `MonitorConfig::default()` is **disabled**: the simulator's default
/// path attaches no observer and its telemetry stays byte-identical to
/// builds without the monitor. Construct [`MonitorConfig::rsc_default`]
/// (or set `enabled`) to opt in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Whether the monitor should be attached at all.
    pub enabled: bool,
    /// Job-size floor (GPUs, exclusive) for the streaming failure-rate
    /// estimator — the paper computes `r_f` over multi-GPU jobs.
    pub min_gpus: u32,
    /// Rolling window for the regression-detecting MTTF estimate.
    pub mttf_window: SimDuration,
    /// Trailing window for the Table-II lemon signals.
    pub lemon_window: SimDuration,
    /// Trailing window for the quarantine-surge counter.
    pub quarantine_window: SimDuration,
    /// Threshold classifier applied to the windowed lemon features.
    pub detector: LemonDetector,
    /// Reference job for the continuous expected-ETTR readout.
    pub ref_job: RefJob,
    /// Alerting thresholds and debounce.
    pub alerts: AlertPolicy,
}

impl MonitorConfig {
    /// The disabled configuration (also `Default`).
    pub fn disabled() -> Self {
        MonitorConfig {
            enabled: false,
            ..MonitorConfig::rsc_default()
        }
    }

    /// The enabled default: 7-day MTTF window, the paper's 28-day lemon
    /// window, 7-day quarantine window, default detector and alert policy.
    pub fn rsc_default() -> Self {
        MonitorConfig {
            enabled: true,
            min_gpus: 1,
            mttf_window: SimDuration::from_days(7),
            lemon_window: SimDuration::from_days(28),
            quarantine_window: SimDuration::from_days(7),
            detector: LemonDetector::rsc_default(),
            ref_job: RefJob::rsc_default(),
            alerts: AlertPolicy::rsc_default(),
        }
    }

    /// Agreement-mode configuration: every trailing window stretched to at
    /// least `horizon_days`, so nothing is ever evicted and the windowed
    /// estimators must converge to the batch analyses exactly. Used by the
    /// streaming-vs-batch agreement harness.
    pub fn unwindowed(horizon_days: u64) -> Self {
        let w = SimDuration::from_days(horizon_days.max(1) * 2);
        MonitorConfig {
            lemon_window: w,
            quarantine_window: w,
            ..MonitorConfig::rsc_default()
        }
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(!MonitorConfig::default().enabled);
        assert!(MonitorConfig::rsc_default().enabled);
    }

    #[test]
    fn unwindowed_covers_horizon() {
        let cfg = MonitorConfig::unwindowed(30);
        assert!(cfg.lemon_window >= SimDuration::from_days(30));
        assert!(cfg.quarantine_window >= SimDuration::from_days(30));
        assert!(cfg.enabled);
    }

    #[test]
    fn ref_job_params_carry_rate() {
        let p = RefJob::rsc_default().params(6.5e-3);
        assert_eq!(p.nodes, 128);
        assert_eq!(p.r_f, 6.5e-3);
    }
}
