//! `rsc-monitor`: an online streaming reliability monitor over the
//! simulator's event bus.
//!
//! The batch analyses in `rsc-core` answer reliability questions after a
//! run has sealed its telemetry. This crate answers the same questions
//! *while the run is happening*, the way a production observability stack
//! would: a [`ReliabilityMonitor`] attaches to the
//! [`rsc_sim::bus`] event stream and maintains bounded-memory incremental
//! estimators —
//!
//! - cumulative per-job-size MTTF with Gamma confidence intervals, an
//!   exact streaming twin of [`rsc_core::mttf::mttf_by_job_size`];
//! - a rolling-window MTTF with a moment-based interval, for regression
//!   detection;
//! - the status-only failure rate `r_f` and a continuously re-evaluated
//!   analytic expected ETTR for a reference job (paper Eq. 1);
//! - fleet availability, MTTR, and log-bucketed time-to-detect /
//!   time-to-repair histograms;
//! - windowed lemon scores over the paper's Table-II signals
//!   ([`rsc_core::lemon`]);
//!
//! plus a typed, deduplicated alert pipeline ([`alerts`]) with
//! raise/clear hysteresis and debounce.
//!
//! Two delivery paths produce identical end states: live attachment
//! during simulation, and [`replay::replay_view`] over a sealed
//! [`rsc_telemetry::view::TelemetryView`] (used when the scenario cache
//! skips simulation — see [`runner::MonitoredRunner`]). The agreement
//! tests in `tests/agreement.rs` pin streaming-vs-batch equality:
//! counters and cumulative estimators match the batch analyses exactly;
//! windowed and histogram-based readouts match within documented
//! tolerances.
//!
//! # Quickstart
//!
//! ```
//! use rsc_monitor::config::MonitorConfig;
//! use rsc_monitor::monitor::ReliabilityMonitor;
//! use rsc_sim::bus::SharedObserver;
//! use rsc_sim::config::SimConfig;
//! use rsc_sim::driver::ClusterSim;
//! use rsc_sim_core::time::SimDuration;
//!
//! let handle = SharedObserver::new(ReliabilityMonitor::new(MonitorConfig::rsc_default()));
//! let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 42);
//! sim.attach_observer(Box::new(handle.clone()));
//! sim.run(SimDuration::from_days(3));
//! let report = handle.with(|m| m.report());
//! assert!(report.counters.jobs > 0);
//! ```

#![warn(missing_docs)]

pub mod alerts;
pub mod config;
pub mod estimators;
pub mod export;
pub mod lemon;
pub mod monitor;
pub mod replay;
pub mod report;
pub mod runner;
pub mod tap;

pub use alerts::{Alert, AlertEngine, AlertKey, AlertSignal};
pub use config::{AlertPolicy, MonitorConfig, RefJob};
pub use estimators::{
    AvailabilitySnapshot, Counters, DetectionLatency, LogHistogram, RollingMttf,
    RollingMttfEstimate, StreamingAvailability, StreamingFailureRate, StreamingMttf,
};
pub use export::{
    write_actions_csv, write_actions_rollup_csv, write_alerts_csv, write_alerts_rollup_csv,
    write_report_json,
};
pub use lemon::WindowedLemon;
pub use monitor::ReliabilityMonitor;
pub use replay::replay_view;
pub use report::{HistogramSummary, LemonSuspect, MonitorReport};
pub use runner::{MonitoredBatch, MonitoredRun, MonitoredRunner};
