//! The typed, deduplicated alert pipeline.
//!
//! Estimator readouts become [`AlertSignal`]s at each tick; the
//! [`AlertEngine`] turns them into a raise/clear transition log with two
//! guarantees:
//!
//! - **dedup** — raising an already-active key (or clearing an inactive
//!   one) is a no-op, so a persistent condition produces one alert, not
//!   one per tick;
//! - **debounce** — after any transition of a key, the opposite transition
//!   is suppressed until the policy's debounce has elapsed, so an alert
//!   can never flap faster than the debounce window
//!   (`tests/properties.rs` proves this for arbitrary signal sequences).
//!
//! Hysteresis lives in the *conditions*: each alert kind has distinct
//! raise and clear thresholds (see [`crate::config::AlertPolicy`]), so a
//! metric hovering at the raise threshold holds state instead of toggling.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sim_core::time::{SimDuration, SimTime};

/// What an alert is about. Keys identify alerts for dedup and debounce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlertKey {
    /// A node's windowed lemon score crossed the detector threshold.
    LemonSuspect(NodeId),
    /// The rolling-window MTTF regressed significantly below the
    /// cumulative MTTF.
    MttfRegression,
    /// Too many nodes quarantined within the trailing window.
    QuarantineSurge,
}

impl AlertKey {
    /// Short machine-readable label (`lemon_suspect`, `mttf_regression`,
    /// `quarantine_surge`).
    pub fn label(&self) -> &'static str {
        match self {
            AlertKey::LemonSuspect(_) => "lemon_suspect",
            AlertKey::MttfRegression => "mttf_regression",
            AlertKey::QuarantineSurge => "quarantine_surge",
        }
    }

    /// The node this alert concerns, when it concerns one.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            AlertKey::LemonSuspect(n) => Some(*n),
            _ => None,
        }
    }
}

/// One raised (and possibly cleared) alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// What the alert is about.
    pub key: AlertKey,
    /// When it was raised.
    pub raised_at: SimTime,
    /// When it cleared, if it has.
    pub cleared_at: Option<SimTime>,
    /// The metric value at raise time.
    pub value: f64,
    /// The threshold the value crossed.
    pub threshold: f64,
    /// Human-readable description.
    pub message: String,
}

impl Alert {
    /// Whether the alert is still active.
    pub fn is_active(&self) -> bool {
        self.cleared_at.is_none()
    }
}

/// One evaluation of an alert condition.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertSignal {
    /// The raise condition holds.
    Raise {
        /// Metric value.
        value: f64,
        /// Raise threshold.
        threshold: f64,
        /// Description for the alert record.
        message: String,
    },
    /// The clear condition holds.
    Clear,
    /// Neither condition holds (the hysteresis band): keep current state.
    Hold,
}

#[derive(Debug, Clone, Copy, Default)]
struct KeyState {
    /// Index into the log of the currently-active alert, if any.
    active: Option<usize>,
    last_transition: Option<SimTime>,
    /// When the key last cleared, for the post-clear re-raise cooldown.
    last_clear: Option<SimTime>,
}

/// Raise/clear state machine over alert keys.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    debounce: SimDuration,
    reraise_cooldown: SimDuration,
    states: BTreeMap<AlertKey, KeyState>,
    log: Vec<Alert>,
}

impl AlertEngine {
    /// An engine with the given transition debounce and no re-raise
    /// cooldown (the pre-cooldown behaviour).
    pub fn new(debounce: SimDuration) -> Self {
        AlertEngine::with_cooldowns(debounce, SimDuration::ZERO)
    }

    /// An engine with a transition debounce plus a post-clear re-raise
    /// cooldown: after a key clears, raising *that key* again is
    /// suppressed until the cooldown has elapsed since the clear. This
    /// kills the churn of a metric that oscillates across the hysteresis
    /// band — each clear buys a quiet period instead of an immediate
    /// re-raise one debounce later. `ZERO` reproduces [`AlertEngine::new`]
    /// exactly.
    pub fn with_cooldowns(debounce: SimDuration, reraise_cooldown: SimDuration) -> Self {
        AlertEngine {
            debounce,
            reraise_cooldown,
            states: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Applies one evaluated signal for `key` at `now`. Returns `true` if
    /// a transition (raise or clear) happened.
    pub fn evaluate(&mut self, now: SimTime, key: AlertKey, signal: AlertSignal) -> bool {
        let state = self.states.entry(key).or_default();
        let debounced = state
            .last_transition
            .is_some_and(|t| now.saturating_since(t) < self.debounce);
        match signal {
            AlertSignal::Raise {
                value,
                threshold,
                message,
            } if state.active.is_none() => {
                let cooling = state
                    .last_clear
                    .is_some_and(|t| now.saturating_since(t) < self.reraise_cooldown);
                if debounced || cooling {
                    return false;
                }
                state.active = Some(self.log.len());
                state.last_transition = Some(now);
                self.log.push(Alert {
                    key,
                    raised_at: now,
                    cleared_at: None,
                    value,
                    threshold,
                    message,
                });
                true
            }
            AlertSignal::Clear if state.active.is_some() => {
                if debounced {
                    return false;
                }
                let idx = state.active.take().expect("checked active");
                state.last_transition = Some(now);
                state.last_clear = Some(now);
                self.log[idx].cleared_at = Some(now);
                true
            }
            // Dedup (raise-while-active, clear-while-inactive) and Hold.
            _ => false,
        }
    }

    /// Every alert ever raised, in raise order.
    pub fn log(&self) -> &[Alert] {
        &self.log
    }

    /// Currently-active alerts.
    pub fn active(&self) -> impl Iterator<Item = &Alert> {
        self.log.iter().filter(|a| a.is_active())
    }

    /// Number of currently-active alerts.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raise() -> AlertSignal {
        AlertSignal::Raise {
            value: 5.0,
            threshold: 3.0,
            message: "test".to_string(),
        }
    }

    #[test]
    fn raise_then_clear() {
        let mut e = AlertEngine::new(SimDuration::from_days(1));
        assert!(e.evaluate(SimTime::from_days(1), AlertKey::MttfRegression, raise()));
        assert_eq!(e.active_count(), 1);
        // Dedup: second raise is a no-op.
        assert!(!e.evaluate(SimTime::from_days(2), AlertKey::MttfRegression, raise()));
        assert_eq!(e.log().len(), 1);
        assert!(e.evaluate(
            SimTime::from_days(3),
            AlertKey::MttfRegression,
            AlertSignal::Clear
        ));
        assert_eq!(e.active_count(), 0);
        assert_eq!(e.log()[0].cleared_at, Some(SimTime::from_days(3)));
    }

    #[test]
    fn debounce_suppresses_fast_flap() {
        let mut e = AlertEngine::new(SimDuration::from_days(2));
        assert!(e.evaluate(SimTime::from_days(10), AlertKey::QuarantineSurge, raise()));
        // Clear attempt one day later: inside the debounce, suppressed.
        assert!(!e.evaluate(
            SimTime::from_days(11),
            AlertKey::QuarantineSurge,
            AlertSignal::Clear
        ));
        assert_eq!(e.active_count(), 1);
        // Two days later: allowed.
        assert!(e.evaluate(
            SimTime::from_days(12),
            AlertKey::QuarantineSurge,
            AlertSignal::Clear
        ));
    }

    #[test]
    fn reraise_cooldown_suppresses_post_clear_churn() {
        let mut e = AlertEngine::with_cooldowns(SimDuration::ZERO, SimDuration::from_days(5));
        assert!(e.evaluate(SimTime::from_days(1), AlertKey::MttfRegression, raise()));
        assert!(e.evaluate(
            SimTime::from_days(2),
            AlertKey::MttfRegression,
            AlertSignal::Clear
        ));
        // Re-raise two days after the clear: inside the cooldown.
        assert!(!e.evaluate(SimTime::from_days(4), AlertKey::MttfRegression, raise()));
        assert_eq!(e.log().len(), 1);
        // A different key is unaffected by this key's cooldown clock.
        assert!(e.evaluate(SimTime::from_days(4), AlertKey::QuarantineSurge, raise()));
        // Five days after the clear: allowed again.
        assert!(e.evaluate(SimTime::from_days(7), AlertKey::MttfRegression, raise()));
        assert_eq!(e.log().len(), 3);
    }

    #[test]
    fn keys_are_independent() {
        let mut e = AlertEngine::new(SimDuration::from_days(2));
        let a = AlertKey::LemonSuspect(NodeId::new(1));
        let b = AlertKey::LemonSuspect(NodeId::new(2));
        assert!(e.evaluate(SimTime::from_days(1), a, raise()));
        // A different key raising moments later is unaffected by A's
        // debounce clock.
        assert!(e.evaluate(SimTime::from_days(1), b, raise()));
        assert_eq!(e.active_count(), 2);
        assert!(a.node().is_some());
        assert_eq!(a.label(), "lemon_suspect");
    }

    #[test]
    fn hold_never_transitions() {
        let mut e = AlertEngine::new(SimDuration::ZERO);
        assert!(!e.evaluate(
            SimTime::from_days(1),
            AlertKey::MttfRegression,
            AlertSignal::Hold
        ));
        assert!(e.log().is_empty());
        // Clear without a prior raise is a no-op too.
        assert!(!e.evaluate(
            SimTime::from_days(1),
            AlertKey::MttfRegression,
            AlertSignal::Clear
        ));
    }
}
