//! Scenario execution with the monitor attached: live when the scenario
//! simulates, replayed when the artifact cache satisfies it, identical
//! report either way.

use std::path::PathBuf;
use std::sync::Arc;

use rsc_sim::bus::SharedObserver;
use rsc_sim::runner::{ObservedOutcome, ScenarioRunner, ScenarioSpec};
use rsc_telemetry::view::TelemetryView;

use rsc_telemetry::store::ControlActionEvent;

use crate::alerts::Alert;
use crate::config::MonitorConfig;
use crate::export::{
    write_actions_csv, write_actions_rollup_csv, write_alerts_csv, write_alerts_rollup_csv,
    write_report_json,
};
use crate::monitor::ReliabilityMonitor;
use crate::replay::replay_view;
use crate::report::MonitorReport;

/// One monitored scenario run.
#[derive(Debug)]
pub struct MonitoredRun {
    /// The sealed telemetry.
    pub view: Arc<TelemetryView>,
    /// The monitor report, when the monitor was enabled.
    pub report: Option<MonitorReport>,
    /// Whether the scenario simulated live or was replayed from cache.
    pub outcome: ObservedOutcome,
    /// Paths of the written report artifacts (JSON report, alerts CSV),
    /// when the runner has a cache directory and the monitor was enabled.
    pub artifacts: Vec<PathBuf>,
}

/// A [`ScenarioRunner`] that attaches a [`ReliabilityMonitor`] to every
/// scenario it executes.
///
/// With the monitor disabled (the default [`MonitorConfig`]) this is a
/// plain pass-through: no observer is attached and the simulated
/// telemetry is byte-identical to an unmonitored run. Enabled, each
/// scenario yields a [`MonitorReport`] — streamed live on cache misses,
/// reconstructed via [`replay_view`] on hits — and, when the runner
/// caches artifacts, the report JSON and alert CSV are written next to
/// the telemetry snapshot as `{fingerprint:016x}.monitor.json` and
/// `{fingerprint:016x}.alerts.csv`.
#[derive(Debug, Clone)]
pub struct MonitoredRunner {
    runner: ScenarioRunner,
    config: MonitorConfig,
}

impl MonitoredRunner {
    /// Wraps a scenario runner with a monitor configuration.
    pub fn new(runner: ScenarioRunner, config: MonitorConfig) -> Self {
        MonitoredRunner { runner, config }
    }

    /// The wrapped runner.
    pub fn runner(&self) -> &ScenarioRunner {
        &self.runner
    }

    /// The monitor configuration applied to each scenario.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Executes one scenario with the monitor attached.
    pub fn run_one(&self, spec: &ScenarioSpec) -> MonitoredRun {
        if !self.config.enabled {
            let view = self.runner.run_one(spec);
            return MonitoredRun {
                view,
                report: None,
                outcome: ObservedOutcome::Live,
                artifacts: Vec::new(),
            };
        }

        let handle = SharedObserver::new(ReliabilityMonitor::new(self.config.clone()));
        let (view, outcome) = self.runner.run_one_observed(spec, Box::new(handle.clone()));
        if outcome == ObservedOutcome::CachedSkipped {
            handle.with(|monitor| replay_view(&view, monitor));
        }
        let report = handle.with(|monitor| monitor.report());

        let mut artifacts = Vec::new();
        if let Some(dir) = self.runner.cache_dir() {
            let fp = spec.fingerprint();
            let json_path = dir.join(format!("{fp:016x}.monitor.json"));
            let csv_path = dir.join(format!("{fp:016x}.alerts.csv"));
            // Best-effort, like the telemetry artifact itself: a failed
            // write only costs a rebuild next run.
            if write_report_json(&json_path, &report).is_ok() {
                artifacts.push(json_path);
            }
            if write_alerts_csv(&csv_path, &report.alerts).is_ok() {
                artifacts.push(csv_path);
            }
            let actions_path = dir.join(format!("{fp:016x}.actions.csv"));
            if write_actions_csv(&actions_path, view.control_actions()).is_ok() {
                artifacts.push(actions_path);
            }
        }

        MonitoredRun {
            view,
            report: Some(report),
            outcome,
            artifacts,
        }
    }

    /// Executes a batch of scenarios with the monitor attached, writing
    /// one combined `alerts_rollup.csv` next to the artifact cache.
    ///
    /// When the wrapped runner has a cache directory, the batch first
    /// simulates across the runner's worker pool (warming the telemetry
    /// cache in parallel), then produces each monitor report by replaying
    /// the sealed views — so the monitored pass costs one read over
    /// cached telemetry rather than a second simulation. Scenarios keep
    /// their input order in both the returned runs and the rollup rows,
    /// labelled by spec fingerprint.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> MonitoredBatch {
        if self.runner.cache_dir().is_some() {
            let _ = self.runner.run_all(specs);
        }
        let runs: Vec<MonitoredRun> = specs.iter().map(|s| self.run_one(s)).collect();

        let mut rollup = None;
        let mut actions_rollup = None;
        if self.config.enabled {
            if let Some(dir) = self.runner.cache_dir() {
                let entries: Vec<(String, &[Alert])> = specs
                    .iter()
                    .zip(&runs)
                    .filter_map(|(spec, run)| {
                        run.report
                            .as_ref()
                            .map(|r| (format!("{:016x}", spec.fingerprint()), r.alerts.as_slice()))
                    })
                    .collect();
                let path = dir.join("alerts_rollup.csv");
                // Best-effort, like the per-scenario artifacts.
                if write_alerts_rollup_csv(&path, &entries).is_ok() {
                    rollup = Some(path);
                }
                let action_entries: Vec<(String, &[ControlActionEvent])> = specs
                    .iter()
                    .zip(&runs)
                    .map(|(spec, run)| {
                        (
                            format!("{:016x}", spec.fingerprint()),
                            run.view.control_actions(),
                        )
                    })
                    .collect();
                let actions_path = dir.join("actions_rollup.csv");
                if write_actions_rollup_csv(&actions_path, &action_entries).is_ok() {
                    actions_rollup = Some(actions_path);
                }
            }
        }
        MonitoredBatch {
            runs,
            rollup,
            actions_rollup,
        }
    }
}

/// The result of a [`MonitoredRunner::run_all`] batch.
#[derive(Debug)]
pub struct MonitoredBatch {
    /// Per-scenario monitored runs, in spec order.
    pub runs: Vec<MonitoredRun>,
    /// Path of the combined alert rollup CSV, when the runner has a
    /// cache directory and the monitor was enabled.
    pub rollup: Option<PathBuf>,
    /// Path of the combined control-action rollup CSV, written under the
    /// same conditions as `rollup`. Open-loop batches produce a
    /// header-only file: the column contract holds whether or not a
    /// controller ever actuated.
    pub actions_rollup: Option<PathBuf>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_sim::config::SimConfig;

    fn temp_cache(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rsc-monitored-{tag}-{}", std::process::id()))
    }

    #[test]
    fn disabled_monitor_is_passthrough() {
        let runner =
            MonitoredRunner::new(ScenarioRunner::without_cache(), MonitorConfig::disabled());
        let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), 3, 2);
        let run = runner.run_one(&spec);
        assert!(run.report.is_none());
        assert!(run.artifacts.is_empty());
        assert_eq!(run.view.jobs(), spec.simulate().jobs());
    }

    #[test]
    fn batch_writes_combined_rollup() {
        let dir = temp_cache("rollup");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = MonitoredRunner::new(
            ScenarioRunner::new().with_cache_dir(&dir).workers(2),
            MonitorConfig::rsc_default(),
        );
        let specs = [
            ScenarioSpec::new(SimConfig::small_test_cluster(), 5, 3),
            ScenarioSpec::new(SimConfig::small_test_cluster(), 7, 3),
        ];
        let batch = runner.run_all(&specs);
        assert_eq!(batch.runs.len(), 2);
        // Open-loop batches still write the action rollup: header-only.
        let actions = batch.actions_rollup.expect("actions rollup written");
        let actions_body = std::fs::read_to_string(&actions).expect("actions readable");
        assert_eq!(actions_body.lines().count(), 1);
        assert!(actions_body.starts_with("scenario,kind,trigger,"));
        let rollup = batch.rollup.expect("rollup written next to cache");
        assert_eq!(rollup, dir.join("alerts_rollup.csv"));
        let body = std::fs::read_to_string(&rollup).expect("rollup readable");
        let header = body.lines().next().expect("header row");
        assert!(header.starts_with("scenario,kind,node,"));
        // Every data row is labelled with one of the batch fingerprints.
        let fps: Vec<String> = specs
            .iter()
            .map(|s| format!("{:016x}", s.fingerprint()))
            .collect();
        for line in body.lines().skip(1) {
            assert!(fps.iter().any(|fp| line.starts_with(fp.as_str())));
        }
        // A second identical batch replays from cache and rewrites the
        // same bytes.
        let again = runner.run_all(&specs);
        assert!(again
            .runs
            .iter()
            .all(|r| r.outcome == ObservedOutcome::CachedSkipped));
        assert_eq!(std::fs::read_to_string(&rollup).expect("reread"), body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_replay_reports_like_live() {
        let dir = temp_cache("replay");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = MonitoredRunner::new(
            ScenarioRunner::new().with_cache_dir(&dir).workers(1),
            MonitorConfig::rsc_default(),
        );
        let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), 5, 3);

        let cold = runner.run_one(&spec);
        assert_eq!(cold.outcome, ObservedOutcome::Live);
        let warm = runner.run_one(&spec);
        assert_eq!(warm.outcome, ObservedOutcome::CachedSkipped);

        // The replayed report equals the live one, field for field.
        assert_eq!(cold.report, warm.report);
        // Both runs wrote (or rewrote) the report artifacts.
        assert_eq!(warm.artifacts.len(), 3);
        assert!(warm.artifacts.iter().all(|p| p.exists()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
