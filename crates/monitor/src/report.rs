//! The end-of-run monitor report: every streaming estimate plus the alert
//! log, in one comparable, exportable value.
//!
//! [`MonitorReport`] derives `PartialEq` so the agreement harness can
//! assert that a live run and a replayed cached run produce *identical*
//! reports. JSON export is hand-rolled (the workspace carries no JSON
//! dependency); non-finite floats serialize as `null`.

use serde::{Deserialize, Serialize};

use rsc_core::mttf::MttfPoint;

use crate::alerts::Alert;
use crate::estimators::{AvailabilitySnapshot, Counters, LogHistogram, RollingMttfEstimate};
use crate::monitor::ReliabilityMonitor;

/// Five-number summary of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact mean (kept outside the buckets).
    pub mean: f64,
    /// Approximate median (log-bucket midpoint, ~4.4% resolution).
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Exact maximum.
    pub max: f64,
}

impl HistogramSummary {
    /// Summarizes a histogram; zero-valued when empty.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.5).unwrap_or(0.0),
            p90: h.quantile(0.9).unwrap_or(0.0),
            max: h.max(),
        }
    }
}

/// A node whose windowed lemon score is non-zero at report time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LemonSuspect {
    /// Node index.
    pub node: u32,
    /// Criteria met over the trailing lemon window.
    pub score: u32,
    /// Whether the score reaches the detector's flag threshold.
    pub flagged: bool,
}

/// Everything the monitor knows at one instant, typically end of run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Cluster name.
    pub cluster: String,
    /// Fleet size.
    pub num_nodes: u32,
    /// Report time (the horizon, after `Finish`), days.
    pub at_days: f64,
    /// Cumulative GPU swaps.
    pub gpu_swaps: u64,
    /// Exact event counters.
    pub counters: Counters,
    /// Cumulative per-job-size MTTF (exact twin of the batch analysis).
    pub mttf_points: Vec<MttfPoint>,
    /// Cumulative all-sizes MTTF, hours (infinite when no failures).
    pub overall_mttf_hours: f64,
    /// Rolling-window MTTF estimate, if the window holds any exposure.
    pub rolling_mttf: Option<RollingMttfEstimate>,
    /// Streaming status-only failure rate, failures per node-day.
    pub failure_rate_per_node_day: f64,
    /// Expected ETTR of the configured reference job at the streaming
    /// failure rate (paper Eq. 1), once exposure exists.
    pub expected_ettr: Option<f64>,
    /// Fleet availability and repair-time estimates.
    pub availability: AvailabilitySnapshot,
    /// Ground-truth failures injected (validation-side signal).
    pub failures_injected: u64,
    /// Injected failures matched to a detection.
    pub failures_detected: u64,
    /// Time-to-detect distribution, hours.
    pub time_to_detect_hours: HistogramSummary,
    /// Time-to-repair distribution, hours.
    pub time_to_repair_hours: HistogramSummary,
    /// Nodes with a non-zero windowed lemon score, highest first.
    pub lemon_suspects: Vec<LemonSuspect>,
    /// The full alert log, in raise order.
    pub alerts: Vec<Alert>,
}

impl MonitorReport {
    /// Snapshots `monitor` into a report.
    pub fn build(monitor: &ReliabilityMonitor) -> Self {
        let now = monitor.now();
        let detector = monitor.config().detector;
        let mut lemon_suspects: Vec<LemonSuspect> = monitor
            .lemon_features()
            .iter()
            .map(|f| {
                let score = detector.score(f);
                LemonSuspect {
                    node: f.node.index(),
                    score,
                    flagged: score >= detector.min_criteria,
                }
            })
            .filter(|s| s.score > 0)
            .collect();
        lemon_suspects.sort_by(|a, b| b.score.cmp(&a.score).then(a.node.cmp(&b.node)));

        MonitorReport {
            cluster: monitor.cluster().to_string(),
            num_nodes: monitor.num_nodes(),
            at_days: now.as_days(),
            gpu_swaps: monitor.gpu_swaps(),
            counters: *monitor.counters(),
            mttf_points: monitor.mttf().points(),
            overall_mttf_hours: monitor.mttf().overall_mttf_hours(),
            rolling_mttf: monitor.rolling_mttf().estimate(),
            failure_rate_per_node_day: monitor.failure_rate().rate(),
            expected_ettr: monitor.expected_ettr(),
            availability: monitor.availability().snapshot(now),
            failures_injected: monitor.detection().injected(),
            failures_detected: monitor.detection().matched(),
            time_to_detect_hours: HistogramSummary::from_histogram(monitor.detection().histogram()),
            time_to_repair_hours: HistogramSummary::from_histogram(
                monitor.availability().ttr_histogram(),
            ),
            lemon_suspects,
            alerts: monitor.alerts().to_vec(),
        }
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push('{');
        push_field(&mut out, "cluster", &json_string(&self.cluster));
        push_field(&mut out, "num_nodes", &self.num_nodes.to_string());
        push_field(&mut out, "at_days", &json_f64(self.at_days));
        push_field(&mut out, "gpu_swaps", &self.gpu_swaps.to_string());
        push_field(&mut out, "counters", &counters_json(&self.counters));
        let points: Vec<String> = self.mttf_points.iter().map(mttf_point_json).collect();
        push_field(&mut out, "mttf_points", &format!("[{}]", points.join(",")));
        push_field(
            &mut out,
            "overall_mttf_hours",
            &json_f64(self.overall_mttf_hours),
        );
        let rolling = match &self.rolling_mttf {
            Some(r) => format!(
                "{{\"failures\":{},\"exposure_hours\":{},\"mttf_hours\":{},\"ci90\":{}}}",
                r.failures,
                json_f64(r.exposure_hours),
                json_f64(r.mttf_hours),
                match r.ci90 {
                    Some((lo, hi)) => format!("[{},{}]", json_f64(lo), json_f64(hi)),
                    None => "null".to_string(),
                }
            ),
            None => "null".to_string(),
        };
        push_field(&mut out, "rolling_mttf", &rolling);
        push_field(
            &mut out,
            "failure_rate_per_node_day",
            &json_f64(self.failure_rate_per_node_day),
        );
        push_field(
            &mut out,
            "expected_ettr",
            &self
                .expected_ettr
                .map(json_f64)
                .unwrap_or_else(|| "null".to_string()),
        );
        let a = &self.availability;
        push_field(
            &mut out,
            "availability",
            &format!(
                "{{\"fleet_availability\":{},\"mttr_hours\":{},\"mttr_p90_hours\":{},\"lost_node_days\":{},\"completed_repairs\":{},\"open_intervals\":{}}}",
                json_f64(a.fleet_availability),
                json_f64(a.mttr_hours),
                json_f64(a.mttr_p90_hours),
                json_f64(a.lost_node_days),
                a.completed_repairs,
                a.open_intervals
            ),
        );
        push_field(
            &mut out,
            "failures_injected",
            &self.failures_injected.to_string(),
        );
        push_field(
            &mut out,
            "failures_detected",
            &self.failures_detected.to_string(),
        );
        push_field(
            &mut out,
            "time_to_detect_hours",
            &histogram_json(&self.time_to_detect_hours),
        );
        push_field(
            &mut out,
            "time_to_repair_hours",
            &histogram_json(&self.time_to_repair_hours),
        );
        let suspects: Vec<String> = self
            .lemon_suspects
            .iter()
            .map(|s| {
                format!(
                    "{{\"node\":{},\"score\":{},\"flagged\":{}}}",
                    s.node, s.score, s.flagged
                )
            })
            .collect();
        push_field(
            &mut out,
            "lemon_suspects",
            &format!("[{}]", suspects.join(",")),
        );
        let alerts: Vec<String> = self.alerts.iter().map(alert_json).collect();
        push_field(&mut out, "alerts", &format!("[{}]", alerts.join(",")));
        // Drop the trailing comma push_field left behind.
        out.pop();
        out.push('}');
        out
    }

    /// Compact human-readable lines, for terminal quickstarts.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!(
                "{}: {} nodes, {:.0} days, {} jobs ({} node-fail)",
                self.cluster,
                self.num_nodes,
                self.at_days,
                self.counters.jobs,
                self.counters.node_fail
            ),
            format!(
                "cumulative MTTF {:.1} h over {} failures; r_f {:.2e} /node-day",
                self.overall_mttf_hours,
                self.mttf_points.iter().map(|p| p.failures).sum::<u64>(),
                self.failure_rate_per_node_day
            ),
            format!(
                "fleet availability {:.4}; MTTR {:.1} h (p90 {:.1} h); {} repairs, {} GPU swaps",
                self.availability.fleet_availability,
                self.availability.mttr_hours,
                self.availability.mttr_p90_hours,
                self.availability.completed_repairs,
                self.gpu_swaps
            ),
            format!(
                "detection {}/{} matched; TTD mean {:.2} h p90 {:.2} h",
                self.failures_detected,
                self.failures_injected,
                self.time_to_detect_hours.mean,
                self.time_to_detect_hours.p90
            ),
        ];
        if let Some(ettr) = self.expected_ettr {
            lines.push(format!("expected ETTR of reference job: {ettr:.4}"));
        }
        lines.push(format!(
            "{} lemon suspects ({} flagged); {} alerts raised ({} active)",
            self.lemon_suspects.len(),
            self.lemon_suspects.iter().filter(|s| s.flagged).count(),
            self.alerts.len(),
            self.alerts.iter().filter(|a| a.is_active()).count()
        ));
        lines
    }
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
    out.push(',');
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `format!` prints f64 with enough digits to round-trip.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn counters_json(c: &Counters) -> String {
    format!(
        "{{\"jobs\":{},\"jobs_started\":{},\"completed\":{},\"failed\":{},\"node_fail\":{},\"requeued\":{},\"preempted\":{},\"other\":{},\"gpu_hours\":{},\"health_events\":{},\"false_positives\":{},\"node_events\":{},\"quarantined\":{},\"exclusions\":{},\"ground_truth\":{},\"ckpt_fallbacks\":{},\"fallback_lost_gpu_hours\":{},\"control_actions\":{},\"ticks\":{}}}",
        c.jobs,
        c.jobs_started,
        c.completed,
        c.failed,
        c.node_fail,
        c.requeued,
        c.preempted,
        c.other,
        json_f64(c.gpu_hours),
        c.health_events,
        c.false_positives,
        c.node_events,
        c.quarantined,
        c.exclusions,
        c.ground_truth,
        c.ckpt_fallbacks,
        json_f64(c.fallback_lost_gpu_hours),
        c.control_actions,
        c.ticks
    )
}

fn mttf_point_json(p: &MttfPoint) -> String {
    format!(
        "{{\"gpus\":{},\"failures\":{},\"exposure_hours\":{},\"mttf_hours\":{},\"ci90\":{}}}",
        p.gpus,
        p.failures,
        json_f64(p.exposure_hours),
        json_f64(p.mttf_hours),
        match p.ci90 {
            Some((lo, hi)) => format!("[{},{}]", json_f64(lo), json_f64(hi)),
            None => "null".to_string(),
        }
    )
}

fn alert_json(a: &Alert) -> String {
    format!(
        "{{\"kind\":{},\"node\":{},\"raised_at_days\":{},\"cleared_at_days\":{},\"value\":{},\"threshold\":{},\"message\":{}}}",
        json_string(a.key.label()),
        a.key
            .node()
            .map(|n| n.index().to_string())
            .unwrap_or_else(|| "null".to_string()),
        json_f64(a.raised_at.as_days()),
        a.cleared_at
            .map(|t| json_f64(t.as_days()))
            .unwrap_or_else(|| "null".to_string()),
        json_f64(a.value),
        json_f64(a.threshold),
        json_string(&a.message)
    )
}

fn histogram_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"max\":{}}}",
        h.count,
        json_f64(h.mean),
        json_f64(h.p50),
        json_f64(h.p90),
        json_f64(h.max)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nulls() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn histogram_summary_of_empty_is_zero() {
        let h = LogHistogram::new();
        let s = HistogramSummary::from_histogram(&h);
        assert_eq!(s.count, 0);
        assert_eq!(s.p90, 0.0);
    }

    #[test]
    fn report_json_is_balanced() {
        let monitor = ReliabilityMonitor::new(crate::config::MonitorConfig::rsc_default());
        let json = monitor.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"cluster\":\"\""));
        assert!(json.contains("\"overall_mttf_hours\":null"));
    }
}
