//! Replaying a sealed [`TelemetryView`] through a [`SimObserver`].
//!
//! Cached scenario runs skip the simulation entirely and hand back a
//! sealed view; replay reconstructs the event sequence the live bus would
//! have produced so streaming consumers reach the same end state either
//! way:
//!
//! - point events (health, node, exclusion, ground truth, checkpoint
//!   fallback) are merged by timestamp, ties broken by the driver's causal
//!   order at one instant (injection → detection → node transition →
//!   exclusion → fallback);
//! - job records are delivered at the first daily sweep at or after their
//!   `ended_at`, exactly as scheduler accounting flushes them live;
//! - a [`SimEvent::Tick`] fires at each whole day strictly inside the
//!   horizon (the live driver's loop exits before a sweep scheduled at the
//!   horizon itself runs);
//! - the tail (events after the last sweep) flushes before the single
//!   [`SimEvent::Finish`].

use rsc_sim::bus::{SimEvent, SimObserver};
use rsc_sim_core::time::SimTime;
use rsc_telemetry::view::TelemetryView;

/// Streams `view` into `observer` as the equivalent live event sequence.
///
/// End-of-run observer state matches a live run that produced the same
/// telemetry; `rsc-monitor`'s agreement tests assert the two reports are
/// equal.
pub fn replay_view(view: &TelemetryView, observer: &mut dyn SimObserver) {
    observer.on_event(&SimEvent::Start {
        cluster: view.cluster_name(),
        num_nodes: view.num_nodes(),
    });

    // Merge the point-event streams. Each source slice is chronological;
    // the stable sort keys on (time, causal priority) and preserves
    // within-stream order for exact ties.
    let mut points: Vec<(SimTime, u8, SimEvent<'_>)> = Vec::with_capacity(
        view.ground_truth_failures().len()
            + view.health_events().len()
            + view.node_events().len()
            + view.exclusions().len()
            + view.ckpt_fallbacks().len()
            + view.control_actions().len(),
    );
    for e in view.ground_truth_failures() {
        points.push((e.at, 0, SimEvent::GroundTruth(e)));
    }
    for e in view.health_events() {
        points.push((e.at, 1, SimEvent::Health(e)));
    }
    for e in view.node_events() {
        points.push((e.at, 2, SimEvent::Node(e)));
    }
    for e in view.exclusions() {
        points.push((e.at, 3, SimEvent::Exclusion(e)));
    }
    for e in view.ckpt_fallbacks() {
        points.push((e.at, 4, SimEvent::CkptFallback(e)));
    }
    for e in view.control_actions() {
        points.push((e.at, 5, SimEvent::ControlAction(e)));
    }
    points.sort_by_key(|&(at, priority, _)| (at, priority));

    let jobs = view.jobs();
    let horizon = view.horizon();
    let mut next_point = 0;
    let mut next_job = 0;

    let mut day = 1u64;
    loop {
        let t = SimTime::from_days(day);
        if t >= horizon {
            break;
        }
        while next_point < points.len() && points[next_point].0 <= t {
            observer.on_event(&points[next_point].2);
            next_point += 1;
        }
        // Job records are grouped in the view by the sweep that flushed
        // them, so a single cursor suffices.
        while next_job < jobs.len() && jobs[next_job].ended_at <= t {
            observer.on_event(&SimEvent::Job(&jobs[next_job]));
            next_job += 1;
        }
        observer.on_event(&SimEvent::Tick { now: t });
        day += 1;
    }

    // Tail: everything after the last sweep, then final accounting.
    while next_point < points.len() {
        observer.on_event(&points[next_point].2);
        next_point += 1;
    }
    while next_job < jobs.len() {
        observer.on_event(&SimEvent::Job(&jobs[next_job]));
        next_job += 1;
    }

    observer.on_event(&SimEvent::Finish {
        horizon,
        gpu_swaps: view.gpu_swaps(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_sim::bus::CountingObserver;
    use rsc_sim::config::SimConfig;
    use rsc_sim::driver::ClusterSim;
    use rsc_sim_core::time::SimDuration;

    #[test]
    fn replay_delivers_every_record_and_daily_ticks() {
        let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 5);
        sim.run(SimDuration::from_days(4));
        let view = sim.into_telemetry().seal();

        let mut counter = CountingObserver::default();
        replay_view(&view, &mut counter);

        assert_eq!(counter.jobs as usize, view.jobs().len());
        assert_eq!(counter.health as usize, view.health_events().len());
        assert_eq!(counter.node as usize, view.node_events().len());
        assert_eq!(counter.exclusions as usize, view.exclusions().len());
        assert_eq!(
            counter.ground_truth as usize,
            view.ground_truth_failures().len()
        );
        assert_eq!(counter.ckpt_fallbacks as usize, view.ckpt_fallbacks().len());
        // A 4-day run sweeps at days 1..=3; the sweep scheduled at the
        // horizon never fires.
        assert_eq!(counter.ticks, 3);
    }

    #[test]
    fn replay_matches_live_counts() {
        let handle = rsc_sim::bus::SharedObserver::new(CountingObserver::default());
        let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 6);
        sim.attach_observer(Box::new(handle.clone()));
        sim.run(SimDuration::from_days(3));
        let view = sim.into_telemetry().seal();
        let live = handle.with(|c| *c);

        let mut replayed = CountingObserver::default();
        replay_view(&view, &mut replayed);

        assert_eq!(live.jobs, replayed.jobs);
        assert_eq!(live.health, replayed.health);
        assert_eq!(live.node, replayed.node);
        assert_eq!(live.exclusions, replayed.exclusions);
        assert_eq!(live.ground_truth, replayed.ground_truth);
        assert_eq!(live.ckpt_fallbacks, replayed.ckpt_fallbacks);
        assert_eq!(live.ticks, replayed.ticks);
    }
}
