//! Windowed lemon-node signals: a streaming, bounded-memory twin of
//! [`rsc_core::lemon::compute_features`].
//!
//! Ring buffers hold only the trailing `window` of each input stream, so
//! memory is bounded by window content, not run length. Multi-node blame
//! needs events up to five minutes *after* a job ends (the paper's
//! attribution window), so infra-failed multi-node jobs park in a pending
//! queue until their blame window closes — blame is then frozen exactly as
//! the batch pass would compute it, because every event in
//! `[end − 10 min, end + 5 min]` has been delivered by that point.
//!
//! With a window at least as long as the run, the features at the horizon
//! equal the batch computation over `[0, horizon]` bit-for-bit; shorter
//! windows are the deliberate "trailing 28 days" operational view.

use std::collections::{HashSet, VecDeque};

use rsc_cluster::ids::NodeId;
use rsc_core::lemon::LemonFeatures;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::JobStatus;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{ExclusionEvent, NodeEvent, NodeEventKind};

/// How far before a job's end an implicating event may lie (paper §III).
const BLAME_BEFORE: SimDuration = SimDuration::from_mins(10);
/// How far after a job's end an implicating event may lie.
const BLAME_AFTER: SimDuration = SimDuration::from_mins(5);

/// Streaming windowed lemon-feature estimator.
#[derive(Debug, Clone)]
pub struct WindowedLemon {
    window: SimDuration,
    num_nodes: usize,
    /// `(at, node, job id)` for user exclusions.
    exclusions: VecDeque<(SimTime, u32, u64)>,
    /// `(at, node, xid code)` for XID-bearing health events.
    xids: VecDeque<(SimTime, u32, u16)>,
    /// `(at, node, kind)` for ticket/out-count lifecycle transitions.
    lifecycle: VecDeque<(SimTime, u32, NodeEventKind)>,
    /// Per-node implication times: every health event plus
    /// `EnterRemediation`/`Drain`, time-ordered, kept only as long as a
    /// pending job could still need them.
    implication: Vec<VecDeque<SimTime>>,
    /// `(ended_at, node, infra_failed)` for started single-node jobs.
    singles: VecDeque<(SimTime, u32, bool)>,
    /// `(ended_at, blamed nodes)` for resolved multi-node infra failures.
    multis: VecDeque<(SimTime, Vec<u32>)>,
    /// Multi-node infra failures awaiting blame-window close.
    pending: VecDeque<(SimTime, Vec<u32>)>,
}

impl WindowedLemon {
    /// An empty estimator over `num_nodes` with the given trailing window.
    pub fn new(num_nodes: u32, window: SimDuration) -> Self {
        WindowedLemon {
            window,
            num_nodes: num_nodes as usize,
            exclusions: VecDeque::new(),
            xids: VecDeque::new(),
            lifecycle: VecDeque::new(),
            implication: vec![VecDeque::new(); num_nodes as usize],
            singles: VecDeque::new(),
            multis: VecDeque::new(),
            pending: VecDeque::new(),
        }
    }

    /// Folds one terminal job record in.
    pub fn observe_job(&mut self, r: &JobRecord) {
        if r.started_at.is_none() {
            return;
        }
        let infra = matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued);
        if r.nodes.len() == 1 {
            self.singles
                .push_back((r.ended_at, r.nodes[0].index(), infra));
        } else if infra {
            self.pending
                .push_back((r.ended_at, r.nodes.iter().map(|n| n.index()).collect()));
        }
    }

    /// Folds one health event in (false positives included — the batch
    /// pass treats them as implication evidence too).
    pub fn observe_health(&mut self, e: &HealthEvent) {
        if let Some(rsc_failure::signals::SignalKind::Xid(x)) = e.signal {
            self.xids.push_back((e.at, e.node.index(), x.code()));
        }
        if let Some(times) = self.implication.get_mut(e.node.as_usize()) {
            times.push_back(e.at);
        }
    }

    /// Folds one node lifecycle event in.
    pub fn observe_node_event(&mut self, e: &NodeEvent) {
        match e.kind {
            NodeEventKind::EnterRemediation
            | NodeEventKind::Drain
            | NodeEventKind::RepairAttemptFailed
            | NodeEventKind::ProbationFailed
            | NodeEventKind::Quarantined => {
                self.lifecycle.push_back((e.at, e.node.index(), e.kind));
            }
            _ => {}
        }
        if matches!(
            e.kind,
            NodeEventKind::EnterRemediation | NodeEventKind::Drain
        ) {
            if let Some(times) = self.implication.get_mut(e.node.as_usize()) {
                times.push_back(e.at);
            }
        }
    }

    /// Folds one user exclusion in.
    pub fn observe_exclusion(&mut self, e: &ExclusionEvent) {
        self.exclusions
            .push_back((e.at, e.node.index(), e.job.raw()));
    }

    /// Resolves pending multi-node blames whose window has closed
    /// (strictly — ties wait for the next tick), or everything at
    /// end-of-run when `finished` is set.
    pub fn resolve(&mut self, now: SimTime, finished: bool) {
        while let Some((ended_at, _)) = self.pending.front() {
            if !finished && now.saturating_since(*ended_at) <= BLAME_AFTER {
                break;
            }
            let (ended_at, nodes) = self.pending.pop_front().expect("front exists");
            let blamed: Vec<u32> = nodes
                .iter()
                .copied()
                .filter(|&n| self.implicated(n, ended_at))
                .collect();
            // A NODE_FAIL hang with no implicating events blames the whole
            // allocation, exactly as the batch pass falls back.
            let blamed = if blamed.is_empty() { nodes } else { blamed };
            self.multis.push_back((ended_at, blamed));
        }
    }

    fn implicated(&self, node: u32, end: SimTime) -> bool {
        let Some(times) = self.implication.get(node as usize) else {
            return false;
        };
        times.iter().any(|&t| {
            t.saturating_since(end) <= BLAME_AFTER && end.saturating_since(t) <= BLAME_BEFORE
        })
    }

    /// Evicts ring entries that have aged out of the window behind `now`.
    /// Implication times are kept on their own shorter horizon (one tick
    /// interval plus the blame lookback).
    pub fn evict(&mut self, now: SimTime) {
        let w = self.window;
        Self::evict_ring(&mut self.exclusions, now, w, |e| e.0);
        Self::evict_ring(&mut self.xids, now, w, |e| e.0);
        Self::evict_ring(&mut self.lifecycle, now, w, |e| e.0);
        Self::evict_ring(&mut self.singles, now, w, |e| e.0);
        Self::evict_ring(&mut self.multis, now, w, |e| e.0);
        let blame_keep = SimDuration::from_days(2);
        for times in &mut self.implication {
            while let Some(&t) = times.front() {
                if now.saturating_since(t) <= blame_keep {
                    break;
                }
                times.pop_front();
            }
        }
    }

    fn evict_ring<T>(
        ring: &mut VecDeque<T>,
        now: SimTime,
        window: SimDuration,
        at: impl Fn(&T) -> SimTime,
    ) {
        while let Some(front) = ring.front() {
            if now.saturating_since(at(front)) <= window {
                break;
            }
            ring.pop_front();
        }
    }

    /// Computes the seven Table-II features over the trailing window ending
    /// at `now`, mirroring the batch pass over `[now − window, now]`.
    pub fn features(&self, now: SimTime) -> Vec<LemonFeatures> {
        let in_window = |at: SimTime| at <= now && now.saturating_since(at) <= self.window;
        let n = self.num_nodes;
        let mut features: Vec<LemonFeatures> = (0..n)
            .map(|i| LemonFeatures::new(NodeId::new(i as u32)))
            .collect();

        let mut excluders: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        for &(at, node, job) in &self.exclusions {
            if in_window(at) {
                excluders[node as usize].insert(job);
            }
        }
        for (i, set) in excluders.iter().enumerate() {
            features[i].excl_jobid_count = set.len() as u32;
        }

        let mut xid_sets: Vec<HashSet<u16>> = vec![HashSet::new(); n];
        for &(at, node, code) in &self.xids {
            if in_window(at) {
                xid_sets[node as usize].insert(code);
            }
        }
        for (i, set) in xid_sets.iter().enumerate() {
            features[i].xid_cnt = set.len() as u32;
        }

        for &(at, node, kind) in &self.lifecycle {
            if !in_window(at) {
                continue;
            }
            let f = &mut features[node as usize];
            match kind {
                NodeEventKind::EnterRemediation => {
                    f.tickets += 1;
                    f.out_count += 1;
                }
                NodeEventKind::Drain => f.out_count += 1,
                NodeEventKind::RepairAttemptFailed | NodeEventKind::ProbationFailed => {
                    f.tickets += 1;
                }
                NodeEventKind::Quarantined => {
                    f.tickets += 1;
                    f.out_count += 1;
                }
                _ => {}
            }
        }

        let mut single_totals: Vec<u32> = vec![0; n];
        for &(ended_at, node, infra) in &self.singles {
            if !in_window(ended_at) {
                continue;
            }
            single_totals[node as usize] += 1;
            if infra {
                features[node as usize].single_node_node_fails += 1;
            }
        }
        for (ended_at, blamed) in &self.multis {
            if !in_window(*ended_at) {
                continue;
            }
            for &node in blamed {
                features[node as usize].multi_node_node_fails += 1;
            }
        }
        for (i, &total) in single_totals.iter().enumerate() {
            if total > 0 {
                features[i].single_node_node_failure_rate =
                    features[i].single_node_node_fails as f64 / total as f64;
            }
        }
        features
    }

    /// Multi-node infra failures still awaiting blame-window close.
    pub fn pending_blames(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_failure::modes::Severity;
    use rsc_health::check::CheckKind;
    use rsc_sched::job::QosClass;

    fn multi_fail(nodes: &[u32], ended_h: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(9),
            attempt: 0,
            run: None,
            gpus: 8 * nodes.len() as u32,
            qos: QosClass::Normal,
            nodes: nodes.iter().map(|&n| NodeId::new(n)).collect(),
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(ended_h),
            status: JobStatus::NodeFail,
            preempted_by: None,
            instigator: None,
        }
    }

    fn health(node: u32, at: SimTime) -> HealthEvent {
        HealthEvent {
            at,
            node: NodeId::new(node),
            check: CheckKind::IbLink,
            severity: Severity::High,
            signal: None,
            false_positive: false,
        }
    }

    #[test]
    fn blame_narrows_to_implicated_node() {
        let mut w = WindowedLemon::new(4, SimDuration::from_days(60));
        let end = SimTime::from_hours(10);
        w.observe_health(&health(2, end));
        w.observe_job(&multi_fail(&[1, 2, 3], 10));
        w.resolve(SimTime::from_days(1), false);
        let f = w.features(SimTime::from_days(1));
        assert_eq!(f[2].multi_node_node_fails, 1);
        assert_eq!(f[1].multi_node_node_fails, 0);
        assert_eq!(f[3].multi_node_node_fails, 0);
    }

    #[test]
    fn unimplicated_failure_blames_all() {
        let mut w = WindowedLemon::new(4, SimDuration::from_days(60));
        w.observe_job(&multi_fail(&[0, 1], 10));
        w.resolve(SimTime::from_days(1), false);
        let f = w.features(SimTime::from_days(1));
        assert_eq!(f[0].multi_node_node_fails, 1);
        assert_eq!(f[1].multi_node_node_fails, 1);
    }

    #[test]
    fn blame_waits_for_window_close() {
        let mut w = WindowedLemon::new(2, SimDuration::from_days(60));
        w.observe_job(&multi_fail(&[0, 1], 10));
        // 3 minutes after the end: the +5 min window is still open.
        w.resolve(SimTime::from_hours(10) + SimDuration::from_mins(3), false);
        assert_eq!(w.pending_blames(), 1);
        w.resolve(SimTime::from_hours(11), false);
        assert_eq!(w.pending_blames(), 0);
    }

    #[test]
    fn eviction_drops_old_signals() {
        let mut w = WindowedLemon::new(2, SimDuration::from_days(7));
        w.observe_exclusion(&ExclusionEvent {
            node: NodeId::new(1),
            job: JobId::new(5),
            at: SimTime::from_days(1),
        });
        assert_eq!(w.features(SimTime::from_days(2))[1].excl_jobid_count, 1);
        w.evict(SimTime::from_days(20));
        assert_eq!(w.features(SimTime::from_days(20))[1].excl_jobid_count, 0);
    }
}
