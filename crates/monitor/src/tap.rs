//! A fan-out tap over the [`ReliabilityMonitor`]: turns the monitor's
//! internal state transitions into an ordered stream of typed
//! [`MonitorEvent`]s for external subscribers (dashboards, the
//! `rsc-serve` SSE endpoint, log shippers).
//!
//! The tap wraps a monitor, forwards every [`SimEvent`] to it, and after
//! each delivery emits whatever *changed*: newly raised alerts (in log
//! order — the same order `alerts.csv` rows are written), alert clears,
//! control actions, a compact estimator heartbeat per daily tick, and a
//! final `Finished` marker. Because alert state only transitions inside
//! the monitor's tick evaluation, the emitted sequence is a pure function
//! of the event stream — live attachment and
//! [`replay_view`](crate::replay::replay_view) over the cached artifact
//! produce the identical `MonitorEvent` sequence, which is what lets a
//! server stream cache hits and live runs through one code path.

use rsc_sim::bus::{SimEvent, SimObserver};
use rsc_telemetry::store::ControlActionEvent;

use crate::alerts::Alert;
use crate::monitor::ReliabilityMonitor;

/// A compact per-tick estimator readout, cheap enough to stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateTick {
    /// Simulated time of the tick, days.
    pub at_days: f64,
    /// Cumulative all-sizes MTTF, hours (infinite when no failures).
    pub overall_mttf_hours: f64,
    /// Streaming status-only failure rate, failures per node-day.
    pub failure_rate_per_node_day: f64,
    /// Expected ETTR of the reference job, once exposure exists.
    pub expected_ettr: Option<f64>,
    /// Fleet availability up to this instant.
    pub fleet_availability: f64,
    /// Alerts currently active.
    pub active_alerts: usize,
}

/// One item of the tap's output stream.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// An alert entered the log. `seq` is its index in the monitor's
    /// alert log, so the raise stream enumerates `alerts.csv` rows in
    /// order.
    AlertRaised {
        /// Index in the alert log.
        seq: usize,
        /// The alert as raised (`cleared_at` still `None`).
        alert: Alert,
    },
    /// A previously raised alert cleared.
    AlertCleared {
        /// Index in the alert log of the cleared alert.
        seq: usize,
        /// The alert with `cleared_at` now set.
        alert: Alert,
    },
    /// The control plane actuated (or budget-rejected) a mitigation.
    Action(ControlActionEvent),
    /// Daily estimator heartbeat.
    Estimate(EstimateTick),
    /// The run finished; no further events will follow.
    Finished {
        /// The measurement horizon, days.
        at_days: f64,
    },
}

impl MonitorEvent {
    /// Short machine-readable label, used as the SSE `event:` name.
    pub fn label(&self) -> &'static str {
        match self {
            MonitorEvent::AlertRaised { .. } => "alert",
            MonitorEvent::AlertCleared { .. } => "alert_clear",
            MonitorEvent::Action(_) => "action",
            MonitorEvent::Estimate(_) => "estimate",
            MonitorEvent::Finished { .. } => "finished",
        }
    }
}

/// The sink side of a tap: called synchronously, in order, once per
/// emitted event.
pub type MonitorSink = Box<dyn FnMut(&MonitorEvent) + Send>;

/// A [`SimObserver`] that owns a [`ReliabilityMonitor`] and streams its
/// state transitions into a [`MonitorSink`].
pub struct MonitorTap {
    monitor: ReliabilityMonitor,
    sink: MonitorSink,
    /// Alerts already announced as raised (= prefix length of the log).
    raised_seen: usize,
    /// Mirror of which announced alerts were already announced as cleared.
    cleared_seen: Vec<bool>,
    /// Whether `Finished` was already emitted. The live driver delivers
    /// `Finish` once per `run()` segment *and* once more when telemetry is
    /// taken; the monitor absorbs the repeat, and so must the tap.
    finished: bool,
}

impl std::fmt::Debug for MonitorTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorTap")
            .field("monitor", &self.monitor)
            .field("raised_seen", &self.raised_seen)
            .finish_non_exhaustive()
    }
}

impl MonitorTap {
    /// Wraps `monitor`, streaming transitions into `sink`.
    pub fn new(monitor: ReliabilityMonitor, sink: MonitorSink) -> Self {
        MonitorTap {
            monitor,
            sink,
            raised_seen: 0,
            cleared_seen: Vec::new(),
            finished: false,
        }
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &ReliabilityMonitor {
        &self.monitor
    }

    /// Announces alert transitions since the last flush: raises for new
    /// log entries (in log order), then clears for entries whose
    /// `cleared_at` appeared. Within one tick, raises precede clears —
    /// matching the order the engine itself applies transitions.
    fn flush_alert_transitions(&mut self) {
        let alerts = self.monitor.alerts();
        for (seq, alert) in alerts.iter().enumerate().skip(self.raised_seen) {
            (self.sink)(&MonitorEvent::AlertRaised {
                seq,
                alert: alert.clone(),
            });
        }
        self.raised_seen = alerts.len();
        self.cleared_seen.resize(alerts.len(), false);
        // Clears mutate earlier rows in place; scan the mirror for new
        // ones. Alert logs are small (tens of rows), so the per-tick scan
        // is negligible next to the estimator work.
        for (seq, alert) in alerts.iter().enumerate() {
            if !self.cleared_seen[seq] && !alert.is_active() {
                self.cleared_seen[seq] = true;
                (self.sink)(&MonitorEvent::AlertCleared {
                    seq,
                    alert: alert.clone(),
                });
            }
        }
    }

    fn emit_estimate(&mut self, at_days: f64) {
        let m = &self.monitor;
        let tick = EstimateTick {
            at_days,
            overall_mttf_hours: m.mttf().overall_mttf_hours(),
            failure_rate_per_node_day: m.failure_rate().rate(),
            expected_ettr: m.expected_ettr(),
            fleet_availability: m.availability().snapshot(m.now()).fleet_availability,
            active_alerts: m.alerts().iter().filter(|a| a.is_active()).count(),
        };
        (self.sink)(&MonitorEvent::Estimate(tick));
    }
}

impl SimObserver for MonitorTap {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self.monitor.on_event(event);
        match event {
            SimEvent::ControlAction(e) => (self.sink)(&MonitorEvent::Action(**e)),
            SimEvent::Tick { now } => {
                self.flush_alert_transitions();
                self.emit_estimate(now.as_days());
            }
            SimEvent::Finish { horizon, .. } if !self.finished => {
                self.finished = true;
                self.flush_alert_transitions();
                self.emit_estimate(horizon.as_days());
                (self.sink)(&MonitorEvent::Finished {
                    at_days: horizon.as_days(),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use crate::replay::replay_view;
    use rsc_sim::bus::SharedObserver;
    use rsc_sim::config::SimConfig;
    use rsc_sim::driver::ClusterSim;
    use rsc_sim_core::time::SimDuration;
    use std::sync::{Arc, Mutex};

    fn collecting_sink() -> (Arc<Mutex<Vec<MonitorEvent>>>, MonitorSink) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let handle = Arc::clone(&events);
        let sink: MonitorSink = Box::new(move |e: &MonitorEvent| {
            handle.lock().unwrap().push(e.clone());
        });
        (events, sink)
    }

    fn run_live(seed: u64, days: u64) -> (Vec<MonitorEvent>, rsc_telemetry::view::TelemetryView) {
        let (events, sink) = collecting_sink();
        let tap = MonitorTap::new(ReliabilityMonitor::new(MonitorConfig::rsc_default()), sink);
        let handle = SharedObserver::new(tap);
        let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), seed);
        sim.attach_observer(Box::new(handle.clone()));
        sim.run(SimDuration::from_days(days));
        let view = sim.into_telemetry().seal();
        let out = events.lock().unwrap().clone();
        (out, view)
    }

    #[test]
    fn tap_emits_daily_estimates_and_finished() {
        let (events, _) = run_live(11, 4);
        let estimates = events
            .iter()
            .filter(|e| matches!(e, MonitorEvent::Estimate(_)))
            .count();
        // Ticks at days 1..=3 plus the Finish heartbeat.
        assert_eq!(estimates, 4);
        assert!(matches!(
            events.last(),
            Some(MonitorEvent::Finished { at_days }) if *at_days == 4.0
        ));
    }

    #[test]
    fn raise_sequence_matches_alert_log_order(// The e2e serve test pins this against alerts.csv bytes.
    ) {
        let (events, view) = run_live(13, 6);
        let raised: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::AlertRaised { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(raised, (0..raised.len()).collect::<Vec<_>>());
        drop(view);
    }

    #[test]
    fn replayed_tap_emits_identical_sequence() {
        let (live, view) = run_live(17, 5);
        let (events, sink) = collecting_sink();
        let mut tap = MonitorTap::new(ReliabilityMonitor::new(MonitorConfig::rsc_default()), sink);
        replay_view(&view, &mut tap);
        let replayed = events.lock().unwrap().clone();
        assert_eq!(live, replayed);
    }
}
