//! CSV and JSON export of monitor output, built on
//! [`rsc_telemetry::csv`]'s RFC-4180 writers.

use std::io;
use std::path::Path;

use rsc_telemetry::csv::write_csv_file;
use rsc_telemetry::store::ControlActionEvent;

use crate::alerts::Alert;
use crate::report::MonitorReport;

/// Column header of the alert-stream CSV.
pub const ALERTS_CSV_HEADER: [&str; 7] = [
    "kind",
    "node",
    "raised_at_days",
    "cleared_at_days",
    "value",
    "threshold",
    "message",
];

/// Renders the alert log as CSV rows matching [`ALERTS_CSV_HEADER`].
/// Still-active alerts leave `cleared_at_days` empty.
pub fn alerts_rows(alerts: &[Alert]) -> Vec<Vec<String>> {
    alerts
        .iter()
        .map(|a| {
            vec![
                a.key.label().to_string(),
                a.key
                    .node()
                    .map(|n| n.index().to_string())
                    .unwrap_or_default(),
                format!("{:.6}", a.raised_at.as_days()),
                a.cleared_at
                    .map(|t| format!("{:.6}", t.as_days()))
                    .unwrap_or_default(),
                format!("{}", a.value),
                format!("{}", a.threshold),
                a.message.clone(),
            ]
        })
        .collect()
}

/// Writes the alert log to a CSV file, creating parent directories.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_alerts_csv<P: AsRef<Path>>(path: P, alerts: &[Alert]) -> io::Result<()> {
    write_csv_file(path, &ALERTS_CSV_HEADER, alerts_rows(alerts))
}

/// Column header of the combined multi-scenario alert rollup CSV: the
/// per-scenario [`ALERTS_CSV_HEADER`] columns behind a scenario
/// fingerprint column.
pub const ALERTS_ROLLUP_CSV_HEADER: [&str; 8] = [
    "scenario",
    "kind",
    "node",
    "raised_at_days",
    "cleared_at_days",
    "value",
    "threshold",
    "message",
];

/// Writes one combined alert CSV covering a batch of scenarios, each
/// entry a `(scenario label, alert log)` pair. Rows keep entry order,
/// then alert order, so identical batches write identical bytes.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_alerts_rollup_csv<P: AsRef<Path>>(
    path: P,
    entries: &[(String, &[Alert])],
) -> io::Result<()> {
    let rows: Vec<Vec<String>> = entries
        .iter()
        .flat_map(|(label, alerts)| {
            alerts_rows(alerts).into_iter().map(move |mut row| {
                row.insert(0, label.clone());
                row
            })
        })
        .collect();
    write_csv_file(path, &ALERTS_ROLLUP_CSV_HEADER, rows)
}

/// Column header of the control-action-stream CSV.
pub const ACTIONS_CSV_HEADER: [&str; 7] = [
    "kind", "trigger", "at_days", "node", "job", "accepted", "value",
];

/// Renders a control-action log as CSV rows matching
/// [`ACTIONS_CSV_HEADER`]. Fleet-wide actions leave `node` empty;
/// actions without a job target leave `job` empty.
pub fn actions_rows(actions: &[ControlActionEvent]) -> Vec<Vec<String>> {
    actions
        .iter()
        .map(|a| {
            vec![
                a.kind.label().to_string(),
                a.trigger.label().to_string(),
                format!("{:.6}", a.at.as_days()),
                a.node.map(|n| n.index().to_string()).unwrap_or_default(),
                a.job.map(|j| j.raw().to_string()).unwrap_or_default(),
                if a.accepted { "1" } else { "0" }.to_string(),
                a.value.to_string(),
            ]
        })
        .collect()
}

/// Writes a control-action log to a CSV file, creating parent
/// directories.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_actions_csv<P: AsRef<Path>>(
    path: P,
    actions: &[ControlActionEvent],
) -> io::Result<()> {
    write_csv_file(path, &ACTIONS_CSV_HEADER, actions_rows(actions))
}

/// Column header of the combined multi-scenario control-action rollup
/// CSV: the per-scenario [`ACTIONS_CSV_HEADER`] columns behind a
/// scenario fingerprint column.
pub const ACTIONS_ROLLUP_CSV_HEADER: [&str; 8] = [
    "scenario", "kind", "trigger", "at_days", "node", "job", "accepted", "value",
];

/// Writes one combined control-action CSV covering a batch of scenarios,
/// each entry a `(scenario label, action log)` pair. Rows keep entry
/// order, then action order, so identical batches write identical bytes.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_actions_rollup_csv<P: AsRef<Path>>(
    path: P,
    entries: &[(String, &[ControlActionEvent])],
) -> io::Result<()> {
    let rows: Vec<Vec<String>> = entries
        .iter()
        .flat_map(|(label, actions)| {
            actions_rows(actions).into_iter().map(move |mut row| {
                row.insert(0, label.clone());
                row
            })
        })
        .collect();
    write_csv_file(path, &ACTIONS_ROLLUP_CSV_HEADER, rows)
}

/// Writes a monitor report as JSON, creating parent directories. The
/// write is atomic (temp + rename), safe under concurrent writers.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_report_json<P: AsRef<Path>>(path: P, report: &MonitorReport) -> io::Result<()> {
    rsc_telemetry::csv::write_file_atomic(path.as_ref(), report.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alerts::AlertKey;
    use rsc_cluster::ids::NodeId;
    use rsc_sim_core::time::SimTime;

    fn sample_alert() -> Alert {
        Alert {
            key: AlertKey::LemonSuspect(NodeId::new(7)),
            raised_at: SimTime::from_days(3),
            cleared_at: None,
            value: 4.0,
            threshold: 3.0,
            message: "node 7, with a \"comma, test\"".to_string(),
        }
    }

    #[test]
    fn rows_match_header_width() {
        let rows = alerts_rows(&[sample_alert()]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), ALERTS_CSV_HEADER.len());
        assert_eq!(rows[0][0], "lemon_suspect");
        assert_eq!(rows[0][1], "7");
        assert_eq!(rows[0][3], ""); // still active
    }

    #[test]
    fn rollup_prefixes_rows_with_scenario_label() {
        let dir = std::env::temp_dir().join(format!("rsc_rollup_test_{}", std::process::id()));
        let path = dir.join("alerts_rollup.csv");
        let a = sample_alert();
        let entries = vec![
            ("0000000000000001".to_string(), std::slice::from_ref(&a)),
            ("0000000000000002".to_string(), &[][..]),
        ];
        write_alerts_rollup_csv(&path, &entries).expect("write rollup");
        let body = std::fs::read_to_string(&path).expect("read back");
        let mut lines = body.lines();
        assert_eq!(
            lines.next().expect("header"),
            ALERTS_ROLLUP_CSV_HEADER.join(",")
        );
        let row = lines.next().expect("one data row");
        assert!(row.starts_with("0000000000000001,lemon_suspect,7,"));
        assert_eq!(lines.next(), None); // empty scenario adds no rows
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn action_rows_match_header_width() {
        use rsc_telemetry::store::{ControlActionKind, ControlTrigger};
        let action = ControlActionEvent {
            at: SimTime::from_days(2),
            kind: ControlActionKind::QuarantineNode,
            trigger: ControlTrigger::LemonSuspect,
            node: Some(NodeId::new(3)),
            job: None,
            accepted: false,
            value: 0,
        };
        let rows = actions_rows(&[action]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), ACTIONS_CSV_HEADER.len());
        assert_eq!(rows[0][0], "quarantine_node");
        assert_eq!(rows[0][1], "lemon_suspect");
        assert_eq!(rows[0][3], "3");
        assert_eq!(rows[0][4], ""); // no job target
        assert_eq!(rows[0][5], "0"); // budget-rejected

        let dir = std::env::temp_dir().join(format!("rsc_actions_test_{}", std::process::id()));
        let path = dir.join("actions_rollup.csv");
        let entries = vec![(
            "0000000000000001".to_string(),
            std::slice::from_ref(&action),
        )];
        write_actions_rollup_csv(&path, &entries).expect("write rollup");
        let body = std::fs::read_to_string(&path).expect("read back");
        let mut lines = body.lines();
        assert_eq!(
            lines.next().expect("header"),
            ACTIONS_ROLLUP_CSV_HEADER.join(",")
        );
        assert!(lines
            .next()
            .expect("one data row")
            .starts_with("0000000000000001,quarantine_node,lemon_suspect,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("rsc_monitor_export_test");
        let path = dir.join("alerts.csv");
        write_alerts_csv(&path, &[sample_alert()]).expect("write csv");
        let body = std::fs::read_to_string(&path).expect("read back");
        let mut lines = body.lines();
        assert_eq!(lines.next().expect("header").split(',').count(), 7);
        // The embedded comma is quoted, not splitting the row count.
        assert!(body.contains("\"node 7, with a \"\"comma, test\"\"\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
