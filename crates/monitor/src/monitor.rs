//! The [`ReliabilityMonitor`]: one [`SimObserver`] owning every streaming
//! estimator plus the alert engine.
//!
//! Attach it to a simulation (live) or drive it from a sealed view
//! ([`crate::replay::replay_view`]) — both paths deliver the identical
//! event sequence, so the end state is the same either way.

use rsc_core::lemon::LemonFeatures;
use rsc_sim::bus::{SimEvent, SimObserver};
use rsc_sim_core::time::SimTime;

use crate::alerts::{Alert, AlertEngine, AlertKey, AlertSignal};
use crate::config::MonitorConfig;
use crate::estimators::{
    Counters, DetectionLatency, RollingMttf, StreamingAvailability, StreamingFailureRate,
    StreamingMttf,
};
use crate::lemon::WindowedLemon;
use crate::report::MonitorReport;

/// The streaming reliability monitor.
///
/// Per-event work is O(1) amortized; windowed re-evaluation (lemon
/// features, alert conditions) happens on daily ticks. Memory is bounded
/// by the configured windows plus per-node state.
#[derive(Debug)]
pub struct ReliabilityMonitor {
    config: MonitorConfig,
    cluster: String,
    num_nodes: u32,
    now: SimTime,
    horizon: Option<SimTime>,
    gpu_swaps: u64,
    counters: Counters,
    mttf: StreamingMttf,
    rolling: RollingMttf,
    rate: StreamingFailureRate,
    availability: StreamingAvailability,
    detection: DetectionLatency,
    lemon: WindowedLemon,
    quarantines: std::collections::VecDeque<SimTime>,
    alerts: AlertEngine,
}

impl ReliabilityMonitor {
    /// A monitor with the given configuration. Fleet-sized state is
    /// allocated when [`SimEvent::Start`] arrives.
    pub fn new(config: MonitorConfig) -> Self {
        let rolling = RollingMttf::new(config.mttf_window);
        let alerts =
            AlertEngine::with_cooldowns(config.alerts.debounce, config.alerts.reraise_cooldown);
        let rate = StreamingFailureRate::new(config.min_gpus);
        let lemon = WindowedLemon::new(0, config.lemon_window);
        ReliabilityMonitor {
            config,
            cluster: String::new(),
            num_nodes: 0,
            now: SimTime::ZERO,
            horizon: None,
            gpu_swaps: 0,
            counters: Counters::default(),
            mttf: StreamingMttf::new(),
            rolling,
            rate,
            availability: StreamingAvailability::new(0),
            detection: DetectionLatency::new(),
            lemon,
            quarantines: std::collections::VecDeque::new(),
            alerts,
        }
    }

    /// The configuration this monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Latest simulated time observed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's horizon, once [`SimEvent::Finish`] has arrived.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// Exact event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The cumulative per-bucket MTTF estimator.
    pub fn mttf(&self) -> &StreamingMttf {
        &self.mttf
    }

    /// The rolling-window MTTF estimator.
    pub fn rolling_mttf(&self) -> &RollingMttf {
        &self.rolling
    }

    /// The streaming status-only failure-rate estimator.
    pub fn failure_rate(&self) -> &StreamingFailureRate {
        &self.rate
    }

    /// The streaming availability estimator.
    pub fn availability(&self) -> &StreamingAvailability {
        &self.availability
    }

    /// The ground-truth detection-latency matcher.
    pub fn detection(&self) -> &DetectionLatency {
        &self.detection
    }

    /// Current windowed lemon features (trailing `lemon_window` at the
    /// latest observed time).
    pub fn lemon_features(&self) -> Vec<LemonFeatures> {
        self.lemon.features(self.now)
    }

    /// Every alert raised so far.
    pub fn alerts(&self) -> &[Alert] {
        self.alerts.log()
    }

    /// The continuously re-evaluated expected ETTR of the configured
    /// reference job at the current streaming failure rate (paper Eq. 1).
    /// `None` until some failure-rate exposure exists.
    pub fn expected_ettr(&self) -> Option<f64> {
        if self.rate.node_days() <= 0.0 {
            return None;
        }
        Some(rsc_core::ettr::analytical::expected_ettr(
            &self.config.ref_job.params(self.rate.rate()),
        ))
    }

    /// Builds the end-of-run (or point-in-time) report.
    pub fn report(&self) -> MonitorReport {
        MonitorReport::build(self)
    }

    fn evaluate_alerts(&mut self, now: SimTime) {
        let policy = self.config.alerts;
        let detector = self.config.detector;

        // Lemon suspects: raise at the detector threshold, clear only when
        // the score falls `lemon_clear_margin` below it.
        let features = self.lemon.features(now);
        for f in &features {
            let score = detector.score(f);
            let signal = if score >= detector.min_criteria {
                AlertSignal::Raise {
                    value: score as f64,
                    threshold: detector.min_criteria as f64,
                    message: format!(
                        "node {} meets {score} lemon criteria over the trailing window",
                        f.node.index()
                    ),
                }
            } else if score + policy.lemon_clear_margin < detector.min_criteria {
                AlertSignal::Clear
            } else {
                AlertSignal::Hold
            };
            self.alerts
                .evaluate(now, AlertKey::LemonSuspect(f.node), signal);
        }

        // MTTF regression: the rolling window's upper confidence bound
        // sits below a fraction of the cumulative MTTF.
        let cumulative = self.mttf.overall_mttf_hours();
        if cumulative.is_finite() {
            let signal = match self.rolling.estimate() {
                Some(est) if est.failures >= policy.min_rolling_failures => {
                    let upper = est.ci90.map(|(_, hi)| hi).unwrap_or(f64::INFINITY);
                    if upper < policy.mttf_raise_ratio * cumulative {
                        AlertSignal::Raise {
                            value: est.mttf_hours,
                            threshold: policy.mttf_raise_ratio * cumulative,
                            message: format!(
                                "rolling MTTF {:.1} h (90% CI upper {:.1} h) below {:.0}% of cumulative {:.1} h",
                                est.mttf_hours,
                                upper,
                                policy.mttf_raise_ratio * 100.0,
                                cumulative
                            ),
                        }
                    } else if est.mttf_hours >= policy.mttf_clear_ratio * cumulative {
                        AlertSignal::Clear
                    } else {
                        AlertSignal::Hold
                    }
                }
                // Too little windowed data to judge either way.
                _ => AlertSignal::Hold,
            };
            self.alerts.evaluate(now, AlertKey::MttfRegression, signal);
        }

        // Quarantine surge over the trailing window.
        let quarantined = self.quarantines.len() as u32;
        let signal = if quarantined >= policy.quarantine_raise {
            AlertSignal::Raise {
                value: quarantined as f64,
                threshold: policy.quarantine_raise as f64,
                message: format!("{quarantined} nodes quarantined within the trailing window"),
            }
        } else if quarantined <= policy.quarantine_clear {
            AlertSignal::Clear
        } else {
            AlertSignal::Hold
        };
        self.alerts.evaluate(now, AlertKey::QuarantineSurge, signal);
    }

    fn on_tick(&mut self, now: SimTime, finished: bool) {
        self.now = now;
        self.lemon.resolve(now, finished);
        self.lemon.evict(now);
        self.rolling.evict(now);
        while let Some(&t) = self.quarantines.front() {
            if now.saturating_since(t) <= self.config.quarantine_window {
                break;
            }
            self.quarantines.pop_front();
        }
        self.evaluate_alerts(now);
    }
}

impl SimObserver for ReliabilityMonitor {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::Start { cluster, num_nodes } => {
                self.cluster = cluster.to_string();
                self.num_nodes = *num_nodes;
                self.availability = StreamingAvailability::new(*num_nodes);
                self.lemon = WindowedLemon::new(*num_nodes, self.config.lemon_window);
            }
            SimEvent::Job(r) => {
                self.counters.observe_job(r);
                self.mttf.observe(r);
                self.rolling.observe(r);
                self.rate.observe(r);
                self.lemon.observe_job(r);
                if r.ended_at > self.now {
                    self.now = r.ended_at;
                }
            }
            SimEvent::Health(e) => {
                self.counters.health_events += 1;
                if e.false_positive {
                    self.counters.false_positives += 1;
                } else {
                    self.detection.observe_detection(e.node, e.at);
                }
                self.lemon.observe_health(e);
                self.now = e.at;
            }
            SimEvent::Node(e) => {
                self.counters.node_events += 1;
                if e.kind == rsc_telemetry::store::NodeEventKind::Quarantined {
                    self.counters.quarantined += 1;
                    self.quarantines.push_back(e.at);
                }
                self.availability.observe(e);
                self.lemon.observe_node_event(e);
                self.now = e.at;
            }
            SimEvent::Exclusion(e) => {
                self.counters.exclusions += 1;
                self.lemon.observe_exclusion(e);
                self.now = e.at;
            }
            SimEvent::GroundTruth(e) => {
                self.counters.ground_truth += 1;
                self.detection.observe_ground_truth(e.node, e.at);
                self.now = e.at;
            }
            SimEvent::CkptFallback(e) => {
                self.counters.ckpt_fallbacks += 1;
                self.counters.fallback_lost_gpu_hours += e.lost.as_hours() * e.gpus as f64;
                self.now = e.at;
            }
            SimEvent::ControlAction(e) => {
                self.counters.control_actions += 1;
                self.now = e.at;
            }
            SimEvent::Tick { now } => {
                self.counters.ticks += 1;
                self.on_tick(*now, false);
            }
            SimEvent::Finish { horizon, gpu_swaps } => {
                self.gpu_swaps = *gpu_swaps;
                self.horizon = Some(*horizon);
                self.on_tick(*horizon, true);
            }
        }
    }
}

/// Cluster metadata captured from [`SimEvent::Start`].
impl ReliabilityMonitor {
    /// Cluster name (empty before `Start`).
    pub fn cluster(&self) -> &str {
        &self.cluster
    }

    /// Fleet size (0 before `Start`).
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Cumulative GPU swaps reported at `Finish`.
    pub fn gpu_swaps(&self) -> u64 {
        self.gpu_swaps
    }

    /// Quarantines currently inside the trailing window.
    pub fn windowed_quarantines(&self) -> usize {
        self.quarantines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_sim::bus::SharedObserver;
    use rsc_sim::config::SimConfig;
    use rsc_sim::driver::ClusterSim;
    use rsc_sim_core::time::SimDuration;

    #[test]
    fn live_run_populates_every_estimator() {
        let cfg = MonitorConfig::rsc_default();
        let handle = SharedObserver::new(ReliabilityMonitor::new(cfg));
        let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 11);
        sim.attach_observer(Box::new(handle.clone()));
        sim.run(SimDuration::from_days(5));
        handle.with(|m| {
            assert_eq!(m.cluster(), "test-64");
            assert_eq!(m.num_nodes(), 64);
            assert!(m.counters().jobs > 0);
            assert_eq!(m.counters().ticks, 4);
            assert!(m.mttf().total_failures() > 0 || m.counters().jobs > 0);
            assert!(m.expected_ettr().is_some());
        });
    }

    #[test]
    fn finish_is_idempotent() {
        // `ClusterSim::run` and `into_telemetry` both emit Finish; the
        // monitor must absorb the duplicate without changing state.
        let cfg = MonitorConfig::rsc_default();
        let handle = SharedObserver::new(ReliabilityMonitor::new(cfg));
        let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 12);
        sim.attach_observer(Box::new(handle.clone()));
        sim.run(SimDuration::from_days(3));
        let first = handle.with(|m| m.report());
        let _ = sim.into_telemetry().seal();
        let second = handle.with(|m| m.report());
        assert_eq!(first, second);
    }
}
