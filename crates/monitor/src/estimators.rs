//! Incremental estimators mirroring the batch analyses in `rsc-core`.
//!
//! Each estimator consumes events one at a time in O(1) amortized work and
//! bounded memory, and is proven against its batch anchor by the agreement
//! harness (`tests/agreement.rs`): counters and cumulative estimators
//! reproduce the batch numbers *exactly* (same fold order, same float
//! operations); windowed and histogram-backed estimators converge within
//! pinned tolerances.

use std::collections::{BTreeMap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_core::mttf::{gamma_mttf_ci, power_of_two_bucket, MttfPoint};
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::JobStatus;
use rsc_sim_core::stats::StreamingStats;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{NodeEvent, NodeEventKind};

/// Cumulative MTTF per job-size bucket — the streaming twin of
/// [`rsc_core::mttf::mttf_by_job_size`] with `FailureScope::AllFailures`.
///
/// Per bucket it keeps only `(failures, exposure_hours)`; exposure
/// accumulates in arrival order, which is the batch fold order, so
/// [`points`](Self::points) equals the batch output bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct StreamingMttf {
    buckets: BTreeMap<u32, (u64, f64)>,
    total_failures: u64,
    total_exposure_hours: f64,
}

impl StreamingMttf {
    /// An empty estimator.
    pub fn new() -> Self {
        StreamingMttf::default()
    }

    /// Folds one terminal job record in.
    pub fn observe(&mut self, r: &JobRecord) {
        if r.started_at.is_none() {
            return;
        }
        let entry = self
            .buckets
            .entry(power_of_two_bucket(r.gpus))
            .or_insert((0, 0.0));
        let hours = r.runtime().as_hours();
        entry.1 += hours;
        self.total_exposure_hours += hours;
        if matches!(
            r.status,
            JobStatus::Failed | JobStatus::NodeFail | JobStatus::Requeued
        ) {
            entry.0 += 1;
            self.total_failures += 1;
        }
    }

    /// Current per-bucket estimates, identical to the batch computation
    /// over the records observed so far.
    pub fn points(&self) -> Vec<MttfPoint> {
        self.buckets
            .iter()
            .filter(|(_, (_, exposure))| *exposure > 0.0)
            .map(|(&gpus, &(failures, exposure_hours))| {
                let mttf_hours = if failures > 0 {
                    exposure_hours / failures as f64
                } else {
                    f64::INFINITY
                };
                MttfPoint {
                    gpus,
                    failures,
                    exposure_hours,
                    mttf_hours,
                    ci90: gamma_mttf_ci(failures, exposure_hours, 0.90),
                }
            })
            .collect()
    }

    /// Fleet-wide cumulative MTTF across all buckets, hours
    /// (`∞` before the first failure).
    pub fn overall_mttf_hours(&self) -> f64 {
        if self.total_failures == 0 {
            f64::INFINITY
        } else {
            self.total_exposure_hours / self.total_failures as f64
        }
    }

    /// Total failures folded in.
    pub fn total_failures(&self) -> u64 {
        self.total_failures
    }
}

/// A rolling-window MTTF estimate with a moment-based confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollingMttfEstimate {
    /// Failures inside the window.
    pub failures: u64,
    /// Exposure hours inside the window.
    pub exposure_hours: f64,
    /// Point estimate, hours (`∞` with zero failures).
    pub mttf_hours: f64,
    /// 90% moment-based interval on the MTTF, hours. Treating the window's
    /// failure count as Poisson, the rate `n/T` has standard deviation
    /// `√n/T`; the MTTF bounds are the reciprocals of `rate ∓ z·sd`.
    /// `None` with zero failures.
    pub ci90: Option<(f64, f64)>,
}

/// Fleet MTTF over a trailing window of job endings, for regression
/// detection. Entries are keyed on `ended_at` and evicted at each tick.
#[derive(Debug, Clone)]
pub struct RollingMttf {
    window: SimDuration,
    entries: VecDeque<(SimTime, bool, f64)>,
    failures: u64,
    exposure_hours: f64,
}

impl RollingMttf {
    /// An empty window of the given width.
    pub fn new(window: SimDuration) -> Self {
        RollingMttf {
            window,
            entries: VecDeque::new(),
            failures: 0,
            exposure_hours: 0.0,
        }
    }

    /// Folds one terminal job record in.
    pub fn observe(&mut self, r: &JobRecord) {
        if r.started_at.is_none() {
            return;
        }
        let failed = matches!(
            r.status,
            JobStatus::Failed | JobStatus::NodeFail | JobStatus::Requeued
        );
        let hours = r.runtime().as_hours();
        self.entries.push_back((r.ended_at, failed, hours));
        self.exposure_hours += hours;
        if failed {
            self.failures += 1;
        }
    }

    /// Drops entries older than the window behind `now`.
    pub fn evict(&mut self, now: SimTime) {
        while let Some(&(at, failed, hours)) = self.entries.front() {
            if now.saturating_since(at) <= self.window {
                break;
            }
            self.entries.pop_front();
            self.exposure_hours -= hours;
            if failed {
                self.failures -= 1;
            }
        }
    }

    /// The current windowed estimate, `None` while the window has no
    /// exposure.
    pub fn estimate(&self) -> Option<RollingMttfEstimate> {
        if self.exposure_hours <= 0.0 {
            return None;
        }
        let n = self.failures;
        let t = self.exposure_hours;
        let mttf_hours = if n > 0 { t / n as f64 } else { f64::INFINITY };
        let ci90 = if n > 0 {
            const Z90: f64 = 1.6448536269514722;
            let rate = n as f64 / t;
            let sd = (n as f64).sqrt() / t;
            let hi_rate = rate + Z90 * sd;
            let lo_rate = (rate - Z90 * sd).max(0.0);
            let upper = if lo_rate > 0.0 {
                1.0 / lo_rate
            } else {
                f64::INFINITY
            };
            Some((1.0 / hi_rate, upper))
        } else {
            None
        };
        Some(RollingMttfEstimate {
            failures: n,
            exposure_hours: t,
            mttf_hours,
            ci90,
        })
    }
}

/// Streaming status-only failure rate — the twin of
/// [`rsc_core::mttf::estimate_status_only_failure_rate`], exact by
/// construction (same fold order over the same records).
#[derive(Debug, Clone)]
pub struct StreamingFailureRate {
    min_gpus: u32,
    failures: u64,
    node_days: f64,
}

impl StreamingFailureRate {
    /// An empty estimator counting jobs with more than `min_gpus` GPUs.
    pub fn new(min_gpus: u32) -> Self {
        StreamingFailureRate {
            min_gpus,
            failures: 0,
            node_days: 0.0,
        }
    }

    /// Folds one terminal job record in.
    pub fn observe(&mut self, r: &JobRecord) {
        if r.gpus <= self.min_gpus {
            return;
        }
        self.node_days += r.node_days();
        if matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued) {
            self.failures += 1;
        }
    }

    /// Failures per node-day (0 before any exposure).
    pub fn rate(&self) -> f64 {
        if self.node_days <= 0.0 {
            return 0.0;
        }
        self.failures as f64 / self.node_days
    }

    /// Infra failures counted so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Node-days of runtime accumulated so far.
    pub fn node_days(&self) -> f64 {
        self.node_days
    }
}

/// A log-linear histogram: power-of-two octaves split into 16 linear
/// sub-buckets, giving ≈ 4.4% relative resolution over any positive range
/// in O(octaves × 16) memory. Used for time-to-detect and time-to-repair
/// distributions where the batch side keeps every sample.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    counts: BTreeMap<i32, u64>,
    zeros: u64,
    total: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    const SUBS: f64 = 16.0;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one non-negative sample (zero and negative values land in a
    /// dedicated underflow bucket).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x > 0.0 && x.is_finite() {
            self.sum += x;
            self.max = self.max.max(x);
            let idx = (x.log2() * Self::SUBS).floor() as i32;
            *self.counts.entry(idx).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the positive samples (exact — the sum is kept aside).
    pub fn mean(&self) -> f64 {
        let positive = self.total - self.zeros;
        if positive == 0 {
            return 0.0;
        }
        self.sum / positive as f64
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The representative value of the sample at 0-indexed sorted `rank`:
    /// zero for underflow samples, the geometric midpoint of the sample's
    /// log bucket otherwise (relative error bounded by the sub-bucket
    /// width, ≈ 4.4%).
    fn value_at(&self, rank: u64) -> f64 {
        if rank < self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&idx, &n) in &self.counts {
            seen += n;
            if rank < seen {
                return 2f64.powf((idx as f64 + 0.5) / Self::SUBS);
            }
        }
        self.max
    }

    /// Approximate `q`-quantile, `None` when empty.
    ///
    /// Uses the same linearly-interpolated (type-7) convention as
    /// [`rsc_sim_core::stats::quantile_sorted`] so the two agree up to
    /// bucket quantization of the endpoints (≈ 4.4% each) — without this,
    /// rank-convention differences dwarf bucket error on small,
    /// heavy-tailed samples.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let pos = q.clamp(0.0, 1.0) * (self.total - 1) as f64;
        let lo = self.value_at(pos.floor() as u64);
        let hi = self.value_at(pos.ceil() as u64);
        Some(lo + (hi - lo) * (pos - pos.floor()))
    }
}

/// Per-node service state for the streaming availability estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySnapshot {
    /// In-service node-time over total node-time up to the snapshot
    /// instant — matches [`rsc_core::availability::fleet_availability`]
    /// exactly when taken at the horizon.
    pub fleet_availability: f64,
    /// Mean time to repair across completed visits, hours (exact).
    pub mttr_hours: f64,
    /// Approximate 90th-percentile repair time, hours (log-histogram).
    pub mttr_p90_hours: f64,
    /// Capacity lost to remediation so far, node-days.
    pub lost_node_days: f64,
    /// Completed remediation visits.
    pub completed_repairs: u64,
    /// Remediation intervals still open.
    pub open_intervals: u32,
}

/// Streaming fleet availability from the node lifecycle stream — the twin
/// of [`rsc_core::availability::fleet_availability`], pairing
/// `EnterRemediation`/`ExitRemediation` per node and charging open
/// intervals to the snapshot instant.
#[derive(Debug, Clone)]
pub struct StreamingAvailability {
    down_since: Vec<Option<SimTime>>,
    downtime: Vec<SimDuration>,
    repairs: Vec<u32>,
    repair_stats: StreamingStats,
    ttr: LogHistogram,
}

impl StreamingAvailability {
    /// An estimator for a fleet of `num_nodes`.
    pub fn new(num_nodes: u32) -> Self {
        let n = num_nodes as usize;
        StreamingAvailability {
            down_since: vec![None; n],
            downtime: vec![SimDuration::ZERO; n],
            repairs: vec![0; n],
            repair_stats: StreamingStats::new(),
            ttr: LogHistogram::new(),
        }
    }

    /// Folds one node lifecycle event in.
    pub fn observe(&mut self, e: &NodeEvent) {
        let i = e.node.as_usize();
        if i >= self.down_since.len() {
            return;
        }
        match e.kind {
            NodeEventKind::EnterRemediation if self.down_since[i].is_none() => {
                self.down_since[i] = Some(e.at);
            }
            NodeEventKind::ExitRemediation => {
                if let Some(start) = self.down_since[i].take() {
                    let d = e.at.saturating_since(start);
                    self.downtime[i] += d;
                    self.repairs[i] += 1;
                    self.repair_stats.push(d.as_hours());
                    self.ttr.record(d.as_hours());
                }
            }
            _ => {}
        }
    }

    /// Snapshot at `now`, charging open intervals up to `now`.
    pub fn snapshot(&self, now: SimTime) -> AvailabilitySnapshot {
        let n = self.down_since.len();
        let window = now.as_days().max(f64::MIN_POSITIVE);
        let lost_node_days: f64 = (0..n)
            .map(|i| {
                let open = self.down_since[i]
                    .map(|start| now.saturating_since(start))
                    .unwrap_or(SimDuration::ZERO);
                (self.downtime[i] + open).as_days()
            })
            .sum();
        AvailabilitySnapshot {
            fleet_availability: 1.0 - lost_node_days / (window * n.max(1) as f64),
            mttr_hours: self.repair_stats.mean(),
            mttr_p90_hours: self.ttr.quantile(0.90).unwrap_or(0.0),
            lost_node_days,
            completed_repairs: self.repair_stats.count(),
            open_intervals: self.down_since.iter().filter(|d| d.is_some()).count() as u32,
        }
    }

    /// The time-to-repair histogram (completed visits, hours).
    pub fn ttr_histogram(&self) -> &LogHistogram {
        &self.ttr
    }
}

/// Matches ground-truth failure injections to their first subsequent real
/// health detection on the same node, feeding a time-to-detect histogram.
///
/// Only the validation side of the simulation can do this (production has
/// no ground truth); the monitor uses it to report detection latency the
/// same way the paper's Table I discusses detection coverage.
#[derive(Debug, Clone, Default)]
pub struct DetectionLatency {
    pending: HashMap<NodeId, SimTime>,
    hist: LogHistogram,
    injected: u64,
    matched: u64,
}

impl DetectionLatency {
    /// An empty matcher.
    pub fn new() -> Self {
        DetectionLatency::default()
    }

    /// Records a ground-truth failure on `node` at `at`. A node with an
    /// undetected earlier failure keeps the earlier timestamp.
    pub fn observe_ground_truth(&mut self, node: NodeId, at: SimTime) {
        self.injected += 1;
        self.pending.entry(node).or_insert(at);
    }

    /// Records a real (non-false-positive) health detection.
    pub fn observe_detection(&mut self, node: NodeId, at: SimTime) {
        if let Some(t0) = self.pending.remove(&node) {
            self.matched += 1;
            self.hist.record(at.saturating_since(t0).as_hours());
        }
    }

    /// Ground-truth failures seen.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Failures matched to a detection.
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// The time-to-detect histogram, hours.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }
}

/// Exact run counters, updated once per event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Terminal job records seen.
    pub jobs: u64,
    /// Of those, records that actually started.
    pub jobs_started: u64,
    /// COMPLETED endings.
    pub completed: u64,
    /// FAILED endings.
    pub failed: u64,
    /// NODE_FAIL endings.
    pub node_fail: u64,
    /// REQUEUED endings.
    pub requeued: u64,
    /// Preempted endings.
    pub preempted: u64,
    /// Cancelled / OOM / timeout endings.
    pub other: u64,
    /// GPU-hours of runtime across all records.
    pub gpu_hours: f64,
    /// Health events (including false positives).
    pub health_events: u64,
    /// False-positive health events.
    pub false_positives: u64,
    /// Node lifecycle events.
    pub node_events: u64,
    /// Nodes quarantined.
    pub quarantined: u64,
    /// User exclusions.
    pub exclusions: u64,
    /// Ground-truth failure injections.
    pub ground_truth: u64,
    /// Checkpoint-fallback events.
    pub ckpt_fallbacks: u64,
    /// GPU-hours of productive work discarded by checkpoint fallbacks.
    pub fallback_lost_gpu_hours: f64,
    /// Control-plane actions (accepted or budget-rejected).
    pub control_actions: u64,
    /// Daily ticks received.
    pub ticks: u64,
}

impl Counters {
    /// Folds one terminal job record in.
    pub fn observe_job(&mut self, r: &JobRecord) {
        self.jobs += 1;
        if r.started_at.is_some() {
            self.jobs_started += 1;
        }
        self.gpu_hours += r.runtime().as_hours() * r.gpus as f64;
        match r.status {
            JobStatus::Completed => self.completed += 1,
            JobStatus::Failed => self.failed += 1,
            JobStatus::NodeFail => self.node_fail += 1,
            JobStatus::Requeued => self.requeued += 1,
            JobStatus::Preempted => self.preempted += 1,
            JobStatus::Cancelled | JobStatus::OutOfMemory | JobStatus::Timeout => self.other += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_sched::job::QosClass;

    fn record(gpus: u32, hours: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            job: JobId::new(1),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: (0..gpus.div_ceil(8)).map(NodeId::new).collect(),
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn streaming_mttf_buckets_and_rates() {
        let mut m = StreamingMttf::new();
        m.observe(&record(8, 100, JobStatus::Completed));
        m.observe(&record(8, 100, JobStatus::NodeFail));
        let points = m.points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].gpus, 8);
        assert_eq!(points[0].failures, 1);
        assert!((points[0].mttf_hours - 200.0).abs() < 1e-9);
        assert!((m.overall_mttf_hours() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn rolling_mttf_evicts() {
        let mut r = RollingMttf::new(SimDuration::from_days(1));
        let mut rec = record(8, 10, JobStatus::NodeFail);
        rec.ended_at = SimTime::from_hours(10);
        r.observe(&rec);
        assert_eq!(r.estimate().unwrap().failures, 1);
        r.evict(SimTime::from_days(3));
        assert!(r.estimate().is_none());
    }

    #[test]
    fn rolling_ci_brackets_point() {
        let mut r = RollingMttf::new(SimDuration::from_days(365));
        for i in 0..25u64 {
            let mut rec = record(8, 40, JobStatus::NodeFail);
            rec.ended_at = SimTime::from_hours(40 * (i + 1));
            r.observe(&rec);
        }
        let est = r.estimate().unwrap();
        let (lo, hi) = est.ci90.unwrap();
        assert!(lo < est.mttf_hours && est.mttf_hours < hi, "{lo} {hi}");
    }

    #[test]
    fn failure_rate_counts_only_large_infra() {
        let mut f = StreamingFailureRate::new(8);
        f.observe(&record(8, 24, JobStatus::NodeFail)); // at floor: excluded
        f.observe(&record(16, 24, JobStatus::NodeFail));
        f.observe(&record(16, 24, JobStatus::Completed));
        assert_eq!(f.failures(), 1);
        // Two 16-GPU (2-node) jobs for a day each → 4 node-days.
        assert!((f.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_quantiles_are_close() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.06, "{p50}");
        assert!((p90 - 900.0).abs() / 900.0 < 0.06, "{p90}");
        assert!((h.mean() - 500.5).abs() < 1e-6);
    }

    #[test]
    fn availability_pairs_visits() {
        let mut a = StreamingAvailability::new(4);
        let ev = |node, at_h, kind| NodeEvent {
            node: NodeId::new(node),
            at: SimTime::from_hours(at_h),
            kind,
        };
        a.observe(&ev(1, 10, NodeEventKind::EnterRemediation));
        a.observe(&ev(1, 14, NodeEventKind::ExitRemediation));
        a.observe(&ev(2, 90, NodeEventKind::EnterRemediation));
        let snap = a.snapshot(SimTime::from_hours(100));
        assert_eq!(snap.completed_repairs, 1);
        assert_eq!(snap.open_intervals, 1);
        assert!((snap.mttr_hours - 4.0).abs() < 1e-12);
        // 4 h + 10 h open = 14 h lost over 400 node-hours.
        assert!((snap.fleet_availability - (1.0 - 14.0 / 400.0)).abs() < 1e-12);
    }

    #[test]
    fn detection_latency_matches_first_detection() {
        let mut d = DetectionLatency::new();
        let n = NodeId::new(3);
        d.observe_ground_truth(n, SimTime::from_hours(10));
        d.observe_detection(n, SimTime::from_hours(12));
        d.observe_detection(n, SimTime::from_hours(13)); // no pending: ignored
        assert_eq!(d.matched(), 1);
        assert!((d.histogram().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn counters_split_by_status() {
        let mut c = Counters::default();
        c.observe_job(&record(8, 10, JobStatus::Completed));
        c.observe_job(&record(8, 10, JobStatus::Requeued));
        c.observe_job(&record(8, 10, JobStatus::Cancelled));
        assert_eq!((c.jobs, c.completed, c.requeued, c.other), (3, 1, 1, 1));
        assert!((c.gpu_hours - 240.0).abs() < 1e-9);
    }
}
