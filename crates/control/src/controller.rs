//! The closed-loop controller: alerts in, budgeted commands out.

use std::collections::{BTreeMap, BTreeSet};

use rsc_cluster::ids::NodeId;
use rsc_monitor::alerts::{Alert, AlertKey};
use rsc_monitor::config::MonitorConfig;
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_sim::bus::{SimEvent, SimObserver};
use rsc_sim::control::{CommandQueue, ControlCommand, ControlVerb};
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{ControlActionEvent, ControlActionKind, ControlTrigger};

use crate::policy::ControlPolicy;

/// The deterministic planning layer: pure state machine from
/// `(now, alert log, failure rate)` to commands.
///
/// Split out of [`ReliabilityController`] so property tests can drive it
/// with adversarial alert sequences directly, without a simulation. Its
/// view of actuation state (active quarantines, routing mode, interval in
/// force) is synced from the *observed* [`ControlActionEvent`] stream —
/// the driver's accept/reject verdicts, not the controller's wishes — so
/// planner and plant cannot drift apart.
#[derive(Debug, Clone)]
pub struct ControllerCore {
    policy: ControlPolicy,
    /// Last time the controller acted on a lemon alert, per node.
    lemon_last_action: BTreeMap<NodeId, SimTime>,
    /// Controller-initiated quarantines currently in force (accepted and
    /// not yet released), charged against the fleet budget.
    active_quarantines: BTreeSet<NodeId>,
    /// Whether adaptive routing is in force (synced from accepted
    /// actions).
    routing_adaptive: bool,
    /// When routing last changed, for the revert cooldown.
    routing_changed_at: Option<SimTime>,
    /// The checkpoint interval currently in force, once a retune has been
    /// accepted.
    interval_in_force: Option<SimDuration>,
}

impl ControllerCore {
    /// A core with no actuation state.
    pub fn new(policy: ControlPolicy) -> Self {
        ControllerCore {
            policy,
            lemon_last_action: BTreeMap::new(),
            active_quarantines: BTreeSet::new(),
            routing_adaptive: false,
            routing_changed_at: None,
            interval_in_force: None,
        }
    }

    /// The policy this core plans under.
    pub fn policy(&self) -> &ControlPolicy {
        &self.policy
    }

    /// Controller-initiated quarantines currently charged to the budget.
    pub fn active_quarantines(&self) -> usize {
        self.active_quarantines.len()
    }

    /// Syncs actuation state from one recorded control action. Rejected
    /// actions change nothing: budget accounting follows the driver's
    /// verdicts.
    pub fn observe_action(&mut self, e: &ControlActionEvent) {
        if !e.accepted {
            return;
        }
        match e.kind {
            ControlActionKind::QuarantineNode => {
                if let Some(node) = e.node {
                    self.active_quarantines.insert(node);
                }
            }
            ControlActionKind::ReleaseNode => {
                if let Some(node) = e.node {
                    self.active_quarantines.remove(&node);
                }
            }
            ControlActionKind::AdaptiveRouting => {
                self.routing_adaptive = true;
                self.routing_changed_at = Some(e.at);
            }
            ControlActionKind::RestoreRouting => {
                self.routing_adaptive = false;
                self.routing_changed_at = Some(e.at);
            }
            ControlActionKind::RetuneCheckpoint => {
                self.interval_in_force = Some(SimDuration::from_secs(e.value));
            }
            ControlActionKind::RemediateNode => {}
        }
    }

    /// Plans this tick's commands from the alert log and the streaming
    /// per-node-day failure rate. Deterministic, draws no randomness, and
    /// every emitted command is bounded by the policy's budgets and
    /// cooldowns.
    pub fn plan(
        &mut self,
        now: SimTime,
        alerts: &[Alert],
        failure_rate: f64,
    ) -> Vec<ControlCommand> {
        if !self.policy.enabled {
            return Vec::new();
        }
        let mut out = Vec::new();
        let surge_active = alerts
            .iter()
            .any(|a| a.is_active() && a.key == AlertKey::QuarantineSurge);

        // Lemon suspects: quarantine (budgeted, releasable) — or only a
        // remediation visit while a QuarantineSurge alert says the fleet
        // is already losing too many nodes to the repair pipeline.
        let mut charged = self.active_quarantines.len() as u32;
        for alert in alerts.iter().filter(|a| a.is_active()) {
            let AlertKey::LemonSuspect(node) = alert.key else {
                continue;
            };
            if self.active_quarantines.contains(&node) {
                continue;
            }
            if self
                .lemon_last_action
                .get(&node)
                .is_some_and(|&t| now.saturating_since(t) < self.policy.lemon_action_cooldown)
            {
                continue;
            }
            self.lemon_last_action.insert(node, now);
            if surge_active {
                out.push(ControlCommand {
                    verb: ControlVerb::RemediateNode { node },
                    trigger: ControlTrigger::QuarantineSurge,
                    budget_ok: true,
                });
            } else {
                let budget_ok = charged < self.policy.max_concurrent_quarantines;
                if budget_ok {
                    charged += 1;
                }
                out.push(ControlCommand {
                    verb: ControlVerb::QuarantineNode {
                        node,
                        release: self.policy.release,
                    },
                    trigger: ControlTrigger::LemonSuspect,
                    budget_ok,
                });
            }
        }

        // Fabric routing: adaptive while an MttfRegression alert is
        // active, reverting on clear once the revert cooldown has passed.
        if self.policy.adaptive_routing {
            let mttf_active = alerts
                .iter()
                .any(|a| a.is_active() && a.key == AlertKey::MttfRegression);
            let cooling = self
                .routing_changed_at
                .is_some_and(|t| now.saturating_since(t) < self.policy.routing_revert_cooldown);
            if mttf_active && !self.routing_adaptive {
                out.push(ControlCommand {
                    verb: ControlVerb::AdaptiveRouting,
                    trigger: ControlTrigger::MttfRegression,
                    budget_ok: true,
                });
            } else if !mttf_active && self.routing_adaptive && !cooling {
                out.push(ControlCommand {
                    verb: ControlVerb::RestoreRouting,
                    trigger: ControlTrigger::MttfRegression,
                    budget_ok: true,
                });
            }
        }

        // Checkpoint cadence: re-solve the Young/Daly optimum from the
        // streaming failure rate, clamped below by what the storage tier
        // can sustain, gated by the relative-change tolerance.
        if self.policy.ckpt_retune && failure_rate > 0.0 {
            let mtbf_secs = 86_400.0 / (failure_rate * self.policy.ref_nodes.max(1) as f64);
            let delta_secs = self
                .policy
                .ckpt_spec
                .write_duration(&self.policy.tier)
                .as_secs() as f64;
            let floor_secs = self
                .policy
                .ckpt_spec
                .min_sustainable_interval(&self.policy.tier)
                .as_secs() as f64;
            let tau_secs = (2.0 * delta_secs * mtbf_secs)
                .sqrt()
                .max(floor_secs)
                .max(60.0);
            let differs = match self.interval_in_force {
                None => true,
                Some(cur) => {
                    let cur_secs = cur.as_secs() as f64;
                    (tau_secs - cur_secs).abs() > self.policy.ckpt_retune_tolerance * cur_secs
                }
            };
            if differs {
                out.push(ControlCommand {
                    verb: ControlVerb::RetuneCheckpoint {
                        interval: SimDuration::from_secs_f64(tau_secs),
                    },
                    trigger: ControlTrigger::Controller,
                    budget_ok: true,
                });
            }
        }

        out
    }
}

/// The attachable closed-loop controller: a [`ReliabilityMonitor`] for
/// eyes, a [`ControllerCore`] for judgment, and a [`CommandQueue`] for
/// hands.
///
/// Forward every bus event to the wrapped monitor, sync the core from the
/// recorded control-action stream, and on each daily tick plan commands
/// from the monitor's alert log and streaming failure rate. The driver
/// drains the shared queue after its next scheduling cycle — actuation at
/// a deterministic point of the event loop, never from inside an observer
/// callback.
#[derive(Debug)]
pub struct ReliabilityController {
    monitor: ReliabilityMonitor,
    core: ControllerCore,
    queue: CommandQueue,
}

impl ReliabilityController {
    /// A controller planning under `policy`, watching through a monitor
    /// built from `monitor_config` (which should be enabled — a disabled
    /// monitor raises no alerts, so nothing ever actuates), pushing into
    /// `queue` (the same handle given to
    /// [`rsc_sim::driver::ClusterSim::set_command_queue`]).
    pub fn new(policy: ControlPolicy, monitor_config: MonitorConfig, queue: CommandQueue) -> Self {
        ReliabilityController {
            monitor: ReliabilityMonitor::new(monitor_config),
            core: ControllerCore::new(policy),
            queue,
        }
    }

    /// The wrapped monitor.
    pub fn monitor(&self) -> &ReliabilityMonitor {
        &self.monitor
    }

    /// The planning core.
    pub fn core(&self) -> &ControllerCore {
        &self.core
    }
}

impl SimObserver for ReliabilityController {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self.monitor.on_event(event);
        match event {
            SimEvent::ControlAction(e) => self.core.observe_action(e),
            SimEvent::Tick { now } => {
                let rate = self.monitor.failure_rate().rate();
                for cmd in self.core.plan(*now, self.monitor.alerts(), rate) {
                    self.queue.push(cmd);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lemon_alert(node: u32, raised_days: u64) -> Alert {
        Alert {
            key: AlertKey::LemonSuspect(NodeId::new(node)),
            raised_at: SimTime::from_days(raised_days),
            cleared_at: None,
            value: 4.0,
            threshold: 3.0,
            message: String::new(),
        }
    }

    #[test]
    fn disabled_policy_plans_nothing() {
        let mut core = ControllerCore::new(ControlPolicy::disabled());
        let alerts = vec![lemon_alert(1, 1)];
        assert!(core.plan(SimTime::from_days(2), &alerts, 0.5).is_empty());
    }

    #[test]
    fn quarantine_budget_degrades_to_alert_only() {
        let mut policy = ControlPolicy::rsc_default();
        policy.max_concurrent_quarantines = 2;
        let mut core = ControllerCore::new(policy);
        let alerts: Vec<Alert> = (0..4).map(|n| lemon_alert(n, 1)).collect();
        let cmds = core.plan(SimTime::from_days(2), &alerts, 0.0);
        let quarantines: Vec<&ControlCommand> = cmds
            .iter()
            .filter(|c| matches!(c.verb, ControlVerb::QuarantineNode { .. }))
            .collect();
        assert_eq!(quarantines.len(), 4);
        assert_eq!(quarantines.iter().filter(|c| c.budget_ok).count(), 2);
        assert_eq!(quarantines.iter().filter(|c| !c.budget_ok).count(), 2);
    }

    #[test]
    fn lemon_cooldown_suppresses_repeat_action() {
        let mut core = ControllerCore::new(ControlPolicy::rsc_default());
        let alerts = vec![lemon_alert(3, 1)];
        assert_eq!(core.plan(SimTime::from_days(2), &alerts, 0.0).len(), 1);
        // Same still-active alert a day later: inside the 7-day cooldown.
        assert!(core.plan(SimTime::from_days(3), &alerts, 0.0).is_empty());
        // Past the cooldown the controller may act again.
        assert_eq!(core.plan(SimTime::from_days(10), &alerts, 0.0).len(), 1);
    }

    #[test]
    fn surge_downgrades_quarantine_to_remediation() {
        let mut core = ControllerCore::new(ControlPolicy::rsc_default());
        let alerts = vec![
            lemon_alert(1, 1),
            Alert {
                key: AlertKey::QuarantineSurge,
                raised_at: SimTime::from_days(1),
                cleared_at: None,
                value: 4.0,
                threshold: 3.0,
                message: String::new(),
            },
        ];
        let cmds = core.plan(SimTime::from_days(2), &alerts, 0.0);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(cmds[0].verb, ControlVerb::RemediateNode { .. }));
        assert_eq!(cmds[0].trigger, ControlTrigger::QuarantineSurge);
    }

    #[test]
    fn routing_follows_mttf_alert_with_revert_cooldown() {
        let mut core = ControllerCore::new(ControlPolicy::rsc_default());
        let mut mttf = Alert {
            key: AlertKey::MttfRegression,
            raised_at: SimTime::from_days(1),
            cleared_at: None,
            value: 0.4,
            threshold: 0.5,
            message: String::new(),
        };
        let cmds = core.plan(SimTime::from_days(2), std::slice::from_ref(&mttf), 0.0);
        assert!(matches!(cmds[0].verb, ControlVerb::AdaptiveRouting));
        core.observe_action(&ControlActionEvent {
            at: SimTime::from_days(2),
            kind: ControlActionKind::AdaptiveRouting,
            trigger: ControlTrigger::MttfRegression,
            node: None,
            job: None,
            accepted: true,
            value: 0,
        });
        // Alert clears one day later: still inside the 3-day revert
        // cooldown, so no restore yet.
        mttf.cleared_at = Some(SimTime::from_days(3));
        assert!(core
            .plan(SimTime::from_days(3), std::slice::from_ref(&mttf), 0.0)
            .is_empty());
        let cmds = core.plan(SimTime::from_days(6), std::slice::from_ref(&mttf), 0.0);
        assert!(matches!(cmds[0].verb, ControlVerb::RestoreRouting));
    }

    #[test]
    fn retune_respects_tolerance_band() {
        let mut core = ControllerCore::new(ControlPolicy::rsc_default());
        let cmds = core.plan(SimTime::from_days(2), &[], 6.5e-3);
        let ControlVerb::RetuneCheckpoint { interval } = cmds[0].verb else {
            panic!("expected a retune, got {cmds:?}");
        };
        core.observe_action(&ControlActionEvent {
            at: SimTime::from_days(2),
            kind: ControlActionKind::RetuneCheckpoint,
            trigger: ControlTrigger::Controller,
            node: None,
            job: None,
            accepted: true,
            value: interval.as_secs(),
        });
        // A 10% rate wiggle moves the optimum ~5%: inside the 20%
        // tolerance, so no new command.
        assert!(core
            .plan(SimTime::from_days(3), &[], 6.5e-3 * 1.1)
            .is_empty());
        // A 4x rate jump halves the optimum: well outside.
        let cmds = core.plan(SimTime::from_days(4), &[], 6.5e-3 * 4.0);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].trigger, ControlTrigger::Controller);
    }
}
