//! Cached closed-loop scenario execution.
//!
//! A closed-loop run is parameterized by more than `(config, seed, days)`
//! — the control policy and the monitor configuration shape the telemetry
//! too, so [`ClosedLoopSpec`] carries all five and fingerprints over all
//! of them. Artifacts are namespaced `cl-{fingerprint:016x}.snap` in the
//! same cache directory as open-loop snapshots: the prefix keeps the two
//! artifact families from ever colliding on a shared fingerprint.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rsc_monitor::config::MonitorConfig;
use rsc_sim::config::SimConfig;
use rsc_sim::control::CommandQueue;
use rsc_sim::driver::ClusterSim;
use rsc_sim::runner::{default_cache_dir, ObservedOutcome};
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::{load_snapshot_file, save_snapshot_file, SNAPSHOT_VERSION};
use rsc_telemetry::store::ControlActionKind;
use rsc_telemetry::view::TelemetryView;

use crate::controller::ReliabilityController;
use crate::policy::ControlPolicy;

/// One closed-loop scenario: a simulation plus the controller watching
/// and actuating it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopSpec {
    /// Scenario configuration.
    pub config: SimConfig,
    /// RNG seed for the deterministic simulation.
    pub seed: u64,
    /// Horizon in days.
    pub days: u64,
    /// The controller's mitigation policy.
    pub policy: ControlPolicy,
    /// The monitor configuration the controller watches through.
    pub monitor: MonitorConfig,
}

impl ClosedLoopSpec {
    /// A spec with the default (enabled) monitor configuration.
    pub fn new(config: SimConfig, seed: u64, days: u64, policy: ControlPolicy) -> Self {
        ClosedLoopSpec {
            config,
            seed,
            days,
            policy,
            monitor: MonitorConfig::rsc_default(),
        }
    }

    /// Stable cache fingerprint: FNV-1a 64 over the `Debug` renderings of
    /// the simulation config, control policy, and monitor config, plus
    /// seed, horizon, and snapshot format version. Any parameter change —
    /// including a policy knob — yields a cache miss, never a stale hit.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(format!("{:?}", self.config).as_bytes());
        eat(format!("{:?}", self.policy).as_bytes());
        eat(format!("{:?}", self.monitor).as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&self.days.to_le_bytes());
        eat(&SNAPSHOT_VERSION.to_le_bytes());
        h
    }

    /// The namespaced cache file name for this spec.
    pub fn cache_file_name(&self) -> String {
        format!("cl-{:016x}.snap", self.fingerprint())
    }

    /// Runs the closed loop synchronously (no cache) and seals the
    /// result: controller attached as an observer, its command queue
    /// wired into the driver.
    pub fn simulate(&self) -> TelemetryView {
        let queue = CommandQueue::new();
        let mut sim = ClusterSim::new(self.config.clone(), self.seed);
        sim.set_command_queue(queue.clone());
        sim.attach_observer(Box::new(ReliabilityController::new(
            self.policy.clone(),
            self.monitor.clone(),
            queue,
        )));
        sim.run(SimDuration::from_days(self.days));
        sim.into_telemetry().seal()
    }
}

/// Executes [`ClosedLoopSpec`]s against the namespaced artifact cache.
#[derive(Debug, Clone)]
pub struct ClosedLoopRunner {
    cache_dir: Option<PathBuf>,
}

impl ClosedLoopRunner {
    /// A runner caching under the workspace default telemetry directory
    /// (shared with [`rsc_sim::runner::ScenarioRunner`]; the `cl-` prefix
    /// keeps the artifact families separate).
    pub fn new() -> Self {
        ClosedLoopRunner {
            cache_dir: Some(default_cache_dir()),
        }
    }

    /// A runner that always simulates.
    pub fn without_cache() -> Self {
        ClosedLoopRunner { cache_dir: None }
    }

    /// Replaces the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The artifact cache directory, if caching is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Executes one spec: loads the sealed view from cache when the
    /// artifact exists (chain-verified by the snapshot codec), simulates
    /// and writes it otherwise. Either path returns identical bytes — the
    /// replay test pins the recorded action log bitwise.
    pub fn run_one(&self, spec: &ClosedLoopSpec) -> ClosedLoopRun {
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(spec.cache_file_name());
            if let Ok(view) = load_snapshot_file(&path) {
                return ClosedLoopRun {
                    view: Arc::new(view),
                    outcome: ObservedOutcome::CachedSkipped,
                };
            }
            let view = spec.simulate();
            // Best-effort, like the open-loop cache: a failed write only
            // costs a rebuild next run.
            let _ = save_snapshot_file(&path, &view);
            return ClosedLoopRun {
                view: Arc::new(view),
                outcome: ObservedOutcome::Live,
            };
        }
        ClosedLoopRun {
            view: Arc::new(spec.simulate()),
            outcome: ObservedOutcome::Live,
        }
    }
}

impl Default for ClosedLoopRunner {
    fn default() -> Self {
        ClosedLoopRunner::new()
    }
}

/// One executed closed-loop scenario.
#[derive(Debug)]
pub struct ClosedLoopRun {
    /// The sealed telemetry, control actions included.
    pub view: Arc<TelemetryView>,
    /// Whether the scenario simulated live or loaded from cache.
    pub outcome: ObservedOutcome,
}

impl ClosedLoopRun {
    /// The checkpoint interval in force at the end of the run: the last
    /// accepted retune, or `fallback` if the controller never retuned.
    pub fn effective_checkpoint_interval(&self, fallback: SimDuration) -> SimDuration {
        self.view
            .control_actions()
            .iter()
            .rev()
            .find(|a| a.kind == ControlActionKind::RetuneCheckpoint && a.accepted)
            .map(|a| SimDuration::from_secs(a.value))
            .unwrap_or(fallback)
    }
}
