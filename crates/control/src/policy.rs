//! What the controller is allowed to do, and how aggressively.

use rsc_health::lifecycle::ReleasePolicy;
use rsc_sim_core::time::SimDuration;
use rsc_storage::checkpoint::CheckpointSpec;
use rsc_storage::tier::{StorageTier, TierSpec};

/// The controller's mitigation policy: which actuators are armed, their
/// budgets, and their hysteresis gates.
///
/// Every actuation the controller plans is bounded by something in this
/// struct — the fleet quarantine budget, a per-node action cooldown, a
/// routing revert cooldown, or a relative-change tolerance — so an
/// adversarial alert stream cannot make the control plane thrash
/// (`tests/properties.rs` proves this for arbitrary alert sequences).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPolicy {
    /// Master switch. Disabled, the controller observes and plans
    /// nothing: a run with a disabled-policy controller attached is
    /// byte-identical to an open-loop run.
    pub enabled: bool,
    /// Fleet budget: at most this many controller-initiated quarantines
    /// may be in force at once. When the budget is exhausted further
    /// quarantine wishes degrade gracefully to alert-only — recorded with
    /// `accepted == false`, actuating nothing.
    pub max_concurrent_quarantines: u32,
    /// Per-node hysteresis: after acting on a `LemonSuspect` alert for a
    /// node, ignore that node's lemon alerts for this long.
    pub lemon_action_cooldown: SimDuration,
    /// Controlled-release schedule attached to controller quarantines.
    /// `None` makes them absorbing, like an operator write-off.
    pub release: Option<ReleasePolicy>,
    /// Arms the fabric actuator: flip routing static→adaptive while an
    /// `MttfRegression` alert is active.
    pub adaptive_routing: bool,
    /// Minimum time after a routing change before the controller restores
    /// the baseline static policy on alert-clear.
    pub routing_revert_cooldown: SimDuration,
    /// Arms the checkpoint actuator: re-solve the checkpoint cadence
    /// online from the streaming failure rate (Young/Daly optimum).
    pub ckpt_retune: bool,
    /// Relative-change hysteresis for retunes: a new optimum within this
    /// fraction of the interval currently in force is not worth a
    /// command.
    pub ckpt_retune_tolerance: f64,
    /// The checkpoint workload the retune optimizes for.
    pub ckpt_spec: CheckpointSpec,
    /// The storage tier absorbing those checkpoints; bounds the retuned
    /// interval below via `min_sustainable_interval`.
    pub tier: TierSpec,
    /// Node count of the reference job the retune protects (the MTBF in
    /// the Young/Daly solve scales with job footprint).
    pub ref_nodes: u32,
}

impl ControlPolicy {
    /// Every actuator armed, at the defaults the closed-loop experiments
    /// pin: a 2-node quarantine budget (a quarantined node is ~pure
    /// capacity loss on a saturated fleet, so the budget stays tight),
    /// 7-day lemon cooldown, released quarantines after 3 clean 2-day
    /// windows, 3-day routing revert cooldown, and a 20% retune tolerance
    /// around a 70B-parameter reference job writing to the object store.
    pub fn rsc_default() -> Self {
        ControlPolicy {
            enabled: true,
            max_concurrent_quarantines: 2,
            lemon_action_cooldown: SimDuration::from_days(7),
            release: Some(ReleasePolicy::rsc_default()),
            adaptive_routing: true,
            routing_revert_cooldown: SimDuration::from_days(3),
            ckpt_retune: true,
            ckpt_retune_tolerance: 0.2,
            ckpt_spec: CheckpointSpec::for_model(70.0, SimDuration::from_hours(1), 8),
            tier: TierSpec::rsc_default(StorageTier::ObjectStore),
            ref_nodes: 128,
        }
    }

    /// A controller that never acts. Attaching one leaves a run
    /// byte-identical to an open-loop run (`tests/byte_identity.rs`).
    pub fn disabled() -> Self {
        ControlPolicy {
            enabled: false,
            ..ControlPolicy::rsc_default()
        }
    }
}

impl Default for ControlPolicy {
    fn default() -> Self {
        ControlPolicy::rsc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let p = ControlPolicy::rsc_default();
        assert!(p.enabled);
        assert!(p.max_concurrent_quarantines > 0);
        assert!(p.lemon_action_cooldown > SimDuration::ZERO);
        assert!(p.ckpt_retune_tolerance > 0.0);
        assert!(!ControlPolicy::disabled().enabled);
    }
}
