//! `rsc-control`: the closed-loop reliability control plane.
//!
//! The monitor (`rsc-monitor`) turns the simulator's event stream into
//! typed alerts; this crate closes the loop and *acts on them mid-run*. A
//! [`ReliabilityController`] attaches to the [`rsc_sim::bus`] like any
//! observer, wraps a [`rsc_monitor::ReliabilityMonitor`] for its eyes,
//! and pushes [`rsc_sim::control::ControlCommand`]s into the driver's
//! command queue — which the driver drains at a fixed point of its event
//! loop, in push order, at the current simulated time. Closed-loop runs
//! are therefore exactly as deterministic and replayable as open-loop
//! ones.
//!
//! Three actuators, each budgeted and hysteresis-gated by
//! [`ControlPolicy`]:
//!
//! - **lemon mitigation** — an active `LemonSuspect` alert earns its node
//!   a preemptive quarantine (releasable after clean observation windows,
//!   see [`rsc_health::lifecycle::ReleasePolicy`]), downgraded to a
//!   remediation visit while a `QuarantineSurge` alert is active, and
//!   degraded to a recorded-but-rejected action when the fleet quarantine
//!   budget is exhausted;
//! - **fabric routing** — an active `MttfRegression` alert flips routing
//!   static→adaptive; the baseline policy is restored on alert-clear
//!   after a revert cooldown;
//! - **checkpoint cadence** — the Young/Daly optimal interval is re-solved
//!   online from the monitor's streaming failure rate and pushed to newly
//!   submitted jobs, clamped below by what the storage tier sustains.
//!
//! Every action — accepted or budget-rejected — is recorded as a typed
//! row in the hash-chained telemetry log, so the audit trail of *why* the
//! run diverged from its open-loop twin is part of the sealed artifact.
//!
//! A controller with [`ControlPolicy::disabled`] plans nothing, and the
//! driver without a queue drains nothing: both configurations leave
//! telemetry byte-identical to builds that predate the control plane
//! (`tests/byte_identity.rs`).

#![warn(missing_docs)]

pub mod controller;
pub mod policy;
pub mod runner;

pub use controller::{ControllerCore, ReliabilityController};
pub use policy::ControlPolicy;
pub use runner::{ClosedLoopRun, ClosedLoopRunner, ClosedLoopSpec};
