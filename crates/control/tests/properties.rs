//! Property tests for the planning core: under arbitrary (adversarial)
//! alert sequences, interleaved with arbitrary driver verdicts and
//! quarantine releases, every actuation respects its budget and its
//! hysteresis gate.
//!
//! Checked invariants, per schedule:
//!
//! 1. **quarantine budget** — a plan never emits more `budget_ok`
//!    quarantine commands than the fleet budget has headroom for, counting
//!    quarantines already in force;
//! 2. **lemon cooldown** — consecutive lemon-triggered commands for one
//!    node are at least the per-node cooldown apart;
//! 3. **routing hysteresis** — `AdaptiveRouting` only when static,
//!    `RestoreRouting` only when adaptive and the revert cooldown has
//!    elapsed since the last routing change;
//! 4. **retune tolerance** — a retune is only planned when the new
//!    optimum differs from the interval in force by more than the
//!    relative tolerance.
//!
//! Mirrored as a plain deterministic sweep for minimal environments where
//! the proptest harness is stubbed out.

use proptest::prelude::*;

use rsc_cluster::ids::NodeId;
use rsc_control::{ControlPolicy, ControllerCore};
use rsc_monitor::alerts::{Alert, AlertKey};
use rsc_sim::control::ControlVerb;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{ControlActionEvent, ControlActionKind, ControlTrigger};

/// One adversarial step: time advance in hours, bitmask of active lemon
/// nodes, MttfRegression active, QuarantineSurge active, failure-rate
/// pick, driver-rejects-quarantine roll, release-a-node roll.
type Step = (u32, u8, bool, bool, u8, bool, bool);

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn active_alert(key: AlertKey, t: SimTime) -> Alert {
    Alert {
        key,
        raised_at: t,
        cleared_at: None,
        value: 1.0,
        threshold: 1.0,
        message: String::new(),
    }
}

fn record(
    kind: ControlActionKind,
    node: Option<NodeId>,
    at: SimTime,
    value: u64,
) -> ControlActionEvent {
    ControlActionEvent {
        at,
        kind,
        trigger: ControlTrigger::Controller,
        node,
        job: None,
        accepted: true,
        value,
    }
}

fn run_schedule(budget: u32, cooldown_days: u64, revert_days: u64, steps: &[Step]) {
    let mut policy = ControlPolicy::rsc_default();
    policy.max_concurrent_quarantines = budget;
    policy.lemon_action_cooldown = SimDuration::from_days(cooldown_days);
    policy.routing_revert_cooldown = SimDuration::from_days(revert_days);
    let tolerance = policy.ckpt_retune_tolerance;
    let mut core = ControllerCore::new(policy);

    // Plant mirrors: what the "driver" has accepted.
    let mut in_force: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
    let mut routing_adaptive = false;
    let mut routing_changed_at: Option<SimTime> = None;
    let mut interval_in_force: Option<u64> = None;
    let mut last_lemon_cmd: std::collections::BTreeMap<NodeId, SimTime> =
        std::collections::BTreeMap::new();

    let mut t = SimTime::ZERO;
    for &(advance_h, lemon_mask, mttf, surge, rate_pick, reject_quarantine, release_one) in steps {
        t += SimDuration::from_hours(1 + advance_h as u64 % (10 * 24));

        let mut alerts: Vec<Alert> = Vec::new();
        for bit in 0..6u32 {
            if lemon_mask & (1 << bit) != 0 {
                alerts.push(active_alert(AlertKey::LemonSuspect(NodeId::new(bit)), t));
            }
        }
        if mttf {
            alerts.push(active_alert(AlertKey::MttfRegression, t));
        }
        if surge {
            alerts.push(active_alert(AlertKey::QuarantineSurge, t));
        }
        let rate = rate_pick as f64 * 2e-3;

        let cmds = core.plan(t, &alerts, rate);

        let mut headroom = budget.saturating_sub(in_force.len() as u32);
        let mut routing_cmds = 0;
        let mut retune_cmds = 0;
        for cmd in &cmds {
            match cmd.verb {
                ControlVerb::QuarantineNode { node, .. } => {
                    if cmd.budget_ok {
                        assert!(
                            headroom > 0,
                            "budget_ok quarantine of {node} with {} already in force (budget {budget})",
                            in_force.len()
                        );
                        headroom -= 1;
                    }
                    check_lemon_cooldown(&last_lemon_cmd, node, t, cooldown_days);
                    last_lemon_cmd.insert(node, t);
                }
                ControlVerb::RemediateNode { node } => {
                    assert!(cmd.budget_ok, "remediation visits are not budgeted");
                    check_lemon_cooldown(&last_lemon_cmd, node, t, cooldown_days);
                    last_lemon_cmd.insert(node, t);
                }
                ControlVerb::AdaptiveRouting => {
                    routing_cmds += 1;
                    assert!(
                        !routing_adaptive,
                        "adaptive commanded while already adaptive"
                    );
                }
                ControlVerb::RestoreRouting => {
                    routing_cmds += 1;
                    assert!(routing_adaptive, "restore commanded while already static");
                    if let Some(prev) = routing_changed_at {
                        assert!(
                            t.saturating_since(prev) >= SimDuration::from_days(revert_days),
                            "restore at {t:?} inside the revert cooldown after {prev:?}"
                        );
                    }
                }
                ControlVerb::RetuneCheckpoint { interval } => {
                    retune_cmds += 1;
                    if let Some(cur) = interval_in_force {
                        let cur = cur as f64;
                        assert!(
                            (interval.as_secs() as f64 - cur).abs() > tolerance * cur,
                            "retune to {interval:?} inside the {tolerance} band around {cur}s"
                        );
                    }
                }
            }
        }
        assert!(routing_cmds <= 1, "more than one routing command per tick");
        assert!(retune_cmds <= 1, "more than one retune per tick");

        // Driver verdicts: accept budget_ok commands, except quarantines
        // when the adversary says the node was already in remediation.
        for cmd in &cmds {
            if !cmd.budget_ok {
                continue;
            }
            match cmd.verb {
                ControlVerb::QuarantineNode { node, .. } => {
                    if !reject_quarantine {
                        in_force.insert(node);
                        core.observe_action(&record(
                            ControlActionKind::QuarantineNode,
                            Some(node),
                            t,
                            0,
                        ));
                    }
                }
                ControlVerb::RemediateNode { .. } => {}
                ControlVerb::AdaptiveRouting => {
                    routing_adaptive = true;
                    routing_changed_at = Some(t);
                    core.observe_action(&record(ControlActionKind::AdaptiveRouting, None, t, 0));
                }
                ControlVerb::RestoreRouting => {
                    routing_adaptive = false;
                    routing_changed_at = Some(t);
                    core.observe_action(&record(ControlActionKind::RestoreRouting, None, t, 0));
                }
                ControlVerb::RetuneCheckpoint { interval } => {
                    interval_in_force = Some(interval.as_secs());
                    core.observe_action(&record(
                        ControlActionKind::RetuneCheckpoint,
                        None,
                        t,
                        interval.as_secs(),
                    ));
                }
            }
        }

        // Adversarial release: the plant frees a quarantined node.
        if release_one {
            if let Some(&node) = in_force.iter().next() {
                in_force.remove(&node);
                core.observe_action(&record(ControlActionKind::ReleaseNode, Some(node), t, 0));
            }
        }

        assert_eq!(core.active_quarantines(), in_force.len());
        assert!(
            in_force.len() as u32 <= budget,
            "budget exceeded in the plant"
        );
    }
}

fn check_lemon_cooldown(
    last: &std::collections::BTreeMap<NodeId, SimTime>,
    node: NodeId,
    t: SimTime,
    cooldown_days: u64,
) {
    if let Some(&prev) = last.get(&node) {
        assert!(
            t.saturating_since(prev) >= SimDuration::from_days(cooldown_days),
            "lemon action on {node} at {t:?} inside the cooldown after {prev:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_actuation_is_budgeted_and_gated(
        budget in 1u32..5,
        cooldown_days in 1u64..10,
        revert_days in 1u64..6,
        steps in proptest::collection::vec(
            (0u32..400, 0u8..64, any::<bool>(), any::<bool>(), 0u8..8, any::<bool>(), any::<bool>()),
            0..120,
        ),
    ) {
        run_schedule(budget, cooldown_days, revert_days, &steps);
    }
}

#[test]
fn mirror_actuation_is_budgeted_and_gated() {
    let mut rng = XorShift(0x5eed_c0de_ac7e_0001);
    for _ in 0..48 {
        let budget = 1 + rng.below(4) as u32;
        let cooldown_days = 1 + rng.below(9);
        let revert_days = 1 + rng.below(5);
        let steps: Vec<Step> = (0..rng.below(120))
            .map(|_| {
                (
                    rng.below(400) as u32,
                    rng.below(64) as u8,
                    rng.below(2) == 0,
                    rng.below(2) == 0,
                    rng.below(8) as u8,
                    rng.below(2) == 0,
                    rng.below(2) == 0,
                )
            })
            .collect();
        run_schedule(budget, cooldown_days, revert_days, &steps);
    }
}
