//! The closed-loop cache contract: a cache hit reproduces the live run's
//! control-action log exactly — bitwise through the snapshot codec — and
//! open- and closed-loop artifacts never collide in the shared cache
//! directory.

use rsc_control::runner::{ClosedLoopRunner, ClosedLoopSpec};
use rsc_control::ControlPolicy;
use rsc_sim::config::SimConfig;
use rsc_sim::runner::ObservedOutcome;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::write_snapshot;

fn lemon_heavy_spec(seed: u64) -> ClosedLoopSpec {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 2;
    config.lemon_extra_rate_median *= 4.0;
    ClosedLoopSpec::new(config, seed, 30, ControlPolicy::rsc_default())
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rsc-control-{tag}-{}", std::process::id()))
}

#[test]
fn cache_hit_reproduces_live_action_log_bitwise() {
    let dir = temp_cache("replay");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = ClosedLoopRunner::without_cache().with_cache_dir(&dir);
    let spec = lemon_heavy_spec(11);

    let cold = runner.run_one(&spec);
    assert_eq!(cold.outcome, ObservedOutcome::Live);
    assert!(
        !cold.view.control_actions().is_empty(),
        "scenario must exercise the controller for the replay check to mean anything"
    );

    let warm = runner.run_one(&spec);
    assert_eq!(warm.outcome, ObservedOutcome::CachedSkipped);
    assert_eq!(
        cold.view.control_actions(),
        warm.view.control_actions(),
        "cached action log must equal the live one"
    );
    let mut cold_bytes = Vec::new();
    write_snapshot(&mut cold_bytes, &cold.view).expect("encode live view");
    let mut warm_bytes = Vec::new();
    write_snapshot(&mut warm_bytes, &warm.view).expect("encode cached view");
    assert_eq!(cold_bytes, warm_bytes, "cache round-trip must be bitwise");
    assert_eq!(
        cold.effective_checkpoint_interval(SimDuration::from_hours(1)),
        warm.effective_checkpoint_interval(SimDuration::from_hours(1)),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifacts_are_namespaced_and_policy_sensitive() {
    let spec = lemon_heavy_spec(7);
    assert!(spec.cache_file_name().starts_with("cl-"));

    // Same (config, seed, days), different policy: different artifact.
    let mut other = spec.clone();
    other.policy.max_concurrent_quarantines += 1;
    assert_ne!(spec.fingerprint(), other.fingerprint());

    // And the open-loop ScenarioSpec artifact name for the same scenario
    // never equals the closed-loop one, whatever the fingerprints do.
    let open = rsc_sim::runner::ScenarioSpec::new(spec.config.clone(), spec.seed, spec.days);
    assert_ne!(open.cache_file_name(), spec.cache_file_name());
}
