//! The control plane's determinism contract: attaching the machinery
//! without letting it act changes nothing.
//!
//! Two lockstep comparisons against a controller-free run of the same
//! `(config, seed, days)`:
//!
//! 1. a driver with a command queue attached but no producer;
//! 2. the full closed loop with [`ControlPolicy::disabled`] — monitor
//!    watching, planner consulted every tick, zero commands.
//!
//! Both must seal telemetry whose snapshot encoding is **bitwise equal**
//! to the plain run's, so pre-control-plane artifacts stay valid and the
//! closed-loop ablation isolates policy effects from plumbing effects.

use rsc_control::runner::ClosedLoopSpec;
use rsc_control::ControlPolicy;
use rsc_sim::config::SimConfig;
use rsc_sim::control::CommandQueue;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::write_snapshot;
use rsc_telemetry::view::TelemetryView;

const DAYS: u64 = 6;
const SEED: u64 = 11;

fn snapshot_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view).expect("in-memory snapshot write");
    buf
}

fn plain_run() -> Vec<u8> {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), SEED);
    sim.run(SimDuration::from_days(DAYS));
    snapshot_bytes(&sim.into_telemetry().seal())
}

#[test]
fn silent_queue_is_byte_identical() {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), SEED);
    sim.set_command_queue(CommandQueue::new());
    sim.run(SimDuration::from_days(DAYS));
    let with_queue = snapshot_bytes(&sim.into_telemetry().seal());
    assert_eq!(
        with_queue,
        plain_run(),
        "an idle command queue must not perturb the run"
    );
}

#[test]
fn disabled_policy_controller_is_byte_identical() {
    let spec = ClosedLoopSpec::new(
        SimConfig::small_test_cluster(),
        SEED,
        DAYS,
        ControlPolicy::disabled(),
    );
    let view = spec.simulate();
    assert!(view.control_actions().is_empty());
    assert_eq!(
        snapshot_bytes(&view),
        plain_run(),
        "a disabled-policy controller must not perturb the run"
    );
}

#[test]
fn enabled_policy_diverges_and_logs_actions() {
    // The counterpoint keeping the two tests above honest: with the
    // default policy on a lemon-heavy scenario the loop must actually
    // close — actions recorded, telemetry diverged.
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = (config.lemon_count.max(2)).min(config.cluster.num_nodes() as usize);
    config.lemon_extra_rate_median *= 4.0;
    let open = ClosedLoopSpec::new(config.clone(), SEED, 30, ControlPolicy::disabled()).simulate();
    let closed = ClosedLoopSpec::new(config, SEED, 30, ControlPolicy::rsc_default()).simulate();
    assert!(
        !closed.control_actions().is_empty(),
        "closed loop never actuated"
    );
    assert_ne!(snapshot_bytes(&open), snapshot_bytes(&closed));
}
