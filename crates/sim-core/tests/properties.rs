//! Property-based tests for the simulation primitives.

use proptest::prelude::*;
use rsc_sim_core::event::EventQueue;
use rsc_sim_core::rng::{SimRng, WeightedIndex};
use rsc_sim_core::special;
use rsc_sim_core::stats::{quantile_sorted, Ecdf, StreamingStats};
use rsc_sim_core::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn time_add_sub_roundtrip(base in 0u64..1_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_secs(base);
        let d = SimDuration::from_secs(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_float_roundtrip(secs in 0u64..1_000_000_000u64) {
        let d = SimDuration::from_secs(secs);
        let back = SimDuration::from_days_f64(d.as_days());
        // Round-tripping through days loses at most one second to rounding.
        let diff = back.as_secs().abs_diff(d.as_secs());
        prop_assert!(diff <= 1, "diff={diff}");
    }

    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn queue_same_time_is_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(5), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn streaming_stats_matches_batch(xs in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let s: StreamingStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    #[test]
    fn merge_is_equivalent_to_concat(
        a in prop::collection::vec(-1e3f64..1e3, 1..50),
        b in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut sa: StreamingStats = a.iter().copied().collect();
        let sb: StreamingStats = b.iter().copied().collect();
        let combined: StreamingStats = a.iter().chain(b.iter()).copied().collect();
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), combined.count());
        prop_assert!((sa.mean() - combined.mean()).abs() < 1e-9);
        prop_assert!((sa.variance() - combined.variance()).abs() < 1e-7);
    }

    #[test]
    fn ecdf_is_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let cdf = Ecdf::from_samples(xs.clone());
        let mut probes: Vec<f64> = xs;
        probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &p in &probes {
            let v = cdf.eval(p);
            prop_assert!(v >= last);
            prop_assert!((0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn quantiles_are_monotone(mut xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile_sorted(&xs, i as f64 / 10.0).unwrap();
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn gamma_quantile_is_monotone(shape in 0.2f64..50.0, scale in 0.01f64..100.0) {
        let mut last = 0.0;
        for i in 1..10 {
            let q = special::gamma_quantile(i as f64 / 10.0, shape, scale);
            prop_assert!(q >= last, "shape={shape} scale={scale}");
            last = q;
        }
    }

    #[test]
    fn exponential_is_positive(seed in 0u64..1000, rate in 1e-6f64..1e3) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.exponential(rate) >= 0.0);
        }
    }

    #[test]
    fn weighted_index_in_bounds(
        seed in 0u64..1000,
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let dist = WeightedIndex::new(weights.iter().copied()).unwrap();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let idx = dist.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight index {idx}");
        }
    }

    #[test]
    fn rng_same_seed_same_stream(seed in 0u64..u64::MAX) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn tiered_queue_lockstep_with_reference_heap(
        // Offsets relative to the running clock; `None` is a pop, `Some`
        // spans ties, near-band, and beyond-wheel-horizon schedules via
        // the band selector.
        ops in prop::collection::vec(
            prop::option::of((0u8..4, 0u64..86_400)),
            1..400,
        )
    ) {
        let mut tiered = EventQueue::new();
        let mut reference = EventQueue::new_reference_heap();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Some((band, raw)) => {
                    let offset = match band {
                        0 => 0,                 // tie with `now`
                        1 => raw % 600,         // near band, inside the wheel
                        2 => raw % (600 * 64),  // mid band
                        _ => 40 * 86_400 + raw, // beyond the wheel horizon
                    };
                    let at = SimTime::from_secs(tiered.now().as_secs() + offset);
                    tiered.schedule(at, next_id);
                    reference.schedule(at, next_id);
                    next_id += 1;
                }
                None => prop_assert_eq!(tiered.pop(), reference.pop()),
            }
            prop_assert_eq!(tiered.len(), reference.len());
            prop_assert_eq!(tiered.peek_time(), reference.peek_time());
        }
        loop {
            let (a, b) = (tiered.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sparse_wheel_recycles_slots_in_lockstep(
        // Heavier churn than the plain lockstep test: `pop_until` drains
        // whole buckets back to the freelist, later schedules must reattach
        // recycled heaps, and an occasional `clear` releases every slot at
        // once. Pop order must stay bitwise equal to the reference heap
        // throughout.
        ops in prop::collection::vec((0u8..8, 0u64..86_400), 1..300)
    ) {
        let mut sparse = EventQueue::new();
        let mut reference = EventQueue::new_reference_heap();
        let mut next_id = 0u64;
        for (kind, raw) in ops {
            match kind {
                // Bursts into few buckets, so drains fully empty them.
                0..=3 => {
                    let offset = match kind {
                        0 => 0,
                        1 => raw % 128,          // same bucket as `now`
                        2 => raw % 4_096,       // a handful of buckets
                        _ => 30 * 86_400 + raw, // overflow tier
                    };
                    let at = SimTime::from_secs(sparse.now().as_secs() + offset);
                    sparse.schedule(at, next_id);
                    reference.schedule(at, next_id);
                    next_id += 1;
                }
                4 | 5 => prop_assert_eq!(sparse.pop(), reference.pop()),
                6 => {
                    // Drain everything up to a horizon: empties buckets and
                    // returns their heaps to the freelist.
                    let limit = SimTime::from_secs(sparse.now().as_secs() + raw % 8_192);
                    loop {
                        let (a, b) = (sparse.pop_until(limit), reference.pop_until(limit));
                        prop_assert_eq!(&a, &b);
                        if a.is_none() {
                            break;
                        }
                    }
                }
                _ => {
                    if raw % 16 == 0 {
                        sparse.clear();
                        reference.clear();
                    }
                }
            }
            prop_assert_eq!(sparse.len(), reference.len());
            prop_assert_eq!(sparse.peek_time(), reference.peek_time());
            prop_assert_eq!(sparse.now(), reference.now());
        }
        loop {
            let (a, b) = (sparse.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
