#![warn(missing_docs)]

//! Discrete-event simulation foundation for the `rsc-reliability` workspace.
//!
//! This crate provides the deterministic building blocks every other crate
//! rests on:
//!
//! - [`time`] — integer-second [`time::SimTime`] / [`time::SimDuration`]
//!   newtypes with saturating arithmetic;
//! - [`event`] — a future-event queue with deterministic tie-breaking;
//! - [`bitset`] — a hierarchical bitset backing the queue's sparse slot
//!   index and the scheduler's hot node indexes;
//! - [`rng`] — a fork-able seeded RNG plus the distribution samplers used by
//!   the failure and workload models;
//! - [`stats`] — streaming statistics, histograms, and empirical CDFs;
//! - [`special`] — log-gamma, incomplete gamma, and normal/Gamma
//!   CDF/quantile functions backing the confidence-interval math.
//!
//! # Example
//!
//! A minimal self-stepping simulation:
//!
//! ```
//! use rsc_sim_core::event::EventQueue;
//! use rsc_sim_core::rng::SimRng;
//! use rsc_sim_core::time::{SimDuration, SimTime};
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO, ());
//! let mut arrivals = 0;
//! while let Some((now, ())) = queue.pop_until(SimTime::from_hours(1)) {
//!     arrivals += 1;
//!     let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / 60.0));
//!     queue.schedule(now + gap, ());
//! }
//! assert!(arrivals > 0);
//! ```

pub mod bitset;
pub mod event;
pub mod rng;
pub mod special;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
