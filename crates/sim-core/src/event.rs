//! Deterministic future-event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`]. Events scheduled
//! for the same instant pop in insertion order, which makes runs fully
//! reproducible regardless of payload type or hash ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A payload scheduled at a time, with a monotone sequence number used to
/// break ties deterministically.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list for discrete-event simulation.
///
/// ```
/// use rsc_sim_core::event::EventQueue;
/// use rsc_sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// q.schedule(SimTime::from_secs(10), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]); // same-time events pop in insert order
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation clock: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pops the earliest event only if it is at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Drops all pending events without changing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("now", &self.now)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(
            q.pop_until(SimTime::from_secs(15)),
            Some((SimTime::from_secs(10), "a"))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn million_same_timestamp_events_keep_insertion_order() {
        // The hot-path guarantee the whole simulator's determinism rests
        // on: a deep burst of simultaneous events drains in exactly the
        // order it was scheduled, at heap scale (sift-down paths several
        // levels deep), not just for toy sizes.
        const N: u64 = 1_000_000;
        let t = SimTime::from_secs(99);
        let mut q = EventQueue::new();
        // A later event scheduled first must still pop last.
        q.schedule(SimTime::from_secs(100), u64::MAX);
        for i in 0..N {
            q.schedule(t, i);
        }
        assert_eq!(q.len() as u64, N + 1);
        for i in 0..N {
            let (at, e) = q.pop().expect("burst event");
            assert_eq!(at, t);
            assert_eq!(e, i, "insertion order violated at element {i}");
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), u64::MAX)));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_bursts_drain_by_time_then_insertion() {
        // Two timestamps interleaved during scheduling still drain as two
        // clean insertion-ordered runs.
        let (t1, t2) = (SimTime::from_secs(5), SimTime::from_secs(6));
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(if i % 2 == 0 { t1 } else { t2 }, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expect: Vec<u32> = (0..10_000)
            .filter(|i| i % 2 == 0)
            .chain((0..10_000).filter(|i| i % 2 == 1))
            .collect();
        assert_eq!(drained, expect);
    }

    #[test]
    fn pop_until_boundary_is_inclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "exact");
        // The limit is inclusive: an event exactly at the limit pops.
        assert_eq!(
            q.pop_until(SimTime::from_secs(10)),
            Some((SimTime::from_secs(10), "exact"))
        );
        // An event one tick past the limit stays queued...
        q.schedule(SimTime::from_secs(20), "later");
        assert_eq!(q.pop_until(SimTime::from_secs(19)), None);
        // ...and the refusal leaves the clock untouched.
        assert_eq!(q.now(), SimTime::from_secs(10));
        // An empty queue refuses politely at any limit.
        q.pop();
        assert_eq!(q.pop_until(SimTime::MAX), None);
    }

    #[test]
    fn pop_until_drains_ties_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(SimTime::from_secs(7), i);
        }
        q.schedule(SimTime::from_secs(8), 999);
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop_until(SimTime::from_secs(7)) {
            got.push(e);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(5));
    }
}
