//! Deterministic future-event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`]. Events scheduled
//! for the same instant pop in insertion order, which makes runs fully
//! reproducible regardless of payload type or hash ordering.
//!
//! # Tiered backend
//!
//! The default backend is a calendar/timer-wheel hybrid sized for the
//! simulator's hot path: a **near band** of `2^13` time buckets, each
//! spanning `2^7` seconds (a ~12-day window), plus a binary-heap
//! **overflow** tier for events scheduled beyond the window. Each bucket is
//! its own small `(time, seq)`-ordered heap, so a push costs `O(log b)` in
//! the *bucket* population `b` (typically tens of events) instead of
//! `O(log n)` in the whole pending set, and the earliest bucket is found
//! through a hierarchical occupancy bitset. Events land in the overflow heap
//! only when scheduled further out than the window and migrate into the
//! wheel in amortized batches when the near band drains past them — each
//! event migrates at most once.
//!
//! The tiered backend preserves the *exact* `(time, seq)` pop order of a
//! single binary heap — not just "some valid order" — so a simulation's
//! sealed telemetry is byte-identical whichever backend runs it. The
//! retained single-heap backend ([`EventQueue::new_reference_heap`]) exists
//! to prove that: lockstep tests drive both on adversarial schedules and
//! demand identical pops.
//!
//! # Sparse slot storage
//!
//! Bucket heaps are materialized lazily: a slot table maps each of the 8192
//! wheel positions to a pooled heap only while that bucket holds events, and
//! a freelist recycles drained heaps (capacity intact) instead of leaving one
//! allocation parked per slot. Occupancy lives in a [`crate::bitset::HierBitSet`],
//! so finding the earliest non-empty bucket probes three summary levels
//! instead of scanning a 128-word bitmap — the cost of a peek/pop follows the
//! number of *occupied* buckets, not the wheel size.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bitset::HierBitSet;
use crate::time::SimTime;

/// Near-band bucket granularity: `2^7` = 128 seconds per bucket.
const GRANULARITY_BITS: u64 = 7;
/// Near-band size: `2^13` = 8192 buckets, a ~12.1-day window.
const WHEEL_BITS: u64 = 13;
const WHEEL_SLOTS: u64 = 1 << WHEEL_BITS;
const SLOT_MASK: u64 = WHEEL_SLOTS - 1;
/// Slot-table sentinel: this wheel position owns no pooled heap.
const NO_HEAP: u32 = u32::MAX;

/// A payload scheduled at a time, with a monotone sequence number used to
/// break ties deterministically.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The timer-wheel-plus-overflow store behind the default backend.
///
/// Invariants:
///
/// - every near-band event's slot lies in `[base_slot, base_slot + WHEEL_SLOTS)`;
/// - `base_slot <= slot(now)` at all times, so any future `schedule` maps
///   into or beyond the current window (never below it, which would alias);
/// - `base_slot` only advances, and only while the near band is empty;
/// - `slots[i] != NO_HEAP` ⇔ `occupied.contains(i)` ⇔ `pool[slots[i]]` is
///   non-empty — a wheel position owns a pooled heap exactly while it holds
///   events.
struct Wheel<E> {
    /// Wheel position → pool index of its bucket heap, or [`NO_HEAP`].
    slots: Box<[u32]>,
    /// Lazily grown arena of bucket heaps; drained heaps return to `free`
    /// with their capacity intact instead of parking one allocation per slot.
    pool: Vec<BinaryHeap<Scheduled<E>>>,
    /// Pool indices whose heaps are currently empty and unattached.
    free: Vec<u32>,
    /// Hierarchical occupancy index over wheel positions.
    occupied: HierBitSet,
    near_len: usize,
    base_slot: u64,
    overflow: BinaryHeap<Scheduled<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: vec![NO_HEAP; WHEEL_SLOTS as usize].into_boxed_slice(),
            pool: Vec::new(),
            free: Vec::new(),
            occupied: HierBitSet::new(WHEEL_SLOTS as usize),
            near_len: 0,
            base_slot: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn slot_of(at: SimTime) -> u64 {
        at.as_secs() >> GRANULARITY_BITS
    }

    fn len(&self) -> usize {
        self.near_len + self.overflow.len()
    }

    fn insert_near(&mut self, s: Scheduled<E>) {
        let idx = (Self::slot_of(s.at) & SLOT_MASK) as usize;
        let mut h = self.slots[idx];
        if h == NO_HEAP {
            h = match self.free.pop() {
                Some(recycled) => recycled,
                None => {
                    self.pool.push(BinaryHeap::new());
                    (self.pool.len() - 1) as u32
                }
            };
            self.slots[idx] = h;
            self.occupied.insert(idx as u32);
        }
        self.pool[h as usize].push(s);
        self.near_len += 1;
    }

    /// Detaches the (drained) heap at wheel position `idx` back to the
    /// freelist and clears its occupancy bit.
    fn release_slot(&mut self, idx: usize) {
        let h = self.slots[idx];
        debug_assert!(h != NO_HEAP && self.pool[h as usize].is_empty());
        self.slots[idx] = NO_HEAP;
        self.free.push(h);
        self.occupied.remove(idx as u32);
    }

    fn schedule(&mut self, s: Scheduled<E>, now: SimTime) {
        if self.near_len == 0 && self.overflow.is_empty() {
            // Empty queue: every pending event is gone, so the window can
            // slide up to the clock for free.
            self.base_slot = Self::slot_of(now);
        }
        let slot = Self::slot_of(s.at);
        debug_assert!(slot >= self.base_slot, "slot below window base");
        if slot - self.base_slot < WHEEL_SLOTS {
            self.insert_near(s);
        } else {
            self.overflow.push(s);
        }
    }

    /// Physical index of the bucket holding the earliest near-band event.
    ///
    /// Probes the occupancy index in *logical* window order: physical
    /// positions `[p0, WHEEL_SLOTS)` first, then the wrapped `[0, p0)`
    /// tail, where `p0` is the window base. Within each segment physical
    /// order equals logical order, so the first member found is the earliest
    /// occupied bucket — exactly the bucket the dense bitmap scan used to
    /// find, at three summary-word probes instead of a 128-word sweep.
    fn first_occupied(&self) -> Option<usize> {
        if self.near_len == 0 {
            return None;
        }
        let p0 = (self.base_slot & SLOT_MASK) as u32;
        match self.occupied.next_at_or_after(p0) {
            Some(i) => Some(i as usize),
            None => Some(
                self.occupied
                    .first()
                    .expect("near_len > 0 but no occupied bucket") as usize,
            ),
        }
    }

    /// The heap attached at wheel position `idx` (which must be occupied).
    fn bucket(&self, idx: usize) -> &BinaryHeap<Scheduled<E>> {
        &self.pool[self.slots[idx] as usize]
    }

    fn peek(&self) -> Option<&Scheduled<E>> {
        let near = self
            .first_occupied()
            .map(|i| self.bucket(i).peek().expect("occupied bucket"));
        match (near, self.overflow.peek()) {
            (Some(n), Some(o)) => Some(if (n.at, n.seq) <= (o.at, o.seq) { n } else { o }),
            (Some(n), None) => Some(n),
            (None, o) => o,
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let near_idx = self.first_occupied();
        let take_near = match (near_idx, self.overflow.peek()) {
            (Some(i), Some(o)) => {
                let n = self.bucket(i).peek().expect("occupied bucket");
                (n.at, n.seq) <= (o.at, o.seq)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_near {
            let i = near_idx.expect("near chosen");
            let h = self.slots[i] as usize;
            let s = self.pool[h].pop().expect("occupied bucket");
            self.near_len -= 1;
            if self.pool[h].is_empty() {
                self.release_slot(i);
            }
            Some(s)
        } else {
            let s = self.overflow.pop().expect("overflow peeked");
            if self.near_len == 0 {
                // The whole near window lies behind this event: rebase to
                // it and migrate the next window's worth out of overflow in
                // one amortized batch.
                self.base_slot = Self::slot_of(s.at);
                while let Some(o) = self.overflow.peek() {
                    if Self::slot_of(o.at) - self.base_slot >= WHEEL_SLOTS {
                        break;
                    }
                    let o = self.overflow.pop().expect("peeked");
                    self.insert_near(o);
                }
            }
            Some(s)
        }
    }

    fn clear(&mut self) {
        while let Some(idx) = self.occupied.first() {
            let idx = idx as usize;
            self.pool[self.slots[idx] as usize].clear();
            self.release_slot(idx);
        }
        self.near_len = 0;
        self.overflow.clear();
    }

    fn take_all(&mut self) -> Vec<Scheduled<E>> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(idx) = self.occupied.first() {
            let idx = idx as usize;
            out.extend(self.pool[self.slots[idx] as usize].drain());
            self.release_slot(idx);
        }
        self.near_len = 0;
        out.extend(std::mem::take(&mut self.overflow).into_vec());
        out
    }
}

// One backend lives per queue (one queue per driver), so the size gap
// between the wheel and the bare heap is irrelevant; boxing would put an
// indirection on the hot path for nothing.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Tiered(Wheel<E>),
    ReferenceHeap(BinaryHeap<Scheduled<E>>),
}

/// A future-event list for discrete-event simulation.
///
/// ```
/// use rsc_sim_core::event::EventQueue;
/// use rsc_sim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// q.schedule(SimTime::from_secs(10), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]); // same-time events pop in insert order
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (tiered backend) with the clock at
    /// [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Tiered(Wheel::new()),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue on the retained single-binary-heap backend.
    ///
    /// Test hook for lockstep/byte-identity checks against the tiered
    /// backend; not part of the public API.
    #[doc(hidden)]
    pub fn new_reference_heap() -> Self {
        EventQueue {
            backend: Backend::ReferenceHeap(BinaryHeap::new()),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Switches this queue to the reference single-heap backend, carrying
    /// every pending event (and its tie-break sequence number) across.
    ///
    /// Test hook; not part of the public API.
    #[doc(hidden)]
    pub fn use_reference_heap(&mut self) {
        if let Backend::Tiered(wheel) = &mut self.backend {
            let pending = wheel.take_all();
            self.backend = Backend::ReferenceHeap(BinaryHeap::from(pending));
        }
    }

    /// True when this queue runs the reference single-heap backend.
    #[doc(hidden)]
    pub fn is_reference_heap(&self) -> bool {
        matches!(self.backend, Backend::ReferenceHeap(_))
    }

    /// The current simulation clock: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Tiered(w) => w.len(),
            Backend::ReferenceHeap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at}, now={now}",
            at = at,
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { at, seq, event };
        match &mut self.backend {
            Backend::Tiered(w) => w.schedule(s, self.now),
            Backend::ReferenceHeap(h) => h.push(s),
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Tiered(w) => w.peek().map(|s| s.at),
            Backend::ReferenceHeap(h) => h.peek().map(|s| s.at),
        }
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = match &mut self.backend {
            Backend::Tiered(w) => w.pop()?,
            Backend::ReferenceHeap(h) => h.pop()?,
        };
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pops the earliest event only if it is at or before `limit`.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Drops all pending events without changing the clock.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Tiered(w) => w.clear(),
            Backend::ReferenceHeap(h) => h.clear(),
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("now", &self.now)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(
            q.pop_until(SimTime::from_secs(15)),
            Some((SimTime::from_secs(10), "a"))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn million_same_timestamp_events_keep_insertion_order() {
        // The hot-path guarantee the whole simulator's determinism rests
        // on: a deep burst of simultaneous events drains in exactly the
        // order it was scheduled, at heap scale (sift-down paths several
        // levels deep), not just for toy sizes.
        const N: u64 = 1_000_000;
        let t = SimTime::from_secs(99);
        let mut q = EventQueue::new();
        // A later event scheduled first must still pop last.
        q.schedule(SimTime::from_secs(100), u64::MAX);
        for i in 0..N {
            q.schedule(t, i);
        }
        assert_eq!(q.len() as u64, N + 1);
        for i in 0..N {
            let (at, e) = q.pop().expect("burst event");
            assert_eq!(at, t);
            assert_eq!(e, i, "insertion order violated at element {i}");
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(100), u64::MAX)));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_bursts_drain_by_time_then_insertion() {
        // Two timestamps interleaved during scheduling still drain as two
        // clean insertion-ordered runs.
        let (t1, t2) = (SimTime::from_secs(5), SimTime::from_secs(6));
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(if i % 2 == 0 { t1 } else { t2 }, i);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expect: Vec<u32> = (0..10_000)
            .filter(|i| i % 2 == 0)
            .chain((0..10_000).filter(|i| i % 2 == 1))
            .collect();
        assert_eq!(drained, expect);
    }

    #[test]
    fn pop_until_boundary_is_inclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "exact");
        // The limit is inclusive: an event exactly at the limit pops.
        assert_eq!(
            q.pop_until(SimTime::from_secs(10)),
            Some((SimTime::from_secs(10), "exact"))
        );
        // An event one tick past the limit stays queued...
        q.schedule(SimTime::from_secs(20), "later");
        assert_eq!(q.pop_until(SimTime::from_secs(19)), None);
        // ...and the refusal leaves the clock untouched.
        assert_eq!(q.now(), SimTime::from_secs(10));
        // An empty queue refuses politely at any limit.
        q.pop();
        assert_eq!(q.pop_until(SimTime::MAX), None);
    }

    #[test]
    fn pop_until_drains_ties_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(SimTime::from_secs(7), i);
        }
        q.schedule(SimTime::from_secs(8), 999);
        let mut got = Vec::new();
        while let Some((_, e)) = q.pop_until(SimTime::from_secs(7)) {
            got.push(e);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn far_future_events_overflow_and_return_in_order() {
        // Events far beyond the ~12-day near window land in overflow and
        // still pop in exact global order, including ties with near events
        // after rebasing.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_days(100), "far-b");
        q.schedule(SimTime::from_secs(30), "near");
        q.schedule(SimTime::from_days(100), "far-c");
        q.schedule(SimTime::from_days(400), "farther");
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_days(100), "far-b")));
        // After the rebase at day 100, a new near event interleaves
        // correctly with the migrated one.
        q.schedule(SimTime::from_days(100), "far-d");
        assert_eq!(q.pop(), Some((SimTime::from_days(100), "far-c")));
        assert_eq!(q.pop(), Some((SimTime::from_days(100), "far-d")));
        assert_eq!(q.pop(), Some((SimTime::from_days(400), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn max_sentinel_time_is_schedulable() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "end");
        q.schedule(SimTime::from_secs(1), "soon");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "soon")));
        assert_eq!(q.peek_time(), Some(SimTime::MAX));
        assert_eq!(q.pop(), Some((SimTime::MAX, "end")));
    }

    #[test]
    fn empty_rebase_slides_window_forward() {
        // Drain the queue, advance far, then schedule again near the new
        // clock: the window rebases so the event stays in the near band.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_days(50), "a");
        q.pop();
        q.schedule(
            SimTime::from_days(50) + crate::time::SimDuration::from_secs(5),
            "b",
        );
        q.schedule(SimTime::from_days(51), "c");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("c"));
    }

    /// A tiny deterministic generator for lockstep tests (keeps this crate
    /// free of dev-dependency cycles and runs identically everywhere).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    /// Drives the tiered and reference backends through an identical
    /// randomized command stream and demands identical observable behavior
    /// at every step.
    fn lockstep(seed: u64, steps: usize, spread_secs: u64) {
        let mut tiered = EventQueue::new();
        let mut reference = EventQueue::new_reference_heap();
        let mut rng = Lcg(seed);
        let mut next_id = 0u64;
        for _ in 0..steps {
            match rng.next() % 5 {
                // Schedule: biased toward bursts of ties and occasional
                // far-future outliers.
                0..=2 => {
                    let base = tiered.now().as_secs();
                    let offset = match rng.next() % 10 {
                        0 => 0,                                   // tie with `now`
                        1..=6 => rng.next() % spread_secs,        // near band
                        7 | 8 => rng.next() % (spread_secs * 64), // mid
                        _ => 40 * 86_400 + rng.next() % 86_400,   // beyond window
                    };
                    let at = SimTime::from_secs(base + offset);
                    tiered.schedule(at, next_id);
                    reference.schedule(at, next_id);
                    next_id += 1;
                }
                3 => {
                    assert_eq!(tiered.pop(), reference.pop());
                }
                _ => {
                    let limit = tiered.now()
                        + crate::time::SimDuration::from_secs(rng.next() % (spread_secs * 8));
                    loop {
                        let (a, b) = (tiered.pop_until(limit), reference.pop_until(limit));
                        assert_eq!(a, b);
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
            assert_eq!(tiered.len(), reference.len());
            assert_eq!(tiered.peek_time(), reference.peek_time());
            assert_eq!(tiered.now(), reference.now());
        }
        // Full drain must agree to the last event.
        loop {
            let (a, b) = (tiered.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn lockstep_matches_reference_heap_near_band() {
        for seed in 0..8 {
            lockstep(seed, 2_000, 600);
        }
    }

    #[test]
    fn lockstep_matches_reference_heap_wide_spread() {
        for seed in 100..104 {
            lockstep(seed, 2_000, 6 * 86_400);
        }
    }

    #[test]
    fn reference_conversion_carries_pending_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "b");
        q.schedule(SimTime::from_secs(5), "a");
        q.schedule(SimTime::from_days(90), "z");
        q.schedule(SimTime::from_secs(10), "c");
        q.use_reference_heap();
        assert!(q.is_reference_heap());
        assert_eq!(q.len(), 4);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c", "z"]);
    }

    #[test]
    fn reference_backend_passes_the_same_contract() {
        let mut q = EventQueue::<u32>::new_reference_heap();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(42), i);
        }
        q.schedule(SimTime::from_secs(1), 999);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 999)));
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }
}
