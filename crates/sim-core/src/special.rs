//! Special functions used by the statistical estimators: log-gamma,
//! regularized incomplete gamma, Gamma/normal CDFs and quantiles.
//!
//! These back the Gamma-fit confidence intervals of the MTTF analysis
//! (paper Fig. 7) and the normal-approximation intervals elsewhere.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9), accurate to ~1e-13 over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`, in `[0, 1]`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// otherwise (Numerical Recipes style).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "shape must be positive");
    assert!(x >= 0.0, "x must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
    } else {
        // Continued fraction for Q(a, x) = 1 - P(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// CDF of the Gamma distribution with the given `shape` and `scale`.
pub fn gamma_cdf(x: f64, shape: f64, scale: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        reg_lower_gamma(shape, x / scale)
    }
}

/// Quantile (inverse CDF) of the Gamma distribution, by bisection on
/// [`gamma_cdf`]. `p` is clamped to `(0, 1)`.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not strictly positive.
pub fn gamma_quantile(p: f64, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma parameters must be positive"
    );
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    // Bracket: mean ± enough standard deviations, expanded as needed.
    let mean = shape * scale;
    let sd = shape.sqrt() * scale;
    let mut lo = 0.0f64;
    let mut hi = (mean + 10.0 * sd).max(scale);
    while gamma_cdf(hi, shape, scale) < p {
        hi *= 2.0;
        if hi > 1e300 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gamma_cdf(mid, shape, scale) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal CDF via the complementary error function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational Chebyshev
/// approximation, |error| < 1.2e-7 everywhere).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal quantile (inverse CDF), Acklam's algorithm refined with
/// one Halley step; accurate to ~1e-9.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Digamma function ψ(x) (derivative of `ln_gamma`), via the asymptotic
/// series with recurrence shift; used by Gamma MLE fitting.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0");
    let mut x = x;
    let mut result = 0.0;
    // Shift x up until the asymptotic series is accurate.
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(11.0) - 3_628_800.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        assert!(reg_lower_gamma(2.0, 1e6) > 1.0 - 1e-12);
        // P(1, x) = 1 - e^{-x}
        for x in [0.1f64, 1.0, 3.0, 10.0] {
            let expected = 1.0 - (-x).exp();
            assert!((reg_lower_gamma(1.0, x) - expected).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn gamma_cdf_median_of_exponential() {
        // Exponential(scale=2): median = 2 ln 2.
        let med = 2.0 * 2.0f64.ln();
        assert!((gamma_cdf(med, 1.0, 2.0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn gamma_quantile_inverts_cdf() {
        for &(shape, scale) in &[(1.0, 1.0), (2.5, 3.0), (0.5, 10.0), (30.0, 0.1)] {
            for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
                let x = gamma_quantile(p, shape, scale);
                let back = gamma_cdf(x, shape, scale);
                assert!(
                    (back - p).abs() < 1e-8,
                    "shape={shape} scale={scale} p={p} back={back}"
                );
            }
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        // The rational-Chebyshev erfc is accurate to ~1.2e-7.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) + normal_cdf(-1.0) - 1.0).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.05, 0.5, 0.9, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-8, "p={p}");
        }
        assert!((normal_quantile(0.95) - 1.6449).abs() < 1e-3);
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.5, 1.0, 2.3, 7.7] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9,
                "x={x}"
            );
        }
        // ψ(1) = -γ (Euler–Mascheroni)
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-9);
    }
}
