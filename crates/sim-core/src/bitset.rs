//! A three-level hierarchical bitset over dense `u32` keys.
//!
//! [`HierBitSet`] replaces `BTreeSet<u32>` in the scheduler's hot indexes
//! (free-GPU buckets, per-tier occupancy). Both structures iterate members
//! in ascending order — the property every packing/preemption order in the
//! workspace depends on — but the bitset does it over contiguous words with
//! O(1) allocation-free insert/remove, while the B-tree pays a pointer walk
//! and node splits per update.
//!
//! Layout: `l0` holds one bit per key; `l1` holds one bit per *non-empty
//! `l0` word*; `l2` summarizes `l1` the same way. Finding the first member
//! at or after a key probes at most one word per level plus a short scan of
//! `l2` (4 words at one million keys), so ascending iteration over a sparse
//! set skips empty regions in big strides instead of testing every bit.

/// A fixed-capacity hierarchical bitset storing `u32` keys in `[0, capacity)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierBitSet {
    /// One bit per key.
    l0: Vec<u64>,
    /// One bit per `l0` word: set iff that word is non-zero.
    l1: Vec<u64>,
    /// One bit per `l1` word: set iff that word is non-zero.
    l2: Vec<u64>,
    /// Number of members (maintained incrementally).
    len: usize,
}

fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl HierBitSet {
    /// An empty set able to hold keys in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        let l0 = words_for(capacity);
        let l1 = words_for(l0);
        let l2 = words_for(l1);
        HierBitSet {
            l0: vec![0; l0],
            l1: vec![0; l1],
            l2: vec![0; l2],
            len: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is a member.
    pub fn contains(&self, key: u32) -> bool {
        let w = (key >> 6) as usize;
        w < self.l0.len() && self.l0[w] & (1u64 << (key & 63)) != 0
    }

    /// Inserts `key`; returns `true` if it was not already present.
    ///
    /// Panics (debug) if `key` is outside the capacity given to [`new`].
    ///
    /// [`new`]: HierBitSet::new
    pub fn insert(&mut self, key: u32) -> bool {
        let w = (key >> 6) as usize;
        let bit = 1u64 << (key & 63);
        let word = &mut self.l0[w];
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.l1[w >> 6] |= 1u64 << (w & 63);
        self.l2[w >> 12] |= 1u64 << ((w >> 6) & 63);
        self.len += 1;
        true
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u32) -> bool {
        let w = (key >> 6) as usize;
        if w >= self.l0.len() {
            return false;
        }
        let bit = 1u64 << (key & 63);
        let word = &mut self.l0[w];
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        if *word == 0 {
            let l1w = &mut self.l1[w >> 6];
            *l1w &= !(1u64 << (w & 63));
            if *l1w == 0 {
                self.l2[w >> 12] &= !(1u64 << ((w >> 6) & 63));
            }
        }
        self.len -= 1;
        true
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        self.next_at_or_after(0)
    }

    /// The smallest member `>= key`, if any.
    pub fn next_at_or_after(&self, key: u32) -> Option<u32> {
        let mut w = (key >> 6) as usize;
        if w >= self.l0.len() {
            return None;
        }
        // Tail of the word holding `key`.
        let bits = self.l0[w] & (!0u64 << (key & 63));
        if bits != 0 {
            return Some(((w << 6) + bits.trailing_zeros() as usize) as u32);
        }
        // Later words in the same l1 summary word.
        w += 1;
        let v = w >> 6;
        if v >= self.l1.len() {
            return None;
        }
        let lbits = self.l1[v] & (!0u64 << (w & 63));
        if lbits != 0 {
            let w2 = (v << 6) + lbits.trailing_zeros() as usize;
            let b = self.l0[w2];
            return Some(((w2 << 6) + b.trailing_zeros() as usize) as u32);
        }
        // Remaining l1 words, located through the l2 summary.
        let v = v + 1;
        let mut u = v >> 6;
        if u >= self.l2.len() {
            return None;
        }
        let mut mask = !0u64 << (v & 63);
        while u < self.l2.len() {
            let tbits = self.l2[u] & mask;
            if tbits != 0 {
                let v2 = (u << 6) + tbits.trailing_zeros() as usize;
                let w2 = (v2 << 6) + self.l1[v2].trailing_zeros() as usize;
                let b = self.l0[w2];
                return Some(((w2 << 6) + b.trailing_zeros() as usize) as u32);
            }
            u += 1;
            mask = !0;
        }
        None
    }

    /// Ascending iterator over all members.
    pub fn iter(&self) -> HierBitSetIter<'_> {
        self.iter_range(0, (self.l0.len() << 6) as u32)
    }

    /// Ascending iterator over members in `[start, end)`.
    pub fn iter_range(&self, start: u32, end: u32) -> HierBitSetIter<'_> {
        HierBitSetIter {
            set: self,
            next: start,
            end,
        }
    }

    /// Number of members in `[start, end)`.
    pub fn count_range(&self, start: u32, end: u32) -> usize {
        self.iter_range(start, end).count()
    }
}

/// Ascending iterator over a [`HierBitSet`] (optionally range-restricted).
#[derive(Debug, Clone)]
pub struct HierBitSetIter<'a> {
    set: &'a HierBitSet,
    next: u32,
    end: u32,
}

impl Iterator for HierBitSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next >= self.end {
            return None;
        }
        match self.set.next_at_or_after(self.next) {
            Some(k) if k < self.end => {
                self.next = k + 1;
                Some(k)
            }
            _ => {
                self.next = self.end;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = HierBitSet::new(1000);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(999));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(999));
    }

    #[test]
    fn ascending_iteration_matches_btreeset() {
        // Deterministic LCG-driven churn, compared against a BTreeSet.
        let mut s = HierBitSet::new(1 << 16);
        let mut reference = BTreeSet::new();
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for step in 0..20_000u32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) as u32 % (1 << 16);
            if step % 3 == 0 {
                assert_eq!(s.remove(key), reference.remove(&key), "step {step}");
            } else {
                assert_eq!(s.insert(key), reference.insert(key), "step {step}");
            }
        }
        assert_eq!(s.len(), reference.len());
        let got: Vec<u32> = s.iter().collect();
        let want: Vec<u32> = reference.iter().copied().collect();
        assert_eq!(got, want);
        // first() and next_at_or_after agree with the reference range API.
        assert_eq!(s.first(), reference.iter().next().copied());
        for probe in [0u32, 1, 63, 64, 4095, 4096, 40_000, 65_535] {
            assert_eq!(
                s.next_at_or_after(probe),
                reference.range(probe..).next().copied(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn range_iteration_and_counts() {
        let mut s = HierBitSet::new(10_000);
        for k in [5u32, 64, 65, 700, 701, 702, 9_999] {
            s.insert(k);
        }
        let got: Vec<u32> = s.iter_range(64, 702).collect();
        assert_eq!(got, vec![64, 65, 700, 701]);
        assert_eq!(s.count_range(0, 10_000), 7);
        assert_eq!(s.count_range(700, 703), 3);
        assert_eq!(s.count_range(6, 64), 0);
    }

    #[test]
    fn sparse_strides_cross_summary_words() {
        // Members spaced so lookups must climb through l1 and l2.
        let mut s = HierBitSet::new(1 << 20);
        let keys = [0u32, 4_097, 262_144, 1_048_575];
        for &k in &keys {
            s.insert(k);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), keys);
        assert_eq!(s.next_at_or_after(1), Some(4_097));
        assert_eq!(s.next_at_or_after(4_098), Some(262_144));
        assert_eq!(s.next_at_or_after(262_145), Some(1_048_575));
        assert_eq!(s.next_at_or_after(1_048_575), Some(1_048_575));
        s.remove(262_144);
        assert_eq!(s.next_at_or_after(4_098), Some(1_048_575));
    }

    #[test]
    fn empty_and_boundary() {
        let s = HierBitSet::new(0);
        assert_eq!(s.first(), None);
        assert_eq!(s.next_at_or_after(0), None);
        let mut s = HierBitSet::new(64);
        s.insert(63);
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(64), None);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63]);
    }
}
