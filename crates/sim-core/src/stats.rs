//! Streaming and batch statistics used throughout the analysis crates.

use serde::{Deserialize, Serialize};

use crate::special;

/// Single-pass mean/variance/extrema accumulator (Welford's algorithm).
///
/// ```
/// use rsc_sim_core::stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 if empty).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval around the mean at the given
    /// two-sided `confidence` level (e.g. `0.90`).
    pub fn mean_confidence_interval(&self, confidence: f64) -> (f64, f64) {
        let z = special::normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.std_error();
        (self.mean() - half, self.mean() + half)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamingStats::new();
        s.extend(iter);
        s
    }
}

/// Linearly-interpolated quantile of a **sorted** slice; `q` in `[0, 1]`.
///
/// Returns `None` if the slice is empty.
///
/// ```
/// use rsc_sim_core::stats::quantile_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile_sorted(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile_sorted(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile_sorted(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A fixed-range histogram with uniform bins. Out-of-range observations are
/// clamped into the first/last bin so mass is never silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Bin fractions summing to 1 (all zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Empirical CDF over a sample, for plotting and threshold analysis.
///
/// ```
/// use rsc_sim_core::stats::Ecdf;
///
/// let cdf = Ecdf::from_samples([3.0, 1.0, 2.0]);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 2.0 / 3.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the empirical CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample in ECDF");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 when empty).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Value at the given quantile, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_sorted(&self.sorted, q)
    }

    /// The `(value, cumulative fraction)` step points, useful for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: StreamingStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut sa: StreamingStats = a.iter().copied().collect();
        let sb: StreamingStats = b.iter().copied().collect();
        let all: StreamingStats = xs.iter().copied().collect();
        sa.merge(&sb);
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-9);
        assert!((sa.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn confidence_interval_widens_with_confidence() {
        let s: StreamingStats = (0..1000).map(|i| (i % 10) as f64).collect();
        let (lo90, hi90) = s.mean_confidence_interval(0.90);
        let (lo99, hi99) = s.mean_confidence_interval(0.99);
        assert!(hi99 - lo99 > hi90 - lo90);
        assert!(lo90 < s.mean() && s.mean() < hi90);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile_sorted(&xs, 0.25), Some(15.0));
        assert_eq!(quantile_sorted(&xs, 2.0), Some(30.0)); // clamped
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-5.0);
        h.push(100.0);
        h.push(4.9);
        assert_eq!(h.counts(), &[1, 0, 1, 0, 1]);
        assert_eq!(h.total(), 3);
        let fr = h.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_basics() {
        let cdf = Ecdf::from_samples([5.0, 1.0, 3.0, 3.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(3.0), 0.75);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        let pts = cdf.points();
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::from_samples([1.0, f64::NAN]);
    }
}

/// Bootstrap percentile confidence interval for the mean of a sample.
///
/// Resamples with replacement `resamples` times and returns the
/// `(lo, hi)` percentile bounds at the given two-sided `confidence`
/// (e.g. `0.90` → the 5th and 95th percentile of resampled means).
/// Returns `None` for empty samples.
///
/// ```
/// use rsc_sim_core::rng::SimRng;
/// use rsc_sim_core::stats::bootstrap_mean_ci;
///
/// let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let mut rng = SimRng::seed_from(1);
/// let (lo, hi) = bootstrap_mean_ci(&xs, 0.90, 1000, &mut rng).unwrap();
/// assert!(lo < 4.5 && 4.5 < hi);
/// ```
pub fn bootstrap_mean_ci(
    samples: &[f64],
    confidence: f64,
    resamples: u32,
    rng: &mut crate::rng::SimRng,
) -> Option<(f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mut means = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += samples[rng.below(n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lo = quantile_sorted(&means, alpha)?;
    let hi = quantile_sorted(&means, 1.0 - alpha)?;
    Some((lo, hi))
}

#[cfg(test)]
mod bootstrap_tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn brackets_true_mean() {
        let mut rng = SimRng::seed_from(2);
        let xs: Vec<f64> = (0..500).map(|_| rng.normal(7.0, 2.0)).collect();
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 2000, &mut rng).unwrap();
        assert!(lo < 7.0 && 7.0 < hi, "({lo}, {hi})");
        // Interval width shrinks roughly like 1/sqrt(n).
        let xs_big: Vec<f64> = (0..5000).map(|_| rng.normal(7.0, 2.0)).collect();
        let (lo2, hi2) = bootstrap_mean_ci(&xs_big, 0.95, 2000, &mut rng).unwrap();
        assert!(hi2 - lo2 < (hi - lo) * 0.6);
    }

    #[test]
    fn agrees_with_normal_approximation() {
        let mut rng = SimRng::seed_from(3);
        let xs: Vec<f64> = (0..1000).map(|_| rng.exponential(0.2)).collect();
        let stats: StreamingStats = xs.iter().copied().collect();
        let (nlo, nhi) = stats.mean_confidence_interval(0.90);
        let (blo, bhi) = bootstrap_mean_ci(&xs, 0.90, 4000, &mut rng).unwrap();
        assert!(
            (nlo - blo).abs() < 0.05 && (nhi - bhi).abs() < 0.05,
            "normal ({nlo},{nhi}) vs bootstrap ({blo},{bhi})"
        );
    }

    #[test]
    fn empty_returns_none() {
        let mut rng = SimRng::seed_from(4);
        assert!(bootstrap_mean_ci(&[], 0.9, 100, &mut rng).is_none());
    }
}
