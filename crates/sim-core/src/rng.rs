//! Deterministic random sources and distribution samplers.
//!
//! Every random draw in the simulator flows through [`SimRng`], a thin
//! wrapper around a seeded [`rand::rngs::StdRng`]. Subsystems obtain
//! independent streams with [`SimRng::fork`], so adding draws to one
//! subsystem never perturbs another — a prerequisite for reproducible
//! experiments and A/B ablations.
//!
//! Distribution samplers (exponential, normal, lognormal, gamma, Weibull,
//! Poisson, Pareto) are implemented here directly rather than pulling in an
//! external distributions crate.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic random number generator for simulations.
///
/// ```
/// use rsc_sim_core::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Forking is stable: the child depends only on the parent's seed
    /// material drawn at fork time and on `label`, so forking the same labels
    /// in the same order yields the same streams.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        // SplitMix64-style mix of (base, label) for good seed dispersion.
        let mut z = base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential variate with the given `rate` (λ); mean is `1/rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Standard normal variate (Box–Muller, polar form).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal variate where the *underlying normal* has the given
    /// `mu`/`sigma` (i.e. the median is `exp(mu)`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Gamma variate with shape `k` and scale `theta` (mean `k·theta`),
    /// using Marsaglia–Tsang squeeze with the boost for `k < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `theta` is not strictly positive.
    pub fn gamma(&mut self, k: f64, theta: f64) -> f64 {
        assert!(k > 0.0 && theta > 0.0, "gamma parameters must be positive");
        if k < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
            let u = self.uniform().max(f64::MIN_POSITIVE);
            return self.gamma(k + 1.0, theta) * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * theta;
            }
        }
    }

    /// Weibull variate with the given shape and scale.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(
            shape > 0.0 && scale > 0.0,
            "weibull parameters must be positive"
        );
        scale * (-(1.0 - self.uniform()).ln()).powf(1.0 / shape)
    }

    /// Pareto variate with minimum `x_min` and tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        x_min / (1.0 - self.uniform()).powf(1.0 / alpha)
    }

    /// Poisson variate with mean `lambda`.
    ///
    /// Uses Knuth's product method for small means and a rounded normal
    /// approximation beyond `lambda = 256` (relative error there is well
    /// under a percent, which is ample for event counts).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "lambda must be non-negative"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda <= 256.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.uniform();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }
}

/// A discrete distribution over `0..n` with fixed weights, sampled in
/// `O(log n)` by binary search over the cumulative sum.
///
/// ```
/// use rsc_sim_core::rng::{SimRng, WeightedIndex};
///
/// let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SimRng::seed_from(7);
/// let idx = dist.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Error from constructing a [`WeightedIndex`] with invalid weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWeightsError;

impl std::fmt::Display for InvalidWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "weights must be non-negative, finite, and sum to a positive value"
        )
    }
}

impl std::error::Error for InvalidWeightsError {}

impl WeightedIndex {
    /// Builds a weighted sampler from an iterator of non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeightsError`] if any weight is negative or
    /// non-finite, or if all weights are zero.
    pub fn new<I>(weights: I) -> Result<Self, InvalidWeightsError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(InvalidWeightsError);
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(InvalidWeightsError);
        }
        Ok(WeightedIndex { cumulative, total })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (cannot occur for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index proportional to its weight.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.uniform() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// A discrete distribution over `0..n` with fixed weights, sampled in
/// **O(1)** via the Walker–Vose alias method.
///
/// Construction is O(n) and fully deterministic (index-ordered worklists),
/// so rebuilding a table from the same weights always yields the same
/// internal layout — and therefore the same draw sequence for a given RNG
/// state. Prefer this over [`WeightedIndex`] when the same distribution is
/// sampled many times between rebuilds (e.g. the failure injector's merged
/// candidate process, rebuilt only at hazard-era boundaries).
///
/// ```
/// use rsc_sim_core::rng::{AliasTable, SimRng};
///
/// let dist = AliasTable::new([1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SimRng::seed_from(7);
/// let idx = dist.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for each column.
    prob: Vec<f64>,
    /// Fallback category for each column.
    alias: Vec<u32>,
    total: f64,
}

impl AliasTable {
    /// Builds an alias sampler from an iterator of non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeightsError`] if any weight is negative or
    /// non-finite, if all weights are zero, or if there are no (or more
    /// than `u32::MAX`) categories.
    pub fn new<I>(weights: I) -> Result<Self, InvalidWeightsError>
    where
        I: IntoIterator<Item = f64>,
    {
        Self::from_weights_vec(weights.into_iter().collect())
    }

    /// Builds an alias sampler from an owned weight vector, reusing its
    /// allocation as the probability array.
    ///
    /// Equivalent to [`AliasTable::new`] — same deterministic layout, bit
    /// for bit — but the only O(n) working memory beyond the final table is
    /// the pairing worklists. At fleet scale (n = nodes × modes, 120M at
    /// ten million nodes) that removes two transient n-sized float arrays
    /// from the construction peak.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AliasTable::new`].
    pub fn from_weights_vec(mut weights: Vec<f64>) -> Result<Self, InvalidWeightsError> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return Err(InvalidWeightsError);
        }
        let mut total = 0.0f64;
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(InvalidWeightsError);
            }
            total += w;
        }
        if total <= 0.0 || !total.is_finite() {
            return Err(InvalidWeightsError);
        }

        // Vose's method: scale weights to mean 1, then pair each deficit
        // ("small") column with a surplus ("large") donor. Stacks are
        // filled in index order, which makes the layout deterministic.
        //
        // The scaled array doubles as the acceptance-probability array: a
        // column popped from `small` is paired exactly once and its scaled
        // value is final at that moment, donors are updated in place until
        // they flip to `small` themselves, and rounding leftovers are
        // overwritten with certain acceptance.
        let scale = n as f64 / total;
        for w in &mut weights {
            *w *= scale;
        }
        let mut prob = weights;
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Float-rounding leftovers sit within an ulp of 1; treat as certain.
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }
        Ok(AliasTable { prob, alias, total })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no categories (cannot occur for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the weights the table was built from.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Draws a category index proportional to its weight: one uniform
    /// column pick plus one biased coin — O(1) regardless of `len`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.below(self.prob.len() as u64) as usize;
        if rng.uniform() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn forked_streams_are_independent_and_stable() {
        let mut parent1 = SimRng::seed_from(1);
        let mut parent2 = SimRng::seed_from(1);
        let mut a1 = parent1.fork(10);
        let mut a2 = parent2.fork(10);
        assert_eq!(a1.next_u64(), a2.next_u64());

        let mut parent3 = SimRng::seed_from(1);
        let mut b = parent3.fork(11);
        let mut a3 = SimRng::seed_from(1).fork(10);
        assert_ne!(a3.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_matches_mean() {
        let mut rng = SimRng::seed_from(2);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.exponential(0.25)).collect();
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = SimRng::seed_from(3);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn gamma_matches_moments() {
        let mut rng = SimRng::seed_from(4);
        // shape 3, scale 2 → mean 6, var 12.
        let samples: Vec<f64> = (0..50_000).map(|_| rng.gamma(3.0, 2.0)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 6.0).abs() < 0.1, "mean={mean}");
        assert!((var - 12.0).abs() < 0.6, "var={var}");
    }

    #[test]
    fn gamma_small_shape_positive() {
        let mut rng = SimRng::seed_from(5);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.gamma(0.5, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SimRng::seed_from(6);
        let small: Vec<f64> = (0..30_000).map(|_| rng.poisson(3.0) as f64).collect();
        let (mean, var) = mean_and_var(&small);
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
        assert!((var - 3.0).abs() < 0.25, "var={var}");

        let large: Vec<f64> = (0..10_000).map(|_| rng.poisson(1000.0) as f64).collect();
        let (mean, _) = mean_and_var(&large);
        assert!((mean - 1000.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut rng = SimRng::seed_from(7);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.weibull(1.0, 5.0)).collect();
        let (mean, _) = mean_and_var(&samples);
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::seed_from(8);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SimRng::seed_from(9);
        let mut samples: Vec<f64> = (0..30_001).map(|_| rng.lognormal(1.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.08, "median={median}");
    }

    #[test]
    fn weighted_index_proportions() {
        let dist = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut rng = SimRng::seed_from(10);
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([1.0, -1.0]).is_err());
        assert!(WeightedIndex::new([f64::NAN]).is_err());
        assert!(WeightedIndex::new(std::iter::empty()).is_err());
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let dist = WeightedIndex::new([1.0, 0.0, 1.0]).unwrap();
        let mut rng = SimRng::seed_from(11);
        for _ in 0..10_000 {
            assert_ne!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_proportions() {
        let dist = AliasTable::new([1.0, 3.0, 4.0]).unwrap();
        assert_eq!(dist.len(), 3);
        assert!((dist.total() - 8.0).abs() < 1e-12);
        let mut rng = SimRng::seed_from(10);
        let mut counts = [0u32; 3];
        for _ in 0..80_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        for (i, expect) in [0.125, 0.375, 0.5].into_iter().enumerate() {
            let frac = counts[i] as f64 / 80_000.0;
            assert!((frac - expect).abs() < 0.01, "i={i} frac={frac}");
        }
    }

    #[test]
    fn alias_table_matches_weighted_index_law() {
        // Same weights, two samplers, two independent streams: the
        // empirical distributions must agree within sampling error.
        let weights = [0.5, 0.0, 2.5, 1.0, 7.0, 0.25];
        let total: f64 = weights.iter().sum();
        let alias = AliasTable::new(weights).unwrap();
        let cumsum = WeightedIndex::new(weights).unwrap();
        let mut rng_a = SimRng::seed_from(20);
        let mut rng_b = SimRng::seed_from(21);
        let n = 60_000;
        let mut count_a = [0u32; 6];
        let mut count_b = [0u32; 6];
        for _ in 0..n {
            count_a[alias.sample(&mut rng_a)] += 1;
            count_b[cumsum.sample(&mut rng_b)] += 1;
        }
        for i in 0..6 {
            let expect = weights[i] / total;
            let fa = count_a[i] as f64 / n as f64;
            let fb = count_b[i] as f64 / n as f64;
            assert!((fa - expect).abs() < 0.012, "alias i={i} frac={fa}");
            assert!((fb - expect).abs() < 0.012, "cumsum i={i} frac={fb}");
        }
    }

    #[test]
    fn alias_table_zero_weight_never_sampled() {
        let dist = AliasTable::new([1.0, 0.0, 1.0]).unwrap();
        let mut rng = SimRng::seed_from(11);
        for _ in 0..10_000 {
            assert_ne!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alias_table_uniform_weights_cover_all() {
        let dist = AliasTable::new(vec![2.0; 64]).unwrap();
        let mut rng = SimRng::seed_from(12);
        let mut seen = [false; 64];
        for _ in 0..10_000 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn alias_table_rejects_bad_weights() {
        assert!(AliasTable::new([0.0, 0.0]).is_err());
        assert!(AliasTable::new([1.0, -1.0]).is_err());
        assert!(AliasTable::new([f64::NAN]).is_err());
        assert!(AliasTable::new([f64::INFINITY]).is_err());
        assert!(AliasTable::new(std::iter::empty()).is_err());
    }

    #[test]
    fn alias_table_deterministic_given_seed() {
        let weights: Vec<f64> = (0..500).map(|i| (i % 7) as f64 + 0.25).collect();
        let a = AliasTable::new(weights.iter().copied()).unwrap();
        let b = AliasTable::new(weights.iter().copied()).unwrap();
        let mut rng_a = SimRng::seed_from(13);
        let mut rng_b = SimRng::seed_from(13);
        for _ in 0..1_000 {
            assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(12);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }
}
