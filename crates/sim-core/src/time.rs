//! Simulation time and duration newtypes.
//!
//! All simulation timestamps are integer **seconds** since the start of the
//! simulated measurement window. Integer seconds are precise enough for
//! cluster-level events (health checks fire every five minutes, jobs run for
//! hours) while keeping event ordering exact and platform-independent.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in whole seconds since simulation start.
///
/// `SimTime` is ordered, copyable, and supports arithmetic with
/// [`SimDuration`]:
///
/// ```
/// use rsc_sim_core::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(2);
/// assert_eq!(t.as_secs(), 7200);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_mins(120));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in whole seconds.
///
/// ```
/// use rsc_sim_core::time::SimDuration;
///
/// assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
/// assert_eq!(SimDuration::from_hours(1).as_days(), 1.0 / 24.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time from whole minutes since simulation start.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60)
    }

    /// Creates a time from whole hours since simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3600)
    }

    /// Creates a time from whole days since simulation start.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400)
    }

    /// Seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Days since simulation start, as a float (for rate math and reporting).
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Hours since simulation start, as a float.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// The duration since an earlier time, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Creates a duration from fractional days, rounding to the nearest
    /// second. Negative or non-finite inputs clamp to zero.
    pub fn from_days_f64(days: f64) -> Self {
        SimDuration(to_secs_saturating(days * 86_400.0))
    }

    /// Creates a duration from fractional hours, rounding to the nearest
    /// second. Negative or non-finite inputs clamp to zero.
    pub fn from_hours_f64(hours: f64) -> Self {
        SimDuration(to_secs_saturating(hours * 3600.0))
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// whole second. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(to_secs_saturating(secs))
    }

    /// Whole seconds in this duration.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// This duration in fractional minutes.
    pub fn as_mins(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// This duration in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// This duration in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// second and saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(to_secs_saturating(self.0 as f64 * factor))
    }
}

/// Converts fractional seconds to whole seconds, clamping negatives and
/// non-finite values to zero and saturating at `u64::MAX`.
fn to_secs_saturating(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        if secs == f64::INFINITY {
            return u64::MAX;
        }
        return 0;
    }
    if secs >= u64::MAX as f64 {
        u64::MAX
    } else {
        secs.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Duration between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`SimDuration::saturating_sub`] when the ordering is uncertain.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let h = rem / 3600;
        let m = (rem % 3600) / 60;
        let s = rem % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400 {
            write!(f, "{:.2}d", self.as_days())
        } else if self.0 >= 3600 {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0 >= 60 {
            write!(f, "{:.1}m", self.as_mins())
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_hours(5);
        assert_eq!(t.as_secs(), 5 * 3600);
        assert_eq!(t + SimDuration::from_hours(1), SimTime::from_hours(6));
        assert_eq!(SimTime::from_hours(6) - t, SimDuration::from_hours(1));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_days(2), SimDuration::from_hours(48));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_days_f64(0.5), SimDuration::from_hours(12));
        assert_eq!(SimDuration::from_hours_f64(1.5), SimDuration::from_mins(90));
        assert!((SimDuration::from_days(3).as_days() - 3.0).abs() < 1e-12);
        assert!((SimTime::from_days(3).as_days() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nonfinite_floats_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(90_061).to_string(), "d1+01:01:01");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5.0m");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
        assert_eq!(SimDuration::from_days(2).to_string(), "2.00d");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_hours(2).mul_f64(0.5),
            SimDuration::from_hours(1)
        );
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }
}
