//! Property-based tests of the analysis estimators.

use proptest::prelude::*;

use rsc_core::ettr::analytical::{expected_ettr, expected_ettr_simplified, EttrParams};
use rsc_core::ettr::jobrun::JobRun;
use rsc_core::ettr::requirements::max_coupled_interval_mins;
use rsc_core::mttf::{gamma_mttf_ci, power_of_two_bucket, round_up_to_server, MttfProjection};
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::SimDuration;

fn params(nodes: u32, r_f: f64, q: f64, u0: f64, cp: f64, r: f64) -> EttrParams {
    EttrParams {
        nodes,
        r_f,
        queue_time: q,
        restart_overhead: u0,
        checkpoint_interval: cp,
        productive_time: r,
    }
}

proptest! {
    /// ETTR stays in [0, 1] and is monotone: worse failure rates, longer
    /// checkpoints, longer queues all reduce it.
    #[test]
    fn ettr_bounded_and_monotone(
        nodes in 1u32..20_000,
        r_f in 1e-5f64..2e-2,
        q in 0.0f64..0.2,
        u0 in 0.0f64..0.05,
        cp in 1e-4f64..0.2,
        r in 0.5f64..30.0,
    ) {
        let p = params(nodes, r_f, q, u0, cp, r);
        let e = expected_ettr(&p);
        prop_assert!((0.0..=1.0).contains(&e));
        let worse_rate = expected_ettr(&params(nodes, r_f * 2.0, q, u0, cp, r));
        prop_assert!(worse_rate <= e + 1e-12);
        let worse_cp = expected_ettr(&params(nodes, r_f, q, u0, cp * 2.0, r));
        prop_assert!(worse_cp <= e + 1e-12);
        let worse_q = expected_ettr(&params(nodes, r_f, q + 0.1, u0, cp, r));
        prop_assert!(worse_q <= e + 1e-12);
        // The simplified form ignores queueing, so it upper-bounds the
        // full formula.
        prop_assert!(expected_ettr_simplified(&p) >= e - 1e-12);
    }

    /// The requirement solver is consistent: the solved interval achieves
    /// the target, and a 2x longer interval does not.
    #[test]
    fn requirement_solver_consistent(
        gpus in 1_000u32..200_000,
        r_f in 5e-4f64..1e-2,
        target in 0.3f64..0.95,
    ) {
        if let Some(mins) = max_coupled_interval_mins(gpus, r_f, target, 1.0, 7.0) {
            let eval = |cp: f64| {
                expected_ettr(&params(
                    gpus.div_ceil(8),
                    r_f,
                    1.0 / 60.0 / 24.0,
                    cp / 60.0 / 24.0,
                    cp / 60.0 / 24.0,
                    7.0,
                ))
            };
            prop_assert!(eval(mins) >= target - 1e-6, "solved interval misses target");
            if mins < 12.0 * 60.0 {
                prop_assert!(eval(mins * 2.0) < target + 1e-6);
            }
        }
    }

    /// Gamma CIs bracket the point estimate and shrink with more data.
    #[test]
    fn gamma_ci_brackets(failures in 1u64..5000, mttf in 0.1f64..1000.0) {
        let exposure = failures as f64 * mttf;
        let (lo, hi) = gamma_mttf_ci(failures, exposure, 0.90).expect("valid inputs");
        prop_assert!(lo <= mttf && mttf <= hi, "({lo}, {mttf}, {hi})");
        let (lo4, hi4) = gamma_mttf_ci(failures * 4, exposure * 4.0, 0.90).expect("valid");
        prop_assert!((hi4 - lo4) <= (hi - lo) * 1.01);
    }

    /// MTTF projection is inverse in node count (up to the 1-second
    /// quantization of `SimDuration`).
    #[test]
    fn projection_inverse_scaling(r_f in 1e-4f64..1e-2, servers in 1u32..10_000) {
        let proj = MttfProjection::new(r_f);
        let one = proj.mttf_hours(8);
        let many = proj.mttf_hours(8 * servers);
        // The small-side MTTF is quantized to whole seconds; allow that.
        let quantization = 1.0 / (many * 3600.0);
        let tol = servers as f64 * (1e-6 + 2.0 * quantization);
        prop_assert!((one / many - servers as f64).abs() < tol);
    }

    /// Size bucketing: the bucket always contains the rounded size and is
    /// a power-of-two number of servers.
    #[test]
    fn buckets_contain_size(gpus in 1u32..100_000) {
        let rounded = round_up_to_server(gpus);
        prop_assert!(rounded >= gpus && rounded.is_multiple_of(8));
        let bucket = power_of_two_bucket(gpus);
        prop_assert!(bucket >= rounded);
        prop_assert!((bucket / 8).is_power_of_two());
    }

    /// Measured job-run ETTR is in [0, 1] for any run shape.
    #[test]
    fn measured_ettr_bounded(
        attempts in 1u32..50,
        sched_hours in 1u64..2000,
        queued_hours in 0u64..500,
        cp_mins in 1u64..240,
        u0_mins in 0u64..60,
    ) {
        let run = JobRun {
            gpus: 256,
            qos: QosClass::High,
            attempts,
            scheduled: SimDuration::from_hours(sched_hours),
            queued: SimDuration::from_hours(queued_hours),
            final_status: JobStatus::Completed,
        };
        let e = run.measured_ettr(
            SimDuration::from_mins(cp_mins),
            SimDuration::from_mins(u0_mins),
        );
        prop_assert!((0.0..=1.0).contains(&e));
        // More interruptions never increase measured ETTR.
        let worse = JobRun { attempts: attempts + 5, ..run };
        let e2 = worse.measured_ettr(
            SimDuration::from_mins(cp_mins),
            SimDuration::from_mins(u0_mins),
        );
        prop_assert!(e2 <= e + 1e-12);
    }
}
