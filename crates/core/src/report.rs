//! Figure/table data builders: the aggregations behind Figs. 3 and 6 and
//! the Table I printer.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rsc_failure::taxonomy::FailureSymptom;
use rsc_sched::job::JobStatus;
use rsc_telemetry::view::TelemetryView;

/// One Fig. 3 row: a scheduler status with its share of jobs and GPU-time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatusShare {
    /// The status.
    pub status: JobStatus,
    /// Fraction of job records with this status.
    pub job_fraction: f64,
    /// Fraction of total GPU-time consumed by records with this status.
    pub gpu_time_fraction: f64,
}

/// Computes the Fig. 3 scheduler status breakdown.
pub fn status_breakdown(view: &TelemetryView) -> Vec<StatusShare> {
    let total_jobs = view.jobs().len() as f64;
    let total_gpu_time: f64 = view.jobs().iter().map(|r| r.gpu_time().as_hours()).sum();
    JobStatus::ALL
        .iter()
        .map(|&status| {
            let records = view.jobs().iter().filter(|r| r.status == status);
            let (count, gpu_time) = records.fold((0u64, 0.0f64), |(c, g), r| {
                (c + 1, g + r.gpu_time().as_hours())
            });
            StatusShare {
                status,
                job_fraction: if total_jobs > 0.0 {
                    count as f64 / total_jobs
                } else {
                    0.0
                },
                gpu_time_fraction: if total_gpu_time > 0.0 {
                    gpu_time / total_gpu_time
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One Fig. 6 row: a job-size bucket with its share of jobs and compute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeShare {
    /// Job size bucket (exact GPU count as submitted).
    pub gpus: u32,
    /// Fraction of jobs at this size.
    pub job_fraction: f64,
    /// Fraction of GPU-time at this size.
    pub gpu_time_fraction: f64,
}

/// Computes the Fig. 6 job-size distribution (by jobs and by compute).
pub fn size_distribution(view: &TelemetryView) -> Vec<SizeShare> {
    let mut jobs: BTreeMap<u32, u64> = BTreeMap::new();
    let mut gpu_time: BTreeMap<u32, f64> = BTreeMap::new();
    // Count logical jobs once (attempt 0) but credit GPU-time from every
    // attempt.
    let mut total_jobs = 0u64;
    let mut total_gpu_time = 0.0f64;
    for r in view.jobs() {
        if r.attempt == 0 {
            *jobs.entry(r.gpus).or_insert(0) += 1;
            total_jobs += 1;
        }
        let g = r.gpu_time().as_hours();
        *gpu_time.entry(r.gpus).or_insert(0.0) += g;
        total_gpu_time += g;
    }
    jobs.keys()
        .map(|&gpus| SizeShare {
            gpus,
            job_fraction: jobs[&gpus] as f64 / total_jobs.max(1) as f64,
            gpu_time_fraction: gpu_time.get(&gpus).copied().unwrap_or(0.0)
                / total_gpu_time.max(f64::MIN_POSITIVE),
        })
        .collect()
}

/// Renders the paper's Table I as aligned text rows:
/// `(symptom, user?, system?, hardware?, likely causes)`.
pub fn taxonomy_table() -> Vec<(String, bool, bool, bool, String)> {
    use rsc_failure::taxonomy::FailureDomain::*;
    FailureSymptom::ALL
        .iter()
        .map(|&s| {
            let domains = s.domains();
            (
                s.label().to_string(),
                domains.contains(&UserProgram),
                domains.contains(&SystemSoftware),
                domains.contains(&HardwareInfra),
                s.likely_causes().to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, NodeId};
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::QosClass;
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;

    fn record(id: u64, attempt: u32, gpus: u32, hours: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(0)],
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn status_breakdown_fractions_sum_to_one() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 0, 8, 2, JobStatus::Completed));
        store.push_job(record(2, 0, 8, 2, JobStatus::Failed));
        store.push_job(record(3, 0, 16, 4, JobStatus::Completed));
        let shares = status_breakdown(&store.seal());
        let total_jobs: f64 = shares.iter().map(|s| s.job_fraction).sum();
        let total_gpu: f64 = shares.iter().map(|s| s.gpu_time_fraction).sum();
        assert!((total_jobs - 1.0).abs() < 1e-9);
        assert!((total_gpu - 1.0).abs() < 1e-9);
        let completed = shares
            .iter()
            .find(|s| s.status == JobStatus::Completed)
            .unwrap();
        assert!((completed.job_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn size_distribution_counts_logical_jobs_once() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 0, 8, 2, JobStatus::NodeFail));
        store.push_job(record(1, 1, 8, 3, JobStatus::Completed));
        store.push_job(record(2, 0, 16, 1, JobStatus::Completed));
        let dist = size_distribution(&store.seal());
        let eight = dist.iter().find(|s| s.gpus == 8).unwrap();
        assert!((eight.job_fraction - 0.5).abs() < 1e-9);
        // GPU-time for size 8 counts both attempts: (2+3)×8 = 40 of 56.
        assert!((eight.gpu_time_fraction - 40.0 / 56.0).abs() < 1e-9);
    }

    #[test]
    fn taxonomy_matches_table_one() {
        let table = taxonomy_table();
        assert_eq!(table.len(), FailureSymptom::ALL.len());
        let oom = table.iter().find(|r| r.0 == "oom").unwrap();
        assert!(oom.1 && !oom.2 && !oom.3);
        let nccl = table.iter().find(|r| r.0 == "nccl_timeout").unwrap();
        assert!(nccl.1 && nccl.2 && nccl.3);
    }
}
