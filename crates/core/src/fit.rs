//! Failure-interarrival distribution fitting.
//!
//! The MTTF projection (`MTTF = 1/(N·r_f)`) and the Gamma confidence
//! intervals both assume failures arrive as a Poisson process —
//! exponential interarrivals. This module fits exponential and Weibull
//! models to interarrival samples and reports a Kolmogorov–Smirnov
//! statistic, so the assumption can be *checked* on any telemetry rather
//! than taken on faith (a Weibull shape near 1 means "Poisson-like";
//! shape < 1 signals clustering — e.g. lemon nodes or era effects).

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;
use rsc_telemetry::view::TelemetryView;

/// A fitted Weibull distribution (exponential when `shape == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFit {
    /// Shape parameter `k`: `< 1` over-dispersed (bursty), `≈ 1`
    /// Poisson-like, `> 1` regular.
    pub shape: f64,
    /// Scale parameter `λ` (same unit as the samples).
    pub scale: f64,
    /// Kolmogorov–Smirnov distance between the sample and the fit.
    pub ks_distance: f64,
    /// Number of samples fitted.
    pub samples: usize,
}

/// Fits an exponential distribution (rate = 1/mean) and returns
/// `(rate, KS distance)`.
///
/// # Panics
///
/// Panics if `samples` is empty or contains non-positive values.
pub fn fit_exponential(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "need samples");
    assert!(samples.iter().all(|&x| x > 0.0), "samples must be positive");
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = 1.0 / mean;
    let cdf = |x: f64| 1.0 - (-rate * x).exp();
    (rate, ks_distance(samples, cdf))
}

/// Fits a Weibull by maximum likelihood (Newton iteration on the shape,
/// closed-form scale given shape).
///
/// # Panics
///
/// Panics if `samples` is empty or contains non-positive values.
pub fn fit_weibull(samples: &[f64]) -> WeibullFit {
    assert!(!samples.is_empty(), "need samples");
    assert!(samples.iter().all(|&x| x > 0.0), "samples must be positive");
    let n = samples.len() as f64;
    let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
    let mean_log = logs.iter().sum::<f64>() / n;

    // Newton on the MLE equation for k:
    //   1/k = Σ x^k ln x / Σ x^k − mean(ln x)
    let mut k: f64 = 1.0;
    for _ in 0..100 {
        let (mut s0, mut s1, mut s2) = (0.0f64, 0.0f64, 0.0f64);
        for (&x, &lx) in samples.iter().zip(&logs) {
            let xk = x.powf(k);
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let f = s1 / s0 - 1.0 / k - mean_log;
        let df = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let step = f / df;
        k -= step;
        if !(0.01..=100.0).contains(&k) {
            k = k.clamp(0.01, 100.0);
        }
        if step.abs() < 1e-10 {
            break;
        }
    }
    let scale = (samples.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    let cdf = |x: f64| 1.0 - (-(x / scale).powf(k)).exp();
    WeibullFit {
        shape: k,
        scale,
        ks_distance: ks_distance(samples, cdf),
        samples: samples.len(),
    }
}

/// Kolmogorov–Smirnov distance between an empirical sample and a CDF.
fn ks_distance(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("positive samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Extracts the cluster-wide failure interarrival times (hours) from a
/// sealed view's ground-truth failure stream.
pub fn failure_interarrivals_hours(view: &TelemetryView) -> Vec<f64> {
    let mut times: Vec<SimTime> = view.ground_truth_failures().iter().map(|f| f.at).collect();
    times.sort();
    times
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]).as_hours())
        .filter(|&dt| dt > 0.0)
        .collect()
}

/// Fits the failure process of a telemetry store, or `None` with fewer
/// than `min_samples` interarrivals.
pub fn fit_failure_process(view: &TelemetryView, min_samples: usize) -> Option<WeibullFit> {
    let gaps = failure_interarrivals_hours(view);
    if gaps.len() < min_samples {
        return None;
    }
    Some(fit_weibull(&gaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_sim_core::rng::SimRng;

    #[test]
    fn exponential_samples_fit_shape_one() {
        let mut rng = SimRng::seed_from(1);
        let samples: Vec<f64> = (0..5000).map(|_| rng.exponential(0.5)).collect();
        let fit = fit_weibull(&samples);
        assert!((fit.shape - 1.0).abs() < 0.05, "shape={}", fit.shape);
        assert!((fit.scale - 2.0).abs() < 0.1, "scale={}", fit.scale);
        assert!(fit.ks_distance < 0.03, "ks={}", fit.ks_distance);
    }

    #[test]
    fn weibull_samples_recover_parameters() {
        let mut rng = SimRng::seed_from(2);
        for &(shape, scale) in &[(0.7f64, 3.0f64), (2.0, 1.5)] {
            let samples: Vec<f64> = (0..5000).map(|_| rng.weibull(shape, scale)).collect();
            let fit = fit_weibull(&samples);
            assert!(
                (fit.shape - shape).abs() < 0.08,
                "shape {} vs {shape}",
                fit.shape
            );
            assert!(
                (fit.scale - scale).abs() / scale < 0.05,
                "scale {} vs {scale}",
                fit.scale
            );
        }
    }

    #[test]
    fn exponential_fit_matches_rate() {
        let mut rng = SimRng::seed_from(3);
        let samples: Vec<f64> = (0..5000).map(|_| rng.exponential(2.0)).collect();
        let (rate, ks) = fit_exponential(&samples);
        assert!((rate - 2.0).abs() < 0.08, "rate={rate}");
        assert!(ks < 0.03);
    }

    #[test]
    fn bursty_samples_have_low_shape() {
        // A mixture of fast and slow regimes (bursts) is over-dispersed.
        let mut rng = SimRng::seed_from(4);
        let samples: Vec<f64> = (0..4000)
            .map(|i| {
                if i % 10 == 0 {
                    rng.exponential(0.05) // long gaps
                } else {
                    rng.exponential(5.0) // bursts
                }
            })
            .collect();
        let fit = fit_weibull(&samples);
        assert!(fit.shape < 0.8, "shape={}", fit.shape);
    }

    #[test]
    fn ks_detects_wrong_model() {
        let mut rng = SimRng::seed_from(5);
        let samples: Vec<f64> = (0..3000).map(|_| rng.weibull(3.0, 1.0)).collect();
        let (_, ks_exp) = fit_exponential(&samples);
        let fit = fit_weibull(&samples);
        assert!(
            ks_exp > 4.0 * fit.ks_distance,
            "exp={ks_exp} weibull={}",
            fit.ks_distance
        );
    }

    #[test]
    #[should_panic(expected = "need samples")]
    fn empty_rejected() {
        let _ = fit_weibull(&[]);
    }
}
