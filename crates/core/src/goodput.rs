//! Cluster goodput-loss accounting (paper Fig. 8, Obs. 9).
//!
//! Estimates lost goodput from hardware failures and from their
//! second-order effect — preemptions caused by failed high-priority jobs
//! requeueing. Following the paper, every job is assumed to checkpoint
//! hourly, so an interruption wastes at most 30 minutes of work:
//! `lost = min(runtime, 30 min) × GPUs`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rsc_sched::job::JobStatus;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

use crate::attribution::{attribute_failures, AttributionConfig};

/// Lost goodput for one job-size bucket, in GPU-hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputLossPoint {
    /// Job-size bucket (power-of-two GPUs).
    pub gpus: u32,
    /// GPU-hours lost to first-order hardware failures.
    pub failure_loss_gpu_hours: f64,
    /// GPU-hours lost to second-order preemptions (victims of a failed
    /// job's requeue).
    pub preemption_loss_gpu_hours: f64,
    /// GPU-hours of already-banked work discarded because checkpoints were
    /// unreadable at restore time (fallible recovery, re-done work).
    pub fallback_loss_gpu_hours: f64,
}

/// Full goodput-loss accounting for a telemetry store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoodputLoss {
    /// Per-bucket losses, ascending by size.
    pub by_size: Vec<GoodputLossPoint>,
    /// Total first-order loss, GPU-hours.
    pub total_failure_loss: f64,
    /// Total second-order loss, GPU-hours.
    pub total_preemption_loss: f64,
    /// Total checkpoint-fallback loss, GPU-hours.
    pub total_fallback_loss: f64,
}

impl GoodputLoss {
    /// Fraction of all lost goodput due to second-order preemptions
    /// (the paper reports ~16% on RSC-1).
    pub fn preemption_share(&self) -> f64 {
        let total = self.total_failure_loss + self.total_preemption_loss;
        if total <= 0.0 {
            return 0.0;
        }
        self.total_preemption_loss / total
    }
}

/// Lost work for one interrupted record under hourly checkpointing.
fn lost_gpu_hours(runtime: SimDuration, gpus: u32) -> f64 {
    runtime.min(SimDuration::from_mins(30)).as_hours() * gpus as f64
}

/// Computes Fig. 8: lost goodput by job size from attributed failures and
/// instigated preemptions.
pub fn goodput_loss(view: &TelemetryView, config: &AttributionConfig) -> GoodputLoss {
    // First-order: NODE_FAIL / REQUEUED always; FAILED only when attributed.
    let attributions = attribute_failures(view, config);
    let mut first_order: Vec<(u32, f64)> = Vec::new();
    for a in &attributions {
        let r = &view.jobs()[a.record_index];
        let is_hw = matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued)
            || (r.status == JobStatus::Failed && a.is_attributed());
        if is_hw {
            first_order.push((r.gpus, lost_gpu_hours(r.runtime(), r.gpus)));
        }
    }

    // Second-order: preempted records with a recorded instigator.
    let second_order: Vec<(u32, f64)> = view
        .jobs()
        .iter()
        .filter(|r| r.status == JobStatus::Preempted && r.instigator.is_some())
        .map(|r| (r.gpus, lost_gpu_hours(r.runtime(), r.gpus)))
        .collect();

    let mut buckets: BTreeMap<u32, GoodputLossPoint> = BTreeMap::new();
    let bucket_of = |gpus: u32| gpus.max(1).next_power_of_two();
    for (gpus, loss) in first_order {
        let b = bucket_of(gpus);
        let e = buckets.entry(b).or_insert(GoodputLossPoint {
            gpus: b,
            failure_loss_gpu_hours: 0.0,
            preemption_loss_gpu_hours: 0.0,
            fallback_loss_gpu_hours: 0.0,
        });
        e.failure_loss_gpu_hours += loss;
    }
    for (gpus, loss) in second_order {
        let b = bucket_of(gpus);
        let e = buckets.entry(b).or_insert(GoodputLossPoint {
            gpus: b,
            failure_loss_gpu_hours: 0.0,
            preemption_loss_gpu_hours: 0.0,
            fallback_loss_gpu_hours: 0.0,
        });
        e.preemption_loss_gpu_hours += loss;
    }

    // Third stream: work discarded when a restart's newest checkpoints
    // were unreadable. Priced directly from the fallback events — the lost
    // work was productive time already paid for once.
    for e in view.ckpt_fallbacks() {
        let b = bucket_of(e.gpus);
        let point = buckets.entry(b).or_insert(GoodputLossPoint {
            gpus: b,
            failure_loss_gpu_hours: 0.0,
            preemption_loss_gpu_hours: 0.0,
            fallback_loss_gpu_hours: 0.0,
        });
        point.fallback_loss_gpu_hours += e.lost.as_hours() * e.gpus as f64;
    }

    let by_size: Vec<GoodputLossPoint> = buckets.into_values().collect();
    let total_failure_loss = by_size.iter().map(|p| p.failure_loss_gpu_hours).sum();
    let total_preemption_loss = by_size.iter().map(|p| p.preemption_loss_gpu_hours).sum();
    let total_fallback_loss = by_size.iter().map(|p| p.fallback_loss_gpu_hours).sum();
    GoodputLoss {
        by_size,
        total_failure_loss,
        total_preemption_loss,
        total_fallback_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, NodeId};
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::QosClass;
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;

    fn record(id: u64, gpus: u32, status: JobStatus, runtime_mins: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(0)],
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::from_hours(1)),
            ended_at: SimTime::from_hours(1) + SimDuration::from_mins(runtime_mins),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn loss_caps_at_half_hour() {
        assert!((lost_gpu_hours(SimDuration::from_hours(10), 8) - 4.0).abs() < 1e-12);
        assert!((lost_gpu_hours(SimDuration::from_mins(10), 8) - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn node_fails_count_without_attribution() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 1024, JobStatus::NodeFail, 120));
        let loss = goodput_loss(&store.seal(), &AttributionConfig::paper_default());
        assert!((loss.total_failure_loss - 512.0).abs() < 1e-9); // 0.5h × 1024
        assert_eq!(loss.total_preemption_loss, 0.0);
    }

    #[test]
    fn plain_user_failures_do_not_count() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 64, JobStatus::Failed, 120));
        let loss = goodput_loss(&store.seal(), &AttributionConfig::paper_default());
        assert_eq!(loss.total_failure_loss, 0.0);
    }

    #[test]
    fn instigated_preemptions_count_as_second_order() {
        let mut store = TelemetryStore::new("t", 4);
        let mut victim = record(2, 16, JobStatus::Preempted, 240);
        victim.instigator = Some(JobId::new(9));
        victim.preempted_by = Some(JobId::new(9));
        store.push_job(victim);
        // A preemption NOT caused by a failure requeue is excluded.
        let mut fresh = record(3, 16, JobStatus::Preempted, 240);
        fresh.preempted_by = Some(JobId::new(10));
        store.push_job(fresh);
        let loss = goodput_loss(&store.seal(), &AttributionConfig::paper_default());
        assert!((loss.total_preemption_loss - 8.0).abs() < 1e-9); // 0.5h × 16
        assert!((loss.preemption_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_fallbacks_price_as_fallback_loss() {
        use rsc_telemetry::store::CheckpointFallbackEvent;
        let mut store = TelemetryStore::new("t", 4);
        store.push_ckpt_fallback(CheckpointFallbackEvent {
            at: SimTime::from_hours(5),
            job: JobId::new(1),
            gpus: 128,
            intervals: 2,
            lost: SimDuration::from_hours(2),
        });
        let loss = goodput_loss(&store.seal(), &AttributionConfig::paper_default());
        assert!((loss.total_fallback_loss - 256.0).abs() < 1e-9); // 2h × 128
        assert_eq!(loss.by_size.len(), 1);
        assert_eq!(loss.by_size[0].gpus, 128);
        assert!((loss.by_size[0].fallback_loss_gpu_hours - 256.0).abs() < 1e-9);
        // Fallback loss is its own stream: first/second-order stay zero.
        assert_eq!(loss.total_failure_loss, 0.0);
        assert_eq!(loss.total_preemption_loss, 0.0);
    }

    #[test]
    fn buckets_aggregate_by_power_of_two() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 1000, JobStatus::NodeFail, 120));
        store.push_job(record(2, 1024, JobStatus::NodeFail, 120));
        let loss = goodput_loss(&store.seal(), &AttributionConfig::paper_default());
        assert_eq!(loss.by_size.len(), 1);
        assert_eq!(loss.by_size[0].gpus, 1024);
    }
}
