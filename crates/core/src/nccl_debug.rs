//! NCCL-timeout differential diagnosis (paper §V, "Debugging Tools").
//!
//! A NCCL timeout only says *some* rank noticed a collective not
//! completing; the culprit may be a crashed rank, a user deadlock
//! (mismatched collective order under SPMD), or network hardware. The
//! paper's proposed tooling logs which ranks started each collective and
//! the dependencies between them, then finds **the first collective where
//! some ranks entered and others did not** — this module implements that
//! analysis over per-rank collective traces.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The collective operations that appear in training loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// All-reduce (gradient exchange).
    AllReduce,
    /// All-gather (sharded parameter collection).
    AllGather,
    /// Reduce-scatter.
    ReduceScatter,
    /// Broadcast.
    Broadcast,
    /// Barrier/synchronize.
    Barrier,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Barrier => "barrier",
        };
        f.write_str(s)
    }
}

/// One logged collective operation on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveOp {
    /// Position in the rank's issue order.
    pub seq: u64,
    /// The operation issued.
    pub kind: CollectiveKind,
    /// Whether the rank entered the collective.
    pub entered: bool,
    /// Whether the rank saw the collective complete.
    pub exited: bool,
}

/// The collective log of one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankTrace {
    /// The rank id.
    pub rank: u32,
    /// Its issued collectives in order.
    pub ops: Vec<CollectiveOp>,
}

/// What the differential diagnosis concluded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeoutVerdict {
    /// All collectives completed on all ranks: no hang in this window.
    NoHangObserved,
    /// Ranks issued *different operations* at the same sequence point —
    /// the SPMD-mismatch deadlock the paper calls out (user bug).
    MismatchedCollectives {
        /// The first divergent sequence number.
        seq: u64,
        /// The operation variants observed and the ranks issuing each.
        variants: Vec<(CollectiveKind, Vec<u32>)>,
    },
    /// Some ranks never entered the collective: they are stuck *before*
    /// it (crashed, or blocked on e.g. a data loader) — investigate those
    /// ranks' hosts first (user or system software domain).
    MissingRanks {
        /// The first incomplete sequence number.
        seq: u64,
        /// Ranks that never arrived.
        missing: Vec<u32>,
    },
    /// Every rank entered but none left: the collective itself wedged —
    /// suspect the network fabric between the participants (hardware
    /// domain).
    StuckInCollective {
        /// The wedged sequence number.
        seq: u64,
    },
}

/// Diagnoses a set of rank traces, returning the verdict for the first
/// problematic collective (issues later in the program are shadowed by
/// the first hang, as in real timelines).
///
/// # Panics
///
/// Panics if `traces` is empty.
pub fn diagnose(traces: &[RankTrace]) -> TimeoutVerdict {
    assert!(!traces.is_empty(), "need at least one rank trace");
    let all_ranks: Vec<u32> = traces.iter().map(|t| t.rank).collect();
    let max_seq = traces
        .iter()
        .flat_map(|t| t.ops.iter().map(|o| o.seq))
        .max()
        .unwrap_or(0);

    for seq in 0..=max_seq {
        // Gather each rank's op at this sequence point.
        let mut by_kind: BTreeMap<CollectiveKind, Vec<u32>> = BTreeMap::new();
        let mut entered: Vec<u32> = Vec::new();
        let mut exited: Vec<u32> = Vec::new();
        let mut issued: Vec<u32> = Vec::new();
        for t in traces {
            if let Some(op) = t.ops.iter().find(|o| o.seq == seq) {
                issued.push(t.rank);
                by_kind.entry(op.kind).or_default().push(t.rank);
                if op.entered {
                    entered.push(t.rank);
                }
                if op.exited {
                    exited.push(t.rank);
                }
            }
        }
        if issued.is_empty() {
            continue;
        }
        // Different kinds at the same point: SPMD mismatch (deadlock).
        if by_kind.len() > 1 {
            return TimeoutVerdict::MismatchedCollectives {
                seq,
                variants: by_kind.into_iter().collect(),
            };
        }
        // Some ranks never issued/entered this collective at all.
        if entered.len() < all_ranks.len() {
            let missing: Vec<u32> = all_ranks
                .iter()
                .copied()
                .filter(|r| !entered.contains(r))
                .collect();
            return TimeoutVerdict::MissingRanks { seq, missing };
        }
        // Everyone entered; did everyone leave?
        if exited.len() < all_ranks.len() {
            if exited.is_empty() {
                return TimeoutVerdict::StuckInCollective { seq };
            }
            // Partial exit: the stragglers' network paths are suspect;
            // report them as "missing" from completion.
            let missing: Vec<u32> = all_ranks
                .iter()
                .copied()
                .filter(|r| !exited.contains(r))
                .collect();
            return TimeoutVerdict::MissingRanks { seq, missing };
        }
    }
    TimeoutVerdict::NoHangObserved
}

/// Builds a healthy trace set: `ranks` ranks all completing `steps`
/// all-reduces (a convenient baseline for tests and fault injection).
pub fn healthy_traces(ranks: u32, steps: u64) -> Vec<RankTrace> {
    (0..ranks)
        .map(|rank| RankTrace {
            rank,
            ops: (0..steps)
                .map(|seq| CollectiveOp {
                    seq,
                    kind: CollectiveKind::AllReduce,
                    entered: true,
                    exited: true,
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_run_reports_no_hang() {
        let traces = healthy_traces(8, 10);
        assert_eq!(diagnose(&traces), TimeoutVerdict::NoHangObserved);
    }

    #[test]
    fn crashed_rank_is_identified() {
        let mut traces = healthy_traces(4, 10);
        // Rank 2 dies before step 6: it never issues seq >= 6; the others
        // enter seq 6 and hang (no exit).
        traces[2].ops.truncate(6);
        for t in traces.iter_mut() {
            for op in t.ops.iter_mut() {
                if op.seq >= 6 {
                    op.exited = false;
                }
            }
        }
        match diagnose(&traces) {
            TimeoutVerdict::MissingRanks { seq, missing } => {
                assert_eq!(seq, 6);
                assert_eq!(missing, vec![2]);
            }
            v => panic!("wrong verdict: {v:?}"),
        }
    }

    #[test]
    fn spmd_mismatch_is_identified() {
        let mut traces = healthy_traces(4, 5);
        // Rank 3 issues an all-gather where the others all-reduce at seq 2
        // (classic branch-divergence bug); nobody completes it.
        for t in traces.iter_mut() {
            for op in t.ops.iter_mut() {
                if op.seq >= 2 {
                    op.exited = false;
                }
            }
        }
        traces[3].ops[2].kind = CollectiveKind::AllGather;
        match diagnose(&traces) {
            TimeoutVerdict::MismatchedCollectives { seq, variants } => {
                assert_eq!(seq, 2);
                assert_eq!(variants.len(), 2);
                let gather_ranks = variants
                    .iter()
                    .find(|(k, _)| *k == CollectiveKind::AllGather)
                    .map(|(_, r)| r.clone())
                    .unwrap();
                assert_eq!(gather_ranks, vec![3]);
            }
            v => panic!("wrong verdict: {v:?}"),
        }
    }

    #[test]
    fn network_wedge_is_identified() {
        let mut traces = healthy_traces(4, 5);
        // Everyone enters seq 3, nobody leaves: fabric suspect.
        for t in traces.iter_mut() {
            for op in t.ops.iter_mut() {
                if op.seq == 3 {
                    op.exited = false;
                }
                if op.seq > 3 {
                    op.entered = false;
                    op.exited = false;
                }
            }
        }
        // Ranks that never "entered" seq 4 would normally trip the missing
        // check at seq 4, but seq 3 fires first.
        match diagnose(&traces) {
            TimeoutVerdict::StuckInCollective { seq } => assert_eq!(seq, 3),
            v => panic!("wrong verdict: {v:?}"),
        }
    }

    #[test]
    fn partial_exit_blames_stragglers() {
        let mut traces = healthy_traces(4, 4);
        // Only rank 1 fails to exit seq 2: its links are suspect.
        traces[1].ops[2].exited = false;
        match diagnose(&traces) {
            TimeoutVerdict::MissingRanks { seq, missing } => {
                assert_eq!(seq, 2);
                assert_eq!(missing, vec![1]);
            }
            v => panic!("wrong verdict: {v:?}"),
        }
    }

    #[test]
    fn first_problem_shadows_later_ones() {
        let mut traces = healthy_traces(3, 10);
        traces[0].ops[4].exited = false; // problem at 4
        traces[1].ops[7].kind = CollectiveKind::Barrier; // later mismatch
        match diagnose(&traces) {
            TimeoutVerdict::MissingRanks { seq, .. } => assert_eq!(seq, 4),
            v => panic!("wrong verdict: {v:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_traces_rejected() {
        let _ = diagnose(&[]);
    }
}
