//! Node availability and repair-time analysis.
//!
//! Derives per-node downtime from the remediation enter/exit event stream:
//! measured MTTR distributions, fleet availability, and the worst
//! offenders — the operational view behind the paper's Obs. 1 ("cluster
//! uptime is critical") and the capacity cost of remediation.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sim_core::stats::StreamingStats;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::NodeEventKind;
use rsc_telemetry::view::TelemetryView;

/// One node's availability summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAvailability {
    /// The node.
    pub node: NodeId,
    /// Completed remediation visits.
    pub repairs: u32,
    /// Total time out of service.
    pub downtime: SimDuration,
    /// Fraction of the measurement window the node was in service.
    pub availability: f64,
}

/// Fleet-wide availability summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAvailability {
    /// Per-node rows, ascending by node id.
    pub nodes: Vec<NodeAvailability>,
    /// Mean time to repair across completed visits, hours.
    pub mttr_hours: f64,
    /// 90th-percentile repair time, hours.
    pub mttr_p90_hours: f64,
    /// Fleet availability: in-service node-time / total node-time.
    pub fleet_availability: f64,
    /// Capacity lost to remediation, node-days.
    pub lost_node_days: f64,
}

/// Computes fleet availability from a sealed view's node events.
///
/// Remediation intervals still open at the horizon are charged up to the
/// horizon.
pub fn fleet_availability(view: &TelemetryView) -> FleetAvailability {
    let n = view.num_nodes() as usize;
    let horizon = view.horizon();
    let mut down_since: Vec<Option<SimTime>> = vec![None; n];
    let mut downtime: Vec<SimDuration> = vec![SimDuration::ZERO; n];
    let mut repairs: Vec<u32> = vec![0; n];
    let mut repair_times: Vec<f64> = Vec::new();

    for e in view.node_events() {
        let i = e.node.as_usize();
        match e.kind {
            NodeEventKind::EnterRemediation => {
                if down_since[i].is_none() {
                    down_since[i] = Some(e.at);
                }
            }
            NodeEventKind::ExitRemediation => {
                if let Some(start) = down_since[i].take() {
                    let d = e.at.saturating_since(start);
                    downtime[i] += d;
                    repairs[i] += 1;
                    repair_times.push(d.as_hours());
                }
            }
            // Drains and the fallible-remediation transitions (failed
            // attempts, escalations, probation) all happen while the node's
            // remediation interval is already open; quarantine simply never
            // closes it, so the open interval is charged to the horizon
            // below.
            NodeEventKind::Drain
            | NodeEventKind::RepairAttemptFailed
            | NodeEventKind::RepairEscalated
            | NodeEventKind::EnterProbation
            | NodeEventKind::ProbationPassed
            | NodeEventKind::ProbationFailed
            | NodeEventKind::Quarantined => {}
        }
    }
    // Open intervals run to the horizon.
    for (i, open) in down_since.iter().enumerate() {
        if let Some(start) = open {
            downtime[i] += horizon.saturating_since(*start);
        }
    }

    let window = horizon.as_days().max(f64::MIN_POSITIVE);
    let nodes: Vec<NodeAvailability> = (0..n)
        .map(|i| NodeAvailability {
            node: NodeId::new(i as u32),
            repairs: repairs[i],
            downtime: downtime[i],
            availability: 1.0 - (downtime[i].as_days() / window).min(1.0),
        })
        .collect();

    let stats: StreamingStats = repair_times.iter().copied().collect();
    let mut sorted = repair_times.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite repair times"));
    let p90 = rsc_sim_core::stats::quantile_sorted(&sorted, 0.90).unwrap_or(0.0);
    let lost_node_days: f64 = nodes.iter().map(|a| a.downtime.as_days()).sum();
    let fleet = 1.0 - lost_node_days / (window * n.max(1) as f64);

    FleetAvailability {
        nodes,
        mttr_hours: stats.mean(),
        mttr_p90_hours: p90,
        fleet_availability: fleet,
        lost_node_days,
    }
}

/// The `k` nodes with the most downtime, descending.
pub fn worst_nodes(fleet: &FleetAvailability, k: usize) -> Vec<&NodeAvailability> {
    let mut refs: Vec<&NodeAvailability> = fleet.nodes.iter().collect();
    refs.sort_by(|a, b| b.downtime.cmp(&a.downtime).then(a.node.cmp(&b.node)));
    refs.truncate(k);
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_telemetry::store::NodeEvent;
    use rsc_telemetry::TelemetryStore;

    fn store_with(events: Vec<(u32, u64, NodeEventKind)>, horizon_h: u64) -> TelemetryStore {
        let mut store = TelemetryStore::new("t", 4);
        for (node, at_h, kind) in events {
            store.push_node_event(NodeEvent {
                node: NodeId::new(node),
                at: SimTime::from_hours(at_h),
                kind,
            });
        }
        store.set_horizon(SimTime::from_hours(horizon_h));
        store
    }

    #[test]
    fn downtime_accumulates_per_visit() {
        use NodeEventKind::*;
        let store = store_with(
            vec![
                (1, 10, EnterRemediation),
                (1, 14, ExitRemediation),
                (1, 50, EnterRemediation),
                (1, 56, ExitRemediation),
            ],
            100,
        );
        let fleet = fleet_availability(&store.seal());
        let node1 = &fleet.nodes[1];
        assert_eq!(node1.repairs, 2);
        assert_eq!(node1.downtime, SimDuration::from_hours(10));
        assert!((node1.availability - (1.0 - 10.0 / 100.0)).abs() < 1e-9);
        assert!((fleet.mttr_hours - 5.0).abs() < 1e-9);
    }

    #[test]
    fn open_interval_charged_to_horizon() {
        use NodeEventKind::*;
        let store = store_with(vec![(2, 90, EnterRemediation)], 100);
        let fleet = fleet_availability(&store.seal());
        assert_eq!(fleet.nodes[2].downtime, SimDuration::from_hours(10));
        assert_eq!(fleet.nodes[2].repairs, 0); // visit never completed
    }

    #[test]
    fn fleet_availability_aggregates() {
        use NodeEventKind::*;
        // One of four nodes down for the whole 100 h window.
        let store = store_with(vec![(0, 0, EnterRemediation)], 100);
        let fleet = fleet_availability(&store.seal());
        assert!((fleet.fleet_availability - 0.75).abs() < 1e-9);
        assert!((fleet.lost_node_days - 100.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn worst_nodes_ordering() {
        use NodeEventKind::*;
        let store = store_with(
            vec![
                (0, 0, EnterRemediation),
                (0, 10, ExitRemediation),
                (3, 0, EnterRemediation),
                (3, 50, ExitRemediation),
            ],
            100,
        );
        let fleet = fleet_availability(&store.seal());
        let worst = worst_nodes(&fleet, 2);
        assert_eq!(worst[0].node, NodeId::new(3));
        assert_eq!(worst[1].node, NodeId::new(0));
    }

    #[test]
    fn empty_store_is_fully_available() {
        let mut store = TelemetryStore::new("t", 4);
        store.set_horizon(SimTime::from_days(10));
        let fleet = fleet_availability(&store.seal());
        assert_eq!(fleet.fleet_availability, 1.0);
        assert_eq!(fleet.mttr_hours, 0.0);
    }
}
