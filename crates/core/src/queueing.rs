//! Queue-wait analysis.
//!
//! Fig. 9's one systematic deviation — the largest RSC-1 job runs beating
//! their ETTR prediction — traces to "actual wait times for these larger
//! job runs being shorter than average". This module computes the
//! wait-time statistics by job size and QoS tier that make such effects
//! visible.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rsc_sched::job::QosClass;
use rsc_sim_core::stats::StreamingStats;
use rsc_telemetry::view::TelemetryView;

/// Queue-wait summary for one (size bucket, QoS) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitBucket {
    /// Lower edge of the power-of-two GPU bucket.
    pub gpus_lo: u32,
    /// Scheduling tier.
    pub qos: QosClass,
    /// Number of started attempts in the cell.
    pub count: u64,
    /// Mean wait, hours.
    pub mean_wait_hours: f64,
    /// Maximum wait observed, hours.
    pub max_wait_hours: f64,
}

/// Computes wait statistics per (size, QoS) over all started attempts.
pub fn wait_by_size_and_qos(view: &TelemetryView) -> Vec<WaitBucket> {
    let mut cells: BTreeMap<(u32, u8), StreamingStats> = BTreeMap::new();
    for r in view.jobs() {
        if r.started_at.is_none() {
            continue;
        }
        let bucket = r.gpus.max(1).next_power_of_two();
        let qos_key = match r.qos {
            QosClass::Low => 0u8,
            QosClass::Normal => 1,
            QosClass::High => 2,
        };
        cells
            .entry((bucket, qos_key))
            .or_default()
            .push(r.queue_wait().as_hours());
    }
    cells
        .into_iter()
        .map(|((gpus_lo, qos_key), stats)| WaitBucket {
            gpus_lo,
            qos: match qos_key {
                0 => QosClass::Low,
                1 => QosClass::Normal,
                _ => QosClass::High,
            },
            count: stats.count(),
            mean_wait_hours: stats.mean(),
            max_wait_hours: stats.max(),
        })
        .collect()
}

/// The mean queue wait (hours) across every started attempt — the `q`
/// parameter the analytical ETTR model wants.
pub fn mean_wait_hours(view: &TelemetryView) -> f64 {
    let mut stats = StreamingStats::new();
    for r in view.jobs() {
        if r.started_at.is_some() {
            stats.push(r.queue_wait().as_hours());
        }
    }
    stats.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, NodeId};
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::JobStatus;
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;

    fn record(id: u64, gpus: u32, qos: QosClass, wait_hours: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt: 0,
            run: None,
            gpus,
            qos,
            nodes: vec![NodeId::new(0)],
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::from_hours(wait_hours)),
            ended_at: SimTime::from_hours(wait_hours + 2),
            status: JobStatus::Completed,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn cells_partition_by_size_and_qos() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 8, QosClass::Low, 4));
        store.push_job(record(2, 8, QosClass::Low, 2));
        store.push_job(record(3, 8, QosClass::High, 0));
        store.push_job(record(4, 256, QosClass::High, 1));
        let buckets = wait_by_size_and_qos(&store.seal());
        assert_eq!(buckets.len(), 3);
        let low8 = buckets
            .iter()
            .find(|b| b.gpus_lo == 8 && b.qos == QosClass::Low)
            .unwrap();
        assert_eq!(low8.count, 2);
        assert!((low8.mean_wait_hours - 3.0).abs() < 1e-9);
        assert!((low8.max_wait_hours - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_wait_over_all() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, 8, QosClass::Low, 4));
        store.push_job(record(2, 8, QosClass::High, 0));
        assert!((mean_wait_hours(&store.seal()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn never_started_records_skipped() {
        let mut store = TelemetryStore::new("t", 4);
        let mut r = record(1, 8, QosClass::Low, 4);
        r.started_at = None;
        store.push_job(r);
        let view = store.seal();
        assert!(wait_by_size_and_qos(&view).is_empty());
        assert_eq!(mean_wait_hours(&view), 0.0);
    }
}
