//! Mean-time-to-failure estimation and projection (paper Fig. 7, Obs. 8).
//!
//! Empirical MTTF per job-size bucket, Gamma-posterior confidence
//! intervals, the node-failure-rate estimate `r_f`, and the theoretical
//! `MTTF = 1 / (N_nodes · r_f)` projection that the paper validates
//! against jobs up to 4k GPUs and extrapolates to 131k.

use serde::{Deserialize, Serialize};

use rsc_sim_core::special::gamma_quantile;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

use crate::attribution::{attribute_failures, AttributionConfig};
use rsc_sched::job::JobStatus;

/// Which job endings count as failures for MTTF purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureScope {
    /// Every FAILED / NODE_FAIL / REQUEUED ending (Fig. 7's empirical
    /// curve: user and infra failures both interrupt training).
    AllFailures,
    /// Only infrastructure failures: NODE_FAIL, REQUEUED, and FAILED with a
    /// health-check attribution (the basis of `r_f`).
    InfraOnly,
}

/// MTTF estimate for one job-size bucket.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfPoint {
    /// Bucket label: job size in GPUs (rounded up to a multiple of 8).
    pub gpus: u32,
    /// Number of failures observed.
    pub failures: u64,
    /// Total runtime across jobs in the bucket, hours.
    pub exposure_hours: f64,
    /// Point estimate of MTTF, hours (`exposure / failures`).
    pub mttf_hours: f64,
    /// 90% confidence interval on MTTF, hours (Gamma posterior on the
    /// rate). `None` when no failures were observed.
    pub ci90: Option<(f64, f64)>,
}

/// Rounds a GPU count up to the next multiple of 8 (whole servers), as the
/// paper does for Fig. 7.
pub fn round_up_to_server(gpus: u32) -> u32 {
    gpus.div_ceil(8) * 8
}

/// Buckets job sizes into powers of two of servers: 8, 16, 32, ... GPUs.
pub fn power_of_two_bucket(gpus: u32) -> u32 {
    let servers = round_up_to_server(gpus) / 8;
    8 * servers.next_power_of_two()
}

/// Computes empirical MTTF per job-size bucket.
///
/// Exposure is each record's runtime; a record counts as a failure per the
/// scope. Buckets are powers of two in servers.
pub fn mttf_by_job_size(
    view: &TelemetryView,
    scope: FailureScope,
    config: &AttributionConfig,
) -> Vec<MttfPoint> {
    // Precompute which record indices are infra failures when needed.
    let infra: std::collections::HashSet<usize> = match scope {
        FailureScope::AllFailures => std::collections::HashSet::new(),
        FailureScope::InfraOnly => attribute_failures(view, config)
            .into_iter()
            .filter(|a| {
                let status = view.jobs()[a.record_index].status;
                matches!(status, JobStatus::NodeFail | JobStatus::Requeued)
                    || (status == JobStatus::Failed && a.is_attributed())
            })
            .map(|a| a.record_index)
            .collect(),
    };

    let mut buckets: std::collections::BTreeMap<u32, (u64, f64)> =
        std::collections::BTreeMap::new();
    for (i, r) in view.jobs().iter().enumerate() {
        if r.started_at.is_none() {
            continue;
        }
        let bucket = power_of_two_bucket(r.gpus);
        let entry = buckets.entry(bucket).or_insert((0, 0.0));
        entry.1 += r.runtime().as_hours();
        let failed = match scope {
            FailureScope::AllFailures => matches!(
                r.status,
                JobStatus::Failed | JobStatus::NodeFail | JobStatus::Requeued
            ),
            FailureScope::InfraOnly => infra.contains(&i),
        };
        if failed {
            entry.0 += 1;
        }
    }

    buckets
        .into_iter()
        .filter(|(_, (_, exposure))| *exposure > 0.0)
        .map(|(gpus, (failures, exposure_hours))| {
            let mttf_hours = if failures > 0 {
                exposure_hours / failures as f64
            } else {
                f64::INFINITY
            };
            let ci90 = gamma_mttf_ci(failures, exposure_hours, 0.90);
            MttfPoint {
                gpus,
                failures,
                exposure_hours,
                mttf_hours,
                ci90,
            }
        })
        .collect()
}

/// 90% (or other) CI on MTTF from a Gamma posterior over the failure rate:
/// with `n` failures in exposure `T`, rate ~ Gamma(shape = n, scale = 1/T),
/// and MTTF bounds are the reciprocals of the rate quantiles.
pub fn gamma_mttf_ci(failures: u64, exposure_hours: f64, confidence: f64) -> Option<(f64, f64)> {
    if failures == 0 || exposure_hours <= 0.0 {
        return None;
    }
    let alpha = (1.0 - confidence) / 2.0;
    let shape = failures as f64;
    let scale = 1.0 / exposure_hours;
    let rate_lo = gamma_quantile(alpha, shape, scale);
    let rate_hi = gamma_quantile(1.0 - alpha, shape, scale);
    Some((1.0 / rate_hi, 1.0 / rate_lo))
}

/// The cluster node-failure rate `r_f`, failures per node-day, estimated
/// the paper's way: infra failures of jobs larger than `min_gpus` GPUs,
/// divided by total node-days of runtime of those jobs.
pub fn estimate_node_failure_rate(
    view: &TelemetryView,
    config: &AttributionConfig,
    min_gpus: u32,
) -> f64 {
    let attributions = attribute_failures(view, config);
    let mut failures = 0u64;
    for a in &attributions {
        let r = &view.jobs()[a.record_index];
        if r.gpus <= min_gpus {
            continue;
        }
        let is_infra = matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued)
            || (r.status == JobStatus::Failed && a.is_attributed());
        if is_infra {
            failures += 1;
        }
    }
    let node_days = view.node_days_of_runtime(min_gpus);
    if node_days <= 0.0 {
        return 0.0;
    }
    failures as f64 / node_days
}

/// The status-only node-failure rate: NODE_FAIL / REQUEUED endings of
/// jobs larger than `min_gpus` GPUs over their node-days of runtime.
///
/// This is the estimate an *online* consumer can maintain incrementally —
/// it needs no health-event attribution pass, only job records — and the
/// batch anchor the `rsc-monitor` streaming estimator is proven against.
/// It undercounts [`estimate_node_failure_rate`] by the FAILED-with-
/// attribution term, so treat it as a lower bound on `r_f`.
pub fn estimate_status_only_failure_rate(view: &TelemetryView, min_gpus: u32) -> f64 {
    let failures = view
        .jobs()
        .iter()
        .filter(|r| r.gpus > min_gpus)
        .filter(|r| matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued))
        .count() as u64;
    let node_days = view.node_days_of_runtime(min_gpus);
    if node_days <= 0.0 {
        return 0.0;
    }
    failures as f64 / node_days
}

/// Theoretical MTTF projection from a node failure rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MttfProjection {
    /// Failures per node-day.
    pub r_f: f64,
}

impl MttfProjection {
    /// Creates a projection from a failure rate (per node-day).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(r_f: f64) -> Self {
        assert!(r_f > 0.0 && r_f.is_finite(), "rate must be positive");
        MttfProjection { r_f }
    }

    /// Projected MTTF for a job spanning `gpus` GPUs (8 per node).
    pub fn mttf(&self, gpus: u32) -> SimDuration {
        let nodes = (round_up_to_server(gpus) / 8) as f64;
        SimDuration::from_days_f64(1.0 / (nodes * self.r_f))
    }

    /// Projected MTTF in hours.
    pub fn mttf_hours(&self, gpus: u32) -> f64 {
        self.mttf(gpus).as_hours()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_and_buckets() {
        assert_eq!(round_up_to_server(1), 8);
        assert_eq!(round_up_to_server(8), 8);
        assert_eq!(round_up_to_server(9), 16);
        assert_eq!(power_of_two_bucket(24), 32);
        assert_eq!(power_of_two_bucket(1024), 1024);
        assert_eq!(power_of_two_bucket(1025), 2048);
    }

    #[test]
    fn paper_projection_numbers() {
        // r_f = 6.50 per 1000 node-days (RSC-1, §III).
        let proj = MttfProjection::new(6.50e-3);
        // 16,384 GPUs → 2,048 nodes → MTTF ≈ 1.8 h.
        assert!((proj.mttf_hours(16_384) - 1.80).abs() < 0.03);
        // 131,072 GPUs → MTTF ≈ 0.23 h.
        assert!((proj.mttf_hours(131_072) - 0.225).abs() < 0.01);
        // 100k GPUs → ≈ 15 minutes.
        let mins_100k = proj.mttf_hours(100_000) * 60.0;
        assert!((mins_100k - 17.7).abs() < 1.0, "{mins_100k}");
    }

    #[test]
    fn projection_scales_inversely() {
        let proj = MttfProjection::new(1e-3);
        let m1 = proj.mttf_hours(1024);
        let m2 = proj.mttf_hours(2048);
        assert!((m1 / m2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_ci_brackets_point_estimate() {
        let (lo, hi) = gamma_mttf_ci(25, 1000.0, 0.90).unwrap();
        let point = 1000.0 / 25.0;
        assert!(lo < point && point < hi, "({lo}, {point}, {hi})");
        // More data → tighter interval.
        let (lo2, hi2) = gamma_mttf_ci(2500, 100_000.0, 0.90).unwrap();
        assert!((hi2 - lo2) / (1000.0 / 25.0) < (hi - lo) / point);
    }

    #[test]
    fn gamma_ci_none_without_failures() {
        assert!(gamma_mttf_ci(0, 100.0, 0.9).is_none());
        assert!(gamma_mttf_ci(5, 0.0, 0.9).is_none());
    }
}
