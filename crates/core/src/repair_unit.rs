//! Repair-unit economics (paper §V).
//!
//! "Future GPU systems, such as the NVIDIA GB200, will change the unit of
//! repair from a server to a rack, creating incentives to avoiding
//! downtime by coping with failure." This module quantifies that shift:
//! when repairing one failed component takes a whole rack out of service,
//! the capacity cost of every failure multiplies by the unit size — unless
//! repairs are deferred and the system routes around the dead component.

use serde::{Deserialize, Serialize};

/// A repair-unit policy for a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairUnitModel {
    /// GPUs per repair unit (8 for a DGX server; 72 for a GB200 NVL72
    /// rack).
    pub gpus_per_unit: u32,
    /// Failures per GPU-day (component-level, assumed uniform).
    pub failure_rate_per_gpu_day: f64,
    /// Mean time to repair a unit once pulled, days.
    pub mttr_days: f64,
    /// Fraction of failures the system can *cope with* in place (§V's
    /// "making unreliability less noticeable"): degraded capacity of one
    /// GPU instead of pulling the unit immediately; the repair is deferred
    /// and batched at no additional downtime.
    pub in_place_tolerance: f64,
}

impl RepairUnitModel {
    /// A DGX-A100-like fleet: server-level repair, no in-place tolerance.
    pub fn dgx_server(failure_rate_per_gpu_day: f64, mttr_days: f64) -> Self {
        RepairUnitModel {
            gpus_per_unit: 8,
            failure_rate_per_gpu_day,
            mttr_days,
            in_place_tolerance: 0.0,
        }
    }

    /// A GB200-NVL72-like fleet: rack-level repair.
    pub fn gb200_rack(failure_rate_per_gpu_day: f64, mttr_days: f64) -> Self {
        RepairUnitModel {
            gpus_per_unit: 72,
            failure_rate_per_gpu_day,
            mttr_days,
            in_place_tolerance: 0.0,
        }
    }

    /// Returns the model with the given in-place fault tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.in_place_tolerance = tolerance.clamp(0.0, 1.0);
        self
    }

    /// Expected fraction of fleet capacity lost to repair downtime.
    ///
    /// Each non-tolerated failure pulls `gpus_per_unit` GPUs for
    /// `mttr_days`; tolerated failures cost one GPU's capacity until the
    /// (deferred, amortized-free) repair.
    pub fn capacity_loss_fraction(&self) -> f64 {
        let pulls = self.failure_rate_per_gpu_day * (1.0 - self.in_place_tolerance);
        let tolerated = self.failure_rate_per_gpu_day * self.in_place_tolerance;
        // Per GPU-day of operation: pulls × unit_size × mttr GPU-days lost
        // to pulled units, plus tolerated × 1 × mttr lost to degraded GPUs.
        let lost = pulls * self.gpus_per_unit as f64 * self.mttr_days + tolerated * self.mttr_days;
        lost.min(1.0)
    }

    /// Effective fleet availability (1 − capacity loss).
    pub fn availability(&self) -> f64 {
        1.0 - self.capacity_loss_fraction()
    }

    /// The in-place tolerance needed for this unit size to match the
    /// capacity loss of a `target` model, or `None` if even full tolerance
    /// cannot get there.
    pub fn tolerance_to_match(&self, target: &RepairUnitModel) -> Option<f64> {
        let goal = target.capacity_loss_fraction();
        // loss(t) = r·mttr·(unit·(1−t) + t); solve for t.
        let r = self.failure_rate_per_gpu_day * self.mttr_days;
        let unit = self.gpus_per_unit as f64;
        if r <= 0.0 {
            return Some(0.0);
        }
        // loss(t) = r·(unit − t·(unit − 1)); t = (unit − goal/r)/(unit − 1)
        let t = (unit - goal / r) / (unit - 1.0);
        if t <= 1.0 {
            Some(t.clamp(0.0, 1.0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RSC-1-like: 6.5e-3 per node-day / 8 GPUs ≈ 8.1e-4 per GPU-day.
    const RATE: f64 = 8.125e-4;

    #[test]
    fn rack_units_multiply_capacity_loss() {
        let server = RepairUnitModel::dgx_server(RATE, 3.0);
        let rack = RepairUnitModel::gb200_rack(RATE, 3.0);
        let ratio = rack.capacity_loss_fraction() / server.capacity_loss_fraction();
        assert!((ratio - 9.0).abs() < 1e-9, "72/8 = 9x, got {ratio}");
        // Concrete: server fleet loses ~2%, rack fleet ~17.5%.
        assert!((server.capacity_loss_fraction() - 0.0195).abs() < 1e-3);
        assert!((rack.capacity_loss_fraction() - 0.1755).abs() < 1e-3);
    }

    #[test]
    fn in_place_tolerance_recovers_availability() {
        let rack = RepairUnitModel::gb200_rack(RATE, 3.0);
        let tolerant = rack.with_tolerance(0.9);
        assert!(tolerant.capacity_loss_fraction() < 0.2 * rack.capacity_loss_fraction());
        assert!(tolerant.availability() > 0.97);
    }

    #[test]
    fn tolerance_to_match_server_units() {
        let server = RepairUnitModel::dgx_server(RATE, 3.0);
        let rack = RepairUnitModel::gb200_rack(RATE, 3.0);
        let needed = rack.tolerance_to_match(&server).expect("achievable");
        // Matching server-level losses needs ~90% of faults tolerated in
        // place — §V's argument for coping rather than repairing.
        assert!((0.85..=0.95).contains(&needed), "needed={needed}");
        let achieved = rack.with_tolerance(needed).capacity_loss_fraction();
        assert!((achieved - server.capacity_loss_fraction()).abs() < 1e-6);
    }

    #[test]
    fn impossible_targets_return_none() {
        let rack = RepairUnitModel::gb200_rack(RATE, 3.0);
        let perfect = RepairUnitModel {
            gpus_per_unit: 1,
            failure_rate_per_gpu_day: 0.0,
            mttr_days: 0.0,
            in_place_tolerance: 0.0,
        };
        // Even full tolerance still costs 1 GPU per failure > 0 loss.
        assert!(rack.tolerance_to_match(&perfect).is_none());
    }

    #[test]
    fn loss_is_monotone_in_unit_size() {
        let mut last = 0.0;
        for unit in [1u32, 8, 18, 72, 144] {
            let m = RepairUnitModel {
                gpus_per_unit: unit,
                failure_rate_per_gpu_day: RATE,
                mttr_days: 3.0,
                in_place_tolerance: 0.0,
            };
            let loss = m.capacity_loss_fraction();
            assert!(loss >= last);
            last = loss;
        }
    }
}
