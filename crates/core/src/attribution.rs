//! Failure attribution by differential diagnosis.
//!
//! Implements the paper's method (§III): a job failure is attributed to a
//! hardware cause if a critical health check fired on one of its nodes
//! within the last 10 minutes of the job's lifetime or 5 minutes after it.
//! When several checks fire (they deliberately overlap), the most specific
//! cause wins; NODE_FAILs with no matching events stay *unattributed*.
//!
//! All functions take a sealed [`TelemetryView`] — window queries are
//! `&self` binary searches, so any number of analyses can share one run.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::JobStatus;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

/// Attribution window parameters (paper defaults: 10 min before the end of
/// the job, 5 min after).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributionConfig {
    /// How far before job end to look for health events.
    pub window_before: SimDuration,
    /// How far after job end to look.
    pub window_after: SimDuration,
}

impl AttributionConfig {
    /// The paper's 10-minute / 5-minute window.
    pub fn paper_default() -> Self {
        AttributionConfig {
            window_before: SimDuration::from_mins(10),
            window_after: SimDuration::from_mins(5),
        }
    }
}

impl Default for AttributionConfig {
    fn default() -> Self {
        AttributionConfig::paper_default()
    }
}

/// The outcome of attributing one failed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Index of the job record in the store.
    pub record_index: usize,
    /// The most likely hardware cause, if any check fired in the window.
    pub cause: Option<FailureSymptom>,
    /// Every check that fired in the window (overlap is expected).
    pub checks: Vec<CheckKind>,
}

impl Attribution {
    /// Whether this failure was attributed to hardware infrastructure.
    pub fn is_attributed(&self) -> bool {
        self.cause.is_some()
    }
}

/// Whether a record counts as an *infrastructure-interrupted* job ending:
/// NODE_FAIL (heartbeat loss), REQUEUED (health-check kill), or FAILED
/// (which needs a health event in the window to count as hardware).
pub fn is_failure_status(status: JobStatus) -> bool {
    matches!(
        status,
        JobStatus::Failed | JobStatus::NodeFail | JobStatus::Requeued
    )
}

/// Ranking used to pick the primary cause when several checks fire:
/// specific hardware checks dominate generic/secondary ones.
fn check_specificity(check: CheckKind) -> u8 {
    match check {
        CheckKind::IbLink => 10,
        CheckKind::FsMount => 10,
        CheckKind::GpuMemory => 9,
        CheckKind::NvLink => 9,
        CheckKind::HostMemory => 9,
        CheckKind::EthLink => 8,
        CheckKind::BlockDevice => 8,
        CheckKind::PcieLink => 7,
        CheckKind::GpuAccessible => 6,
        CheckKind::GpuDriver => 5,
        CheckKind::Services => 4,
        CheckKind::Ipmi => 2,
    }
}

/// Attributes every failure-status record in a sealed telemetry view.
///
/// Returns one [`Attribution`] per record with a failure status
/// (FAILED / NODE_FAIL / REQUEUED). Pure user failures come back
/// unattributed, as they should.
pub fn attribute_failures(view: &TelemetryView, config: &AttributionConfig) -> Vec<Attribution> {
    let mut out = Vec::new();
    for (index, record) in view.jobs().iter().enumerate() {
        if !is_failure_status(record.status) {
            continue;
        }
        let from = record.ended_at - config.window_before;
        let to = record.ended_at + config.window_after;
        let mut checks: Vec<CheckKind> = Vec::new();
        for &node in &record.nodes {
            for event in view.health_events_for_node(node, from, to) {
                if !checks.contains(&event.check) {
                    checks.push(event.check);
                }
            }
        }
        let cause = checks
            .iter()
            .max_by_key(|&&c| check_specificity(c))
            .map(|&c| c.symptom());
        out.push(Attribution {
            record_index: index,
            cause,
            checks,
        });
    }
    out
}

/// Per-cause failure rates normalized by total GPU-hours (paper Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseRates {
    /// `(cause, failures per GPU-hour)`, descending by rate. `None` is the
    /// unattributed bucket.
    pub rates: Vec<(Option<FailureSymptom>, f64)>,
    /// Total GPU-hours of runtime in the store (the denominator).
    pub total_gpu_hours: f64,
}

/// Computes Fig. 4: attributed hardware failure rates per GPU-hour.
///
/// Only NODE_FAIL/REQUEUED records and FAILED records *with* an attribution
/// count as hardware failures; FAILED without any health event in the
/// window is treated as a user failure and skipped.
pub fn cause_rates(view: &TelemetryView, config: &AttributionConfig) -> CauseRates {
    let attributions = attribute_failures(view, config);
    let total_gpu_hours: f64 = view.jobs().iter().map(|r| r.gpu_time().as_hours()).sum();
    let mut counts: HashMap<Option<FailureSymptom>, u64> = HashMap::new();
    for a in &attributions {
        let status = view.jobs()[a.record_index].status;
        let is_hw = match status {
            JobStatus::NodeFail | JobStatus::Requeued => true,
            JobStatus::Failed => a.is_attributed(),
            _ => false,
        };
        if is_hw {
            *counts.entry(a.cause).or_insert(0) += 1;
        }
    }
    let mut rates: Vec<(Option<FailureSymptom>, f64)> = counts
        .into_iter()
        .map(|(cause, n)| (cause, n as f64 / total_gpu_hours.max(f64::MIN_POSITIVE)))
        .collect();
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));
    CauseRates {
        rates,
        total_gpu_hours,
    }
}

/// Validation against ground truth: the fraction of hardware-interrupted
/// records whose attributed cause matches the symptom of a ground-truth
/// failure injected on one of the job's nodes within the window.
pub fn attribution_accuracy(view: &TelemetryView, config: &AttributionConfig) -> f64 {
    let attributions = attribute_failures(view, config);
    let mut checked = 0u64;
    let mut correct = 0u64;
    for a in &attributions {
        let Some(cause) = a.cause else { continue };
        let record: &JobRecord = &view.jobs()[a.record_index];
        let from = record.ended_at - config.window_before - SimDuration::from_mins(10);
        let to = record.ended_at + config.window_after;
        let truth = view
            .ground_truth_failures()
            .iter()
            .find(|f| record.nodes.contains(&f.node) && f.at >= from && f.at <= to);
        if let Some(truth) = truth {
            checked += 1;
            // Co-occurrence makes some cross-attribution legitimate (PCIe ↔
            // GPU-off-bus); count symptom-family matches.
            if same_family(cause, truth.symptom) {
                correct += 1;
            }
        }
    }
    if checked == 0 {
        return 0.0;
    }
    correct as f64 / checked as f64
}

/// Whether two symptoms belong to the same co-occurrence family.
fn same_family(a: FailureSymptom, b: FailureSymptom) -> bool {
    use FailureSymptom::*;
    if a == b {
        return true;
    }
    let bus = [PcieError, GpuUnavailable, GpuMemoryError];
    bus.contains(&a) && bus.contains(&b)
}

/// The paper's check-calibration property (§II-C): the fraction of
/// **successfully completed** jobs that observed a failed health check on
/// one of their nodes while running. Production tuning keeps this under
/// 1%; values above that suggest checks are firing spuriously (or the
/// workload is colliding with real failures it happens to survive).
pub fn completed_jobs_seeing_checks(view: &TelemetryView) -> f64 {
    let mut total = 0u64;
    let mut observed = 0u64;
    for r in view.jobs() {
        if r.status != JobStatus::Completed {
            continue;
        }
        let Some(start) = r.started_at else { continue };
        total += 1;
        let hit = r
            .nodes
            .iter()
            .any(|&n| !view.health_events_for_node(n, start, r.ended_at).is_empty());
        if hit {
            observed += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    observed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, NodeId};
    use rsc_failure::modes::Severity;
    use rsc_health::monitor::HealthEvent;
    use rsc_sched::job::QosClass;
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;

    fn record(id: u64, status: JobStatus, node: u32, end_hours: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt: 0,
            run: None,
            gpus: 8,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(node)],
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::from_hours(1)),
            ended_at: SimTime::from_hours(end_hours),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    fn health(node: u32, at: SimTime, check: CheckKind) -> HealthEvent {
        HealthEvent {
            at,
            node: NodeId::new(node),
            check,
            severity: Severity::High,
            signal: None,
            false_positive: false,
        }
    }

    #[test]
    fn failed_job_with_check_in_window_is_attributed() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Failed, 2, 10));
        // Check fires 5 minutes before job end.
        store.push_health_event(health(
            2,
            SimTime::from_hours(10) - SimDuration::from_mins(5),
            CheckKind::IbLink,
        ));
        let view = store.seal();
        let atts = attribute_failures(&view, &AttributionConfig::paper_default());
        assert_eq!(atts.len(), 1);
        assert_eq!(atts[0].cause, Some(FailureSymptom::InfinibandLink));
    }

    #[test]
    fn check_outside_window_does_not_attribute() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Failed, 2, 10));
        store.push_health_event(health(
            2,
            SimTime::from_hours(10) - SimDuration::from_mins(30),
            CheckKind::IbLink,
        ));
        let view = store.seal();
        let atts = attribute_failures(&view, &AttributionConfig::paper_default());
        assert!(!atts[0].is_attributed());
    }

    #[test]
    fn check_on_other_node_does_not_attribute() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::NodeFail, 2, 10));
        store.push_health_event(health(3, SimTime::from_hours(10), CheckKind::IbLink));
        let view = store.seal();
        let atts = attribute_failures(&view, &AttributionConfig::paper_default());
        assert!(!atts[0].is_attributed());
    }

    #[test]
    fn most_specific_check_wins() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Requeued, 2, 10));
        let at = SimTime::from_hours(10);
        store.push_health_event(health(2, at, CheckKind::Ipmi));
        store.push_health_event(health(2, at, CheckKind::PcieLink));
        store.push_health_event(health(2, at, CheckKind::GpuAccessible));
        let view = store.seal();
        let atts = attribute_failures(&view, &AttributionConfig::paper_default());
        assert_eq!(atts[0].cause, Some(FailureSymptom::PcieError));
        assert_eq!(atts[0].checks.len(), 3);
    }

    #[test]
    fn completed_jobs_are_not_attributed() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Completed, 2, 10));
        let view = store.seal();
        let atts = attribute_failures(&view, &AttributionConfig::paper_default());
        assert!(atts.is_empty());
    }

    #[test]
    fn cause_rates_skip_unattributed_user_failures() {
        let mut store = TelemetryStore::new("t", 4);
        // A user failure (no events) and a hardware NODE_FAIL.
        store.push_job(record(1, JobStatus::Failed, 1, 10));
        store.push_job(record(2, JobStatus::NodeFail, 2, 12));
        let view = store.seal();
        let rates = cause_rates(&view, &AttributionConfig::paper_default());
        // Only the NODE_FAIL shows up (as unattributed).
        let total: f64 = rates.rates.iter().map(|(_, r)| r).sum();
        assert!(total > 0.0);
        assert_eq!(rates.rates.len(), 1);
        assert_eq!(rates.rates[0].0, None);
    }

    #[test]
    fn calibration_counts_completed_jobs_with_events() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Completed, 1, 10));
        store.push_job(record(2, JobStatus::Completed, 2, 10));
        store.push_job(record(3, JobStatus::Failed, 3, 10)); // not counted
                                                             // An event during job 1's runtime only.
        store.push_health_event(health(1, SimTime::from_hours(5), CheckKind::EthLink));
        let view = store.seal();
        let frac = completed_jobs_seeing_checks(&view);
        assert!((frac - 0.5).abs() < 1e-9, "{frac}");
    }

    #[test]
    fn calibration_zero_without_events() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(record(1, JobStatus::Completed, 1, 10));
        let view = store.seal();
        assert_eq!(completed_jobs_seeing_checks(&view), 0.0);
    }

    #[test]
    fn family_matching() {
        assert!(same_family(
            FailureSymptom::PcieError,
            FailureSymptom::GpuUnavailable
        ));
        assert!(!same_family(
            FailureSymptom::PcieError,
            FailureSymptom::InfinibandLink
        ));
    }
}
