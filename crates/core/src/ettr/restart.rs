//! Restart-overhead scaling (paper §V, "Training Reliability").
//!
//! The paper notes that "certain operations, such as NCCL initialization,
//! can scale poorly with the number of GPU nodes", making restart latency
//! itself a function of job scale — and names fast, reliable restart
//! routines a key future avenue. This model makes `u0` scale-aware so the
//! ETTR machinery can quantify exactly how much an optimized restart path
//! buys at frontier scale.

use serde::{Deserialize, Serialize};

use super::analytical::{expected_ettr, EttrParams};

/// How restart overhead grows with job size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartOverheadModel {
    /// Scale-independent work: checkpoint load, process spawn, scheduler
    /// handshake. Seconds.
    pub base_secs: f64,
    /// Per-node cost of collective initialization (the poorly-scaling NCCL
    /// setup the paper calls out). Seconds per node.
    pub per_node_secs: f64,
}

impl RestartOverheadModel {
    /// A naive stack: ~2 minutes of fixed work plus 60 ms per node of
    /// init (an 8k-node job pays ~8 extra minutes).
    pub fn naive() -> Self {
        RestartOverheadModel {
            base_secs: 120.0,
            per_node_secs: 0.06,
        }
    }

    /// An optimized stack (§V's "replacing MPI-like collectives entirely
    /// and making preflight hardware tests more efficient"): one minute
    /// flat, near-constant in scale.
    pub fn optimized() -> Self {
        RestartOverheadModel {
            base_secs: 60.0,
            per_node_secs: 0.002,
        }
    }

    /// Restart overhead for a job of `nodes` nodes, in seconds.
    pub fn u0_secs(&self, nodes: u32) -> f64 {
        self.base_secs + self.per_node_secs * nodes as f64
    }

    /// Restart overhead in days (the unit [`EttrParams`] uses).
    pub fn u0_days(&self, nodes: u32) -> f64 {
        self.u0_secs(nodes) / 86_400.0
    }

    /// Expected ETTR for a job of `gpus` GPUs under this restart model.
    pub fn expected_ettr(
        &self,
        gpus: u32,
        r_f: f64,
        queue_time_days: f64,
        checkpoint_interval_days: f64,
        productive_days: f64,
    ) -> f64 {
        let nodes = gpus.div_ceil(8);
        expected_ettr(&EttrParams {
            nodes,
            r_f,
            queue_time: queue_time_days,
            restart_overhead: self.u0_days(nodes),
            checkpoint_interval: checkpoint_interval_days,
            productive_time: productive_days,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_scale() {
        let naive = RestartOverheadModel::naive();
        assert!((naive.u0_secs(1) - 120.06).abs() < 1e-9);
        // 12,500 nodes (100k GPUs): 120 + 750 s = 14.5 min of restart.
        assert!((naive.u0_secs(12_500) - 870.0).abs() < 1e-9);
        let optimized = RestartOverheadModel::optimized();
        assert!(optimized.u0_secs(12_500) < 100.0);
    }

    #[test]
    fn optimized_restart_buys_ettr_at_scale() {
        // At 100k GPUs with an RSC-2 rate and 5-minute checkpoints, the
        // naive restart path costs real ETTR.
        let r_f = 2.34e-3;
        let cp = 5.0 / 60.0 / 24.0;
        let naive = RestartOverheadModel::naive().expected_ettr(100_000, r_f, 1e-4, cp, 7.0);
        let optimized =
            RestartOverheadModel::optimized().expected_ettr(100_000, r_f, 1e-4, cp, 7.0);
        assert!(
            optimized > naive + 0.02,
            "naive={naive} optimized={optimized}"
        );
        // At small scale the two are indistinguishable.
        let naive_small = RestartOverheadModel::naive().expected_ettr(512, r_f, 1e-4, cp, 7.0);
        let opt_small = RestartOverheadModel::optimized().expected_ettr(512, r_f, 1e-4, cp, 7.0);
        assert!((naive_small - opt_small).abs() < 0.005);
    }

    #[test]
    fn ettr_monotone_in_per_node_cost() {
        let mut last = 1.0;
        for per_node in [0.0, 0.02, 0.06, 0.2] {
            let model = RestartOverheadModel {
                base_secs: 120.0,
                per_node_secs: per_node,
            };
            let e = model.expected_ettr(65_536, 6.5e-3, 1e-4, 10.0 / 60.0 / 24.0, 7.0);
            assert!(e <= last);
            last = e;
        }
    }
}
