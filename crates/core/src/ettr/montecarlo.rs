//! Monte-Carlo validation of the analytical ETTR estimator.
//!
//! The paper reports the closed-form approximation agrees with a
//! Monte-Carlo computation to within ~5% even for large, long jobs. This
//! module is that Monte-Carlo computation: it simulates a single job run's
//! failure/requeue/checkpoint dynamics directly.

use rsc_sim_core::rng::SimRng;
use rsc_sim_core::stats::StreamingStats;

use super::analytical::EttrParams;

/// How much progress an interruption destroys (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointLossModel {
    /// Failures uncorrelated with checkpoint timing: progress floors to
    /// the last completed checkpoint (expected loss `Δt_cp / 2`).
    Uncorrelated,
    /// Failures correlated with checkpoint *writes* (e.g. filesystem
    /// issues triggered by the write): a full interval is lost on every
    /// interruption (expected loss `Δt_cp` — the appendix's caveat).
    Correlated,
}

/// Result of a Monte-Carlo ETTR estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloEttr {
    /// Mean ETTR across trials.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Mean number of failures per run.
    pub mean_failures: f64,
    /// Trials simulated.
    pub trials: u32,
}

/// Simulates `trials` independent job runs under `params` and returns the
/// ETTR distribution summary.
///
/// Each trial: the job needs `productive_time` days of work. Failures
/// arrive Poisson at rate `nodes × r_f` during *scheduled* time (including
/// overhead). On each interruption the job loses progress back to the last
/// checkpoint, waits an exponential queue time with mean `queue_time`, and
/// pays `restart_overhead` again.
pub fn monte_carlo_ettr(params: &EttrParams, trials: u32, rng: &mut SimRng) -> MonteCarloEttr {
    monte_carlo_ettr_with_loss(params, CheckpointLossModel::Uncorrelated, trials, rng)
}

/// [`monte_carlo_ettr`] with an explicit checkpoint-loss model.
pub fn monte_carlo_ettr_with_loss(
    params: &EttrParams,
    loss_model: CheckpointLossModel,
    trials: u32,
    rng: &mut SimRng,
) -> MonteCarloEttr {
    let p = params.validated();
    let mttf = p.mttf_days();
    let mut ettrs = StreamingStats::new();
    let mut failures_stats = StreamingStats::new();

    for _ in 0..trials {
        let mut productive_done = 0.0f64; // checkpointed work
        let mut scheduled = 0.0f64; // total scheduled (running) time
        let mut queued = p.queue_time; // initial wait (expected value)
        let mut failures = 0u64;

        while productive_done < p.productive_time {
            // Time until this attempt would finish the remaining work.
            let to_finish = p.restart_overhead + (p.productive_time - productive_done);
            // Time until the next failure.
            let to_failure = rng.exponential(1.0 / mttf);
            if to_failure >= to_finish {
                scheduled += to_finish;
                productive_done = p.productive_time;
            } else {
                scheduled += to_failure;
                failures += 1;
                // Productive time accrued this attempt (after overhead),
                // floored to the last checkpoint.
                let productive = (to_failure - p.restart_overhead).max(0.0);
                let banked = if p.checkpoint_interval > 0.0 {
                    match loss_model {
                        CheckpointLossModel::Uncorrelated => {
                            (productive / p.checkpoint_interval).floor() * p.checkpoint_interval
                        }
                        // The interruption also destroys the most recent
                        // checkpoint: a full interval is always lost.
                        CheckpointLossModel::Correlated => {
                            (productive - p.checkpoint_interval).max(0.0)
                        }
                    }
                } else {
                    productive
                };
                productive_done = (productive_done + banked).min(p.productive_time);
                queued += rng.exponential(1.0 / p.queue_time.max(1e-9));
            }
        }
        let wallclock = scheduled + queued;
        ettrs.push(p.productive_time / wallclock);
        failures_stats.push(failures as f64);
    }

    MonteCarloEttr {
        mean: ettrs.mean(),
        std_error: ettrs.std_error(),
        mean_failures: failures_stats.mean(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ettr::analytical::expected_ettr;

    fn paper_like(nodes: u32) -> EttrParams {
        EttrParams {
            nodes,
            r_f: 6.5e-3,
            queue_time: 5.0 / 60.0 / 24.0,
            restart_overhead: 5.0 / 60.0 / 24.0,
            checkpoint_interval: 1.0 / 24.0,
            productive_time: 7.0,
        }
    }

    #[test]
    fn analytic_matches_monte_carlo_within_five_percent() {
        // The paper's claim (§III): the approximation is accurate to ~5%
        // even for large, long-running jobs (e.g. 8k GPUs = 1024 nodes).
        let mut rng = SimRng::seed_from(1);
        for nodes in [64u32, 256, 1024] {
            let p = paper_like(nodes);
            let mc = monte_carlo_ettr(&p, 4000, &mut rng);
            let analytic = expected_ettr(&p);
            let rel = (mc.mean - analytic).abs() / mc.mean;
            assert!(
                rel < 0.05,
                "nodes={nodes}: mc={} analytic={analytic} rel={rel}",
                mc.mean
            );
        }
    }

    #[test]
    fn failure_count_matches_expectation() {
        let mut rng = SimRng::seed_from(2);
        let p = paper_like(256);
        let mc = monte_carlo_ettr(&p, 4000, &mut rng);
        let expected = p.expected_failures();
        let rel = (mc.mean_failures - expected).abs() / expected;
        assert!(rel < 0.10, "mc={} expected={expected}", mc.mean_failures);
    }

    #[test]
    fn no_failures_means_ettr_near_one() {
        let mut rng = SimRng::seed_from(3);
        let p = EttrParams {
            r_f: 1e-9,
            queue_time: 1e-6,
            ..paper_like(8)
        };
        let mc = monte_carlo_ettr(&p, 200, &mut rng);
        assert!(mc.mean > 0.995, "{}", mc.mean);
        assert!(mc.mean_failures < 0.01);
    }

    #[test]
    fn correlated_losses_hurt_and_match_doubled_interval() {
        // Appendix A: with checkpoint-write-correlated failures,
        // E[u_cp] approaches Δt_cp — equivalent to the uncorrelated
        // formula evaluated at a doubled interval.
        let p = paper_like(1024);
        let mut rng = SimRng::seed_from(5);
        let uncorrelated =
            monte_carlo_ettr_with_loss(&p, CheckpointLossModel::Uncorrelated, 4000, &mut rng);
        let correlated =
            monte_carlo_ettr_with_loss(&p, CheckpointLossModel::Correlated, 4000, &mut rng);
        assert!(correlated.mean < uncorrelated.mean);
        let doubled = EttrParams {
            checkpoint_interval: p.checkpoint_interval * 2.0,
            ..p
        };
        // "Approaches Δt_cp": short attempts lose less than a full
        // interval, so the truth sits between the doubled-interval bound
        // and the uncorrelated mean.
        let analytic_doubled = expected_ettr(&doubled);
        assert!(
            correlated.mean > analytic_doubled - 0.01 && correlated.mean < uncorrelated.mean,
            "mc={} bound={analytic_doubled} uncorrelated={}",
            correlated.mean,
            uncorrelated.mean
        );
    }

    #[test]
    fn ettr_is_bounded() {
        let mut rng = SimRng::seed_from(4);
        let mc = monte_carlo_ettr(&paper_like(2048), 500, &mut rng);
        assert!(mc.mean > 0.0 && mc.mean < 1.0);
    }
}
