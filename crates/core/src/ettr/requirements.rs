//! Checkpoint/failure-rate requirements at extreme scale (paper Fig. 10).
//!
//! Answers "what checkpoint interval do I need to reach a target E\[ETTR\]
//! at 100k GPUs for a given failure rate?" by inverting the analytical
//! estimator.

use serde::{Deserialize, Serialize};

use super::analytical::{expected_ettr, EttrParams};

/// One cell of the Fig. 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Failure rate, failures per node-day.
    pub r_f: f64,
    /// Checkpoint interval, minutes.
    pub checkpoint_mins: f64,
    /// Resulting expected ETTR.
    pub ettr: f64,
}

/// Sweeps expected ETTR over failure rates × checkpoint intervals for a
/// job of `gpus` GPUs (Fig. 10's axes).
pub fn sweep(
    gpus: u32,
    r_f_values: &[f64],
    checkpoint_mins: &[f64],
    queue_time_mins: f64,
    restart_overhead_mins: f64,
    productive_days: f64,
) -> Vec<SweepPoint> {
    let nodes = gpus.div_ceil(8);
    let mut out = Vec::with_capacity(r_f_values.len() * checkpoint_mins.len());
    for &r_f in r_f_values {
        for &cp in checkpoint_mins {
            let params = EttrParams {
                nodes,
                r_f,
                queue_time: queue_time_mins / 60.0 / 24.0,
                restart_overhead: restart_overhead_mins / 60.0 / 24.0,
                checkpoint_interval: cp / 60.0 / 24.0,
                productive_time: productive_days,
            };
            out.push(SweepPoint {
                r_f,
                checkpoint_mins: cp,
                ettr: expected_ettr(&params),
            });
        }
    }
    out
}

/// Finds (by bisection) the largest checkpoint interval, in minutes, that
/// still achieves `target_ettr`. Returns `None` when even near-continuous
/// checkpointing cannot reach the target.
pub fn max_checkpoint_interval_mins(
    gpus: u32,
    r_f: f64,
    target_ettr: f64,
    queue_time_mins: f64,
    restart_overhead_mins: f64,
    productive_days: f64,
) -> Option<f64> {
    let eval = |cp_mins: f64| {
        let params = EttrParams {
            nodes: gpus.div_ceil(8),
            r_f,
            queue_time: queue_time_mins / 60.0 / 24.0,
            restart_overhead: restart_overhead_mins / 60.0 / 24.0,
            checkpoint_interval: cp_mins / 60.0 / 24.0,
            productive_time: productive_days,
        };
        expected_ettr(&params)
    };
    // ETTR is monotone decreasing in the checkpoint interval.
    let mut lo = 0.01; // ~continuous
    let mut hi = 24.0 * 60.0; // one day
    if eval(lo) < target_ettr {
        return None;
    }
    if eval(hi) >= target_ettr {
        return Some(hi);
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if eval(mid) >= target_ettr {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Like [`max_checkpoint_interval_mins`] but with the restart overhead
/// *coupled* to the checkpoint interval (`u0 = Δt_cp`), matching the
/// paper's Fig. 10 framing where both must shrink together at scale
/// ("~2 minute checkpointing and ~2 minute restart overhead").
pub fn max_coupled_interval_mins(
    gpus: u32,
    r_f: f64,
    target_ettr: f64,
    queue_time_mins: f64,
    productive_days: f64,
) -> Option<f64> {
    let eval = |cp_mins: f64| {
        let params = EttrParams {
            nodes: gpus.div_ceil(8),
            r_f,
            queue_time: queue_time_mins / 60.0 / 24.0,
            restart_overhead: cp_mins / 60.0 / 24.0,
            checkpoint_interval: cp_mins / 60.0 / 24.0,
            productive_time: productive_days,
        };
        expected_ettr(&params)
    };
    let mut lo = 0.01;
    let mut hi = 24.0 * 60.0;
    if eval(lo) < target_ettr {
        return None;
    }
    if eval(hi) >= target_ettr {
        return Some(hi);
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if eval(mid) >= target_ettr {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RSC1_RATE: f64 = 6.5e-3;
    const RSC2_RATE: f64 = 2.34e-3;

    #[test]
    fn paper_100k_gpu_requirements() {
        // Fig. 10 narrative (restart overhead coupled to the checkpoint
        // interval): at 100k GPUs with an RSC-1-like failure rate,
        // E[ETTR] = 0.5 needs a ~7-minute checkpoint interval…
        let cp = max_coupled_interval_mins(100_000, RSC1_RATE, 0.5, 1.0, 7.0).expect("reachable");
        assert!((4.0..=10.0).contains(&cp), "cp={cp}");
        // …which relaxes to ~21 minutes at an RSC-2-like rate.
        let cp2 = max_coupled_interval_mins(100_000, RSC2_RATE, 0.5, 1.0, 7.0).expect("reachable");
        assert!((13.0..=25.0).contains(&cp2), "cp2={cp2}");
        assert!(cp2 > 2.0 * cp);
    }

    #[test]
    fn ettr_09_at_rsc2_rate_needs_couple_minute_checkpoints() {
        // "To reach ETTR of 0.9 at an RSC-2 failure rate, you would need
        // ~2 minute checkpointing and ~2 minute restart overhead."
        let cp = max_coupled_interval_mins(100_000, RSC2_RATE, 0.9, 1.0, 7.0).expect("reachable");
        assert!((1.0..=5.0).contains(&cp), "cp={cp}");
    }

    #[test]
    fn rsc1_8k_gpu_requirement_is_about_half_an_hour() {
        // Obs. 10: 8,000 GPUs on RSC-1 with 1-minute queues needs roughly
        // 30-minute checkpoints for ETTR 0.9.
        let cp =
            max_checkpoint_interval_mins(8_000, RSC1_RATE, 0.9, 1.0, 5.0, 7.0).expect("reachable");
        assert!((20.0..=45.0).contains(&cp), "cp={cp}");
    }

    #[test]
    fn unreachable_targets_return_none() {
        assert!(max_checkpoint_interval_mins(1_000_000, 0.05, 0.99, 1.0, 30.0, 7.0).is_none());
    }

    #[test]
    fn sweep_is_monotone() {
        let pts = sweep(
            100_000,
            &[RSC2_RATE, RSC1_RATE],
            &[2.0, 7.0, 21.0, 60.0],
            1.0,
            2.0,
            7.0,
        );
        assert_eq!(pts.len(), 8);
        // For fixed r_f, ETTR decreases with the checkpoint interval.
        for w in pts.windows(2) {
            if (w[0].r_f - w[1].r_f).abs() < 1e-12 {
                assert!(w[0].ettr >= w[1].ettr);
            }
        }
        // For fixed interval, the lower failure rate gives higher ETTR.
        let low = pts
            .iter()
            .find(|p| p.r_f == RSC2_RATE && p.checkpoint_mins == 7.0)
            .unwrap();
        let high = pts
            .iter()
            .find(|p| p.r_f == RSC1_RATE && p.checkpoint_mins == 7.0)
            .unwrap();
        assert!(low.ettr > high.ettr);
    }
}
