//! Job-run reconstruction and measured ETTR (paper §II-D, Fig. 9).
//!
//! A *job run* is one logical training task spanning one or more scheduler
//! job attempts (requeues under the same job id, and explicit run ids for
//! training-run submissions). Measured ETTR follows the paper's recipe:
//! assume a checkpoint interval and restart overhead, treat every non-final
//! attempt as interrupted, and divide estimated productive time by the
//! available wallclock (scheduled + queued).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

/// A reconstructed job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRun {
    /// GPUs per attempt (constant across the run).
    pub gpus: u32,
    /// Scheduling tier.
    pub qos: QosClass,
    /// Number of attempts in the run.
    pub attempts: u32,
    /// Total scheduled (running) time.
    pub scheduled: SimDuration,
    /// Total queue wait.
    pub queued: SimDuration,
    /// Status of the final attempt.
    pub final_status: JobStatus,
}

impl JobRun {
    /// Measured ETTR with assumed checkpoint interval and restart overhead
    /// (the paper uses 60 min / 5 min).
    ///
    /// Every attempt pays the restart overhead; every *interrupted*
    /// (non-final) attempt additionally loses half a checkpoint interval of
    /// progress in expectation.
    pub fn measured_ettr(
        &self,
        checkpoint_interval: SimDuration,
        restart_overhead: SimDuration,
    ) -> f64 {
        let scheduled = self.scheduled.as_days();
        let queued = self.queued.as_days();
        let wallclock = scheduled + queued;
        if wallclock <= 0.0 {
            return 0.0;
        }
        let interruptions = self.attempts.saturating_sub(1) as f64;
        let unproductive = self.attempts as f64 * restart_overhead.as_days()
            + interruptions * checkpoint_interval.as_days() / 2.0;
        let productive = (scheduled - unproductive).max(0.0);
        (productive / wallclock).clamp(0.0, 1.0)
    }
}

/// Groups a sealed view's records into job runs.
///
/// Records sharing an explicit run id form one run; records without one
/// group by job id (requeues of the same id are one logical task).
pub fn reconstruct_job_runs(view: &TelemetryView) -> Vec<JobRun> {
    // Keyed map iterates deterministically, so ties in the final sort
    // keep a stable, reproducible order.
    let mut groups: BTreeMap<(u8, u64), Vec<&JobRecord>> = BTreeMap::new();
    for r in view.jobs() {
        let key = match r.run {
            Some(run) => (0u8, run.raw()),
            None => (1u8, r.job.raw()),
        };
        groups.entry(key).or_default().push(r);
    }
    let mut runs: Vec<JobRun> = groups
        .into_values()
        .map(|mut records| {
            records.sort_by_key(|r| (r.enqueued_at, r.attempt));
            let last = records.last().expect("non-empty group");
            JobRun {
                gpus: records.iter().map(|r| r.gpus).max().unwrap_or(0),
                qos: last.qos,
                attempts: records.len() as u32,
                scheduled: records.iter().map(|r| r.runtime()).sum(),
                queued: records.iter().map(|r| r.queue_wait()).sum(),
                final_status: last.status,
            }
        })
        .collect();
    // Deterministic order: largest first, then by scheduled time.
    runs.sort_by(|a, b| {
        b.gpus
            .cmp(&a.gpus)
            .then(b.scheduled.cmp(&a.scheduled))
            .then(b.attempts.cmp(&a.attempts))
    });
    runs
}

/// Fig. 9 selection: long (≥ `min_scheduled`) runs at the highest priority.
pub fn long_high_priority_runs(runs: &[JobRun], min_scheduled: SimDuration) -> Vec<&JobRun> {
    runs.iter()
        .filter(|r| r.qos == QosClass::High && r.scheduled >= min_scheduled)
        .collect()
}

/// One Fig. 9 bucket: measured ETTR statistics for runs of similar size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EttrBucket {
    /// Lower edge of the GPU bucket (inclusive).
    pub gpus_lo: u32,
    /// Upper edge (exclusive).
    pub gpus_hi: u32,
    /// Number of runs in the bucket.
    pub runs: usize,
    /// Mean measured ETTR.
    pub mean_ettr: f64,
    /// 90% normal-approximation CI around the mean.
    pub ci90: (f64, f64),
}

/// Buckets runs by GPU size (powers of two) and summarizes measured ETTR.
pub fn ettr_by_size_bucket(
    runs: &[&JobRun],
    checkpoint_interval: SimDuration,
    restart_overhead: SimDuration,
) -> Vec<EttrBucket> {
    use rsc_sim_core::stats::StreamingStats;
    let mut buckets: std::collections::BTreeMap<u32, StreamingStats> = Default::default();
    for run in runs {
        let lo = run.gpus.max(1).next_power_of_two().max(8);
        buckets
            .entry(lo)
            .or_default()
            .push(run.measured_ettr(checkpoint_interval, restart_overhead));
    }
    buckets
        .into_iter()
        .map(|(lo, stats)| EttrBucket {
            gpus_lo: lo,
            gpus_hi: lo * 2,
            runs: stats.count() as usize,
            mean_ettr: stats.mean(),
            ci90: stats.mean_confidence_interval(0.90),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, JobRunId, NodeId};
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;

    fn record(
        job: u64,
        run: Option<u64>,
        attempt: u32,
        enq_h: u64,
        start_h: u64,
        end_h: u64,
        status: JobStatus,
    ) -> JobRecord {
        JobRecord {
            job: JobId::new(job),
            attempt,
            run: run.map(JobRunId::new),
            gpus: 256,
            qos: QosClass::High,
            nodes: (0..32).map(NodeId::new).collect(),
            enqueued_at: SimTime::from_hours(enq_h),
            started_at: Some(SimTime::from_hours(start_h)),
            ended_at: SimTime::from_hours(end_h),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn requeued_attempts_group_into_one_run() {
        let mut store = TelemetryStore::new("t", 64);
        store.push_job(record(1, None, 0, 0, 0, 10, JobStatus::NodeFail));
        store.push_job(record(1, None, 1, 10, 11, 30, JobStatus::Completed));
        store.push_job(record(2, None, 0, 0, 0, 5, JobStatus::Completed));
        let runs = reconstruct_job_runs(&store.seal());
        assert_eq!(runs.len(), 2);
        let big = runs.iter().find(|r| r.attempts == 2).unwrap();
        assert_eq!(big.scheduled, SimDuration::from_hours(29));
        assert_eq!(big.queued, SimDuration::from_hours(1));
        assert_eq!(big.final_status, JobStatus::Completed);
    }

    #[test]
    fn explicit_run_ids_group_across_job_ids() {
        let mut store = TelemetryStore::new("t", 64);
        store.push_job(record(1, Some(9), 0, 0, 0, 10, JobStatus::NodeFail));
        store.push_job(record(2, Some(9), 0, 10, 10, 20, JobStatus::Completed));
        let runs = reconstruct_job_runs(&store.seal());
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].attempts, 2);
    }

    #[test]
    fn measured_ettr_penalizes_interruptions() {
        let smooth = JobRun {
            gpus: 256,
            qos: QosClass::High,
            attempts: 1,
            scheduled: SimDuration::from_hours(100),
            queued: SimDuration::from_hours(1),
            final_status: JobStatus::Completed,
        };
        let bumpy = JobRun {
            attempts: 10,
            ..smooth.clone()
        };
        let ckpt = SimDuration::from_mins(60);
        let u0 = SimDuration::from_mins(5);
        let e_smooth = smooth.measured_ettr(ckpt, u0);
        let e_bumpy = bumpy.measured_ettr(ckpt, u0);
        assert!(e_smooth > 0.97, "{e_smooth}");
        assert!(e_bumpy < e_smooth);
        // 10 attempts: 50 min overhead + 4.5 × 60 min lost ≈ 5.3 h of 101.
        assert!((e_bumpy - (100.0 - 5.33) / 101.0).abs() < 0.01, "{e_bumpy}");
    }

    #[test]
    fn high_priority_filter() {
        let mut store = TelemetryStore::new("t", 64);
        store.push_job(record(1, None, 0, 0, 0, 30, JobStatus::Completed));
        let mut low = record(2, None, 0, 0, 0, 30, JobStatus::Completed);
        low.qos = QosClass::Low;
        store.push_job(low);
        let runs = reconstruct_job_runs(&store.seal());
        let selected = long_high_priority_runs(&runs, SimDuration::from_hours(24));
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].qos, QosClass::High);
    }

    #[test]
    fn buckets_are_power_of_two() {
        let run = JobRun {
            gpus: 300,
            qos: QosClass::High,
            attempts: 1,
            scheduled: SimDuration::from_hours(50),
            queued: SimDuration::ZERO,
            final_status: JobStatus::Completed,
        };
        let binding = [&run];
        let buckets = ettr_by_size_bucket(
            &binding,
            SimDuration::from_mins(60),
            SimDuration::from_mins(5),
        );
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].gpus_lo, 512);
        assert_eq!(buckets[0].runs, 1);
    }
}
