//! Effective Training Time Ratio (ETTR): definition, analytical estimator,
//! Monte-Carlo validation, job-run measurement, and scale requirements.
//!
//! ETTR is the paper's headline reliability metric (§II-D): the ratio of
//! *productive* runtime to available wallclock time of a logical job run.
//! This module provides all four views the paper uses:
//!
//! - [`analytical`] — closed-form E\[ETTR\] (Eq. 1/2, Appendix A);
//! - [`montecarlo`] — direct simulation of a run's failure dynamics,
//!   used to validate the approximation (~5% agreement);
//! - [`jobrun`] — measured ETTR reconstructed from accounting records
//!   (Fig. 9);
//! - [`requirements`] — inverting the estimator for checkpoint-interval
//!   requirements at 100k-GPU scale (Fig. 10);
//! - [`restart`] — scale-aware restart overhead (§V's poorly-scaling
//!   NCCL initialization) and what optimizing it buys.

pub mod analytical;
pub mod jobrun;
pub mod montecarlo;
pub mod requirements;
pub mod restart;

pub use analytical::{expected_ettr, expected_ettr_simplified, EttrParams};
pub use jobrun::{
    ettr_by_size_bucket, long_high_priority_runs, reconstruct_job_runs, EttrBucket, JobRun,
};
pub use montecarlo::{
    monte_carlo_ettr, monte_carlo_ettr_with_loss, CheckpointLossModel, MonteCarloEttr,
};
pub use requirements::{
    max_checkpoint_interval_mins, max_coupled_interval_mins, sweep, SweepPoint,
};
pub use restart::RestartOverheadModel;
