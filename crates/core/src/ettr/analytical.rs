//! The analytical expected-ETTR estimator (paper Eq. 1/2 and Appendix A).

use serde::{Deserialize, Serialize};

/// Inputs to the expected-ETTR formula. All durations in **days**.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EttrParams {
    /// Nodes the job occupies.
    pub nodes: u32,
    /// Cluster failure rate, failures per node-day.
    pub r_f: f64,
    /// Expected queue time after submission and after each interruption,
    /// days.
    pub queue_time: f64,
    /// Restart overhead `u0`, days.
    pub restart_overhead: f64,
    /// Checkpoint interval `Δt_cp`, days.
    pub checkpoint_interval: f64,
    /// Productive runtime `R` the job needs, days.
    pub productive_time: f64,
}

impl EttrParams {
    /// Validates ranges, returning the params for chaining.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite, or if
    /// `nodes == 0` or `productive_time == 0`.
    pub fn validated(self) -> Self {
        assert!(self.nodes > 0, "job must span at least one node");
        for (name, v) in [
            ("r_f", self.r_f),
            ("queue_time", self.queue_time),
            ("restart_overhead", self.restart_overhead),
            ("checkpoint_interval", self.checkpoint_interval),
            ("productive_time", self.productive_time),
        ] {
            assert!(v >= 0.0 && v.is_finite(), "{name} must be non-negative");
        }
        assert!(
            self.productive_time > 0.0,
            "productive_time must be positive"
        );
        self
    }

    /// The job's MTTF, days: `1 / (N_nodes · r_f)`.
    pub fn mttf_days(&self) -> f64 {
        1.0 / (self.nodes as f64 * self.r_f).max(f64::MIN_POSITIVE)
    }

    /// Expected number of failures over the run (Appendix A, Eq. 4).
    pub fn expected_failures(&self) -> f64 {
        let nr = self.nodes as f64 * self.r_f;
        let overhead = self.restart_overhead + self.checkpoint_interval / 2.0;
        let denom = (1.0 - nr * overhead).max(1e-9);
        nr * (self.productive_time + self.restart_overhead) / denom
    }
}

/// Full expected-ETTR approximation (paper Eq. 1 / Appendix Eq. 7).
///
/// Valid when `u0 + Δt_cp/2 ≪ MTTF`; clamped to `[0, 1]`.
///
/// ```
/// use rsc_core::ettr::analytical::{expected_ettr, EttrParams};
///
/// // The paper's hypothetical: all of RSC-1 (2,048 nodes) on one job,
/// // hourly checkpoints → E[ETTR] ≈ 0.7; 5-minute checkpoints → ≈ 0.93.
/// let hourly = EttrParams {
///     nodes: 2048,
///     r_f: 6.5e-3,
///     queue_time: 1.0 / 24.0 / 60.0, // 1 minute
///     restart_overhead: 5.0 / 60.0 / 24.0,
///     checkpoint_interval: 1.0 / 24.0,
///     productive_time: 7.0,
/// };
/// let e = expected_ettr(&hourly);
/// assert!((e - 0.70).abs() < 0.03, "{e}");
/// ```
pub fn expected_ettr(p: &EttrParams) -> f64 {
    let p = p.validated();
    let nr = p.nodes as f64 * p.r_f;
    let overhead = p.restart_overhead + p.checkpoint_interval / 2.0;
    let numerator = 1.0 - nr * overhead;
    let denominator = 1.0
        + nr * (p.queue_time
            + (p.restart_overhead / p.productive_time)
                * (p.queue_time + p.restart_overhead + p.checkpoint_interval / 2.0));
    // One initial queue wait is amortized over the run; the paper's Eq. 7
    // folds it into the (1 + E[N_f]) q term which we keep in full:
    let with_initial_queue =
        numerator / (denominator + p.queue_time / p.productive_time).max(1e-12);
    with_initial_queue.clamp(0.0, 1.0)
}

/// Simplified expected ETTR for long, high-priority jobs with negligible
/// queueing (paper Eq. 2 / Eq. 8): `1 − N·r_f·(u0 + Δt_cp / 2)`.
pub fn expected_ettr_simplified(p: &EttrParams) -> f64 {
    let p = p.validated();
    let nr = p.nodes as f64 * p.r_f;
    (1.0 - nr * (p.restart_overhead + p.checkpoint_interval / 2.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EttrParams {
        EttrParams {
            nodes: 128,
            r_f: 6.5e-3,
            queue_time: 5.0 / 60.0 / 24.0,
            restart_overhead: 5.0 / 60.0 / 24.0,
            checkpoint_interval: 1.0 / 24.0,
            productive_time: 3.0,
        }
    }

    #[test]
    fn five_minute_checkpoints_raise_ettr_to_093() {
        let p = EttrParams {
            nodes: 2048,
            checkpoint_interval: 5.0 / 60.0 / 24.0,
            queue_time: 1.0 / 24.0 / 60.0,
            ..base()
        };
        let e = expected_ettr(&p);
        assert!((e - 0.93).abs() < 0.02, "{e}");
    }

    #[test]
    fn simplified_bounds_full_formula() {
        // With zero queue time, the simplified form should be ≥ the full
        // one (the full form adds restart-queue overheads).
        let p = EttrParams {
            queue_time: 0.0,
            ..base()
        };
        let full = expected_ettr(&p);
        let simple = expected_ettr_simplified(&p);
        assert!(simple >= full - 1e-9);
        assert!((simple - full).abs() < 0.01, "full={full} simple={simple}");
    }

    #[test]
    fn ettr_decreases_with_scale() {
        let mut last = 1.0;
        for nodes in [8u32, 32, 128, 512, 2048, 8192] {
            let e = expected_ettr(&EttrParams { nodes, ..base() });
            assert!(e < last, "nodes={nodes} e={e}");
            last = e;
        }
    }

    #[test]
    fn ettr_improves_with_faster_checkpoints() {
        let slow = expected_ettr(&EttrParams {
            checkpoint_interval: 2.0 / 24.0,
            ..base()
        });
        let fast = expected_ettr(&EttrParams {
            checkpoint_interval: 5.0 / 60.0 / 24.0,
            ..base()
        });
        assert!(fast > slow);
    }

    #[test]
    fn queueing_lowers_ettr() {
        let no_queue = expected_ettr(&EttrParams {
            queue_time: 0.0,
            ..base()
        });
        let queued = expected_ettr(&EttrParams {
            queue_time: 0.5,
            ..base()
        });
        assert!(queued < no_queue);
    }

    #[test]
    fn expected_failures_matches_rate() {
        let p = base();
        // 128 nodes * 6.5e-3 = 0.832 failures/day over ~3 days ≈ 2.5.
        let n = p.expected_failures();
        assert!((n - 2.55).abs() < 0.2, "{n}");
    }

    #[test]
    fn extreme_scale_clamps_to_zero() {
        let p = EttrParams {
            nodes: 1_000_000,
            ..base()
        };
        assert_eq!(expected_ettr(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = expected_ettr(&EttrParams { nodes: 0, ..base() });
    }
}
