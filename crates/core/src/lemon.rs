//! Lemon-node detection (paper §IV-A, Fig. 11, Table II).
//!
//! Computes the paper's seven per-node detection signals over a trailing
//! window, applies a threshold classifier, and — because our lemons are
//! *planted* with known ground truth — measures detection quality
//! (the paper reports >85% accuracy and a 14% → 4% reduction in large-job
//! failure rates).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sched::job::JobStatus;
use rsc_sim_core::stats::Ecdf;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::NodeEventKind;
use rsc_telemetry::view::TelemetryView;

/// The seven lemon-detection signals for one node (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LemonFeatures {
    /// Node these features describe.
    pub node: NodeId,
    /// `excl_jobid_count`: distinct jobs that excluded this node.
    pub excl_jobid_count: u32,
    /// `xid_cnt`: distinct XID error codes seen on the node.
    pub xid_cnt: u32,
    /// `tickets`: repair tickets (remediation entries).
    pub tickets: u32,
    /// `out_count`: times the node was taken out of scheduler availability
    /// (drains + remediations).
    pub out_count: u32,
    /// `multi_node_node_fails`: infra failures of multi-node jobs involving
    /// this node.
    pub multi_node_node_fails: u32,
    /// `single_node_node_fails`: infra failures of single-node jobs on this
    /// node.
    pub single_node_node_fails: u32,
    /// `single_node_node_failure_rate`: single-node job failure rate on
    /// this node.
    pub single_node_node_failure_rate: f64,
}

impl LemonFeatures {
    /// All-zero features for a node.
    pub fn new(node: NodeId) -> Self {
        LemonFeatures {
            node,
            excl_jobid_count: 0,
            xid_cnt: 0,
            tickets: 0,
            out_count: 0,
            multi_node_node_fails: 0,
            single_node_node_fails: 0,
            single_node_node_failure_rate: 0.0,
        }
    }
}

/// Computes features for every node over `[from, to]`.
pub fn compute_features(view: &TelemetryView, from: SimTime, to: SimTime) -> Vec<LemonFeatures> {
    let n = view.num_nodes() as usize;
    let mut features: Vec<LemonFeatures> = (0..n)
        .map(|i| LemonFeatures::new(NodeId::new(i as u32)))
        .collect();

    // excl_jobid_count: distinct excluding jobs per node.
    let mut excluders: Vec<HashSet<u64>> = vec![HashSet::new(); n];
    for e in view.exclusions() {
        if e.at >= from && e.at <= to {
            excluders[e.node.as_usize()].insert(e.job.raw());
        }
    }
    for (i, set) in excluders.iter().enumerate() {
        features[i].excl_jobid_count = set.len() as u32;
    }

    // xid_cnt: distinct XID codes per node from health events.
    let mut xids: Vec<HashSet<u16>> = vec![HashSet::new(); n];
    for e in view.health_events() {
        if e.at < from || e.at > to {
            continue;
        }
        if let Some(rsc_failure::signals::SignalKind::Xid(x)) = e.signal {
            xids[e.node.as_usize()].insert(x.code());
        }
    }
    for (i, set) in xids.iter().enumerate() {
        features[i].xid_cnt = set.len() as u32;
    }

    // tickets / out_count from node lifecycle events.
    for e in view.node_events() {
        if e.at < from || e.at > to {
            continue;
        }
        let f = &mut features[e.node.as_usize()];
        match e.kind {
            NodeEventKind::EnterRemediation => {
                f.tickets += 1;
                f.out_count += 1;
            }
            NodeEventKind::Drain => f.out_count += 1,
            // Fallible-remediation churn: every failed repair attempt and
            // flunked probation files another ticket against the node, and
            // quarantine is one final service removal — so budget-exhausted
            // nodes light up the detector's ticket/out-count criteria.
            NodeEventKind::RepairAttemptFailed | NodeEventKind::ProbationFailed => {
                f.tickets += 1;
            }
            NodeEventKind::Quarantined => {
                f.tickets += 1;
                f.out_count += 1;
            }
            NodeEventKind::ExitRemediation
            | NodeEventKind::RepairEscalated
            | NodeEventKind::EnterProbation
            | NodeEventKind::ProbationPassed => {}
        }
    }

    // Health-event times per node, for caused-by attribution of multi-node
    // failures: blaming every node of a failed 32-node job would swamp the
    // signal with innocent bystanders.
    let mut event_times: Vec<Vec<SimTime>> = vec![Vec::new(); n];
    for e in view.health_events() {
        event_times[e.node.as_usize()].push(e.at);
    }
    // A node pulled from service at the failure instant is implicated even
    // when no check fired (the NODE_FAIL heartbeat path).
    for e in view.node_events() {
        if matches!(
            e.kind,
            NodeEventKind::EnterRemediation | NodeEventKind::Drain
        ) {
            event_times[e.node.as_usize()].push(e.at);
        }
    }
    for times in &mut event_times {
        times.sort();
    }
    let implicated = |node: usize, end: SimTime| -> bool {
        let lo = end - rsc_sim_core::time::SimDuration::from_mins(10);
        let hi = end + rsc_sim_core::time::SimDuration::from_mins(5);
        let times = &event_times[node];
        let start = times.partition_point(|&t| t < lo);
        start < times.len() && times[start] <= hi
    };

    // Job-derived failure counts.
    let mut single_jobs: Vec<u32> = vec![0; n];
    for r in view.jobs() {
        if r.ended_at < from || r.ended_at > to || r.started_at.is_none() {
            continue;
        }
        let infra_failed = matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued);
        if r.nodes.len() == 1 {
            let i = r.nodes[0].as_usize();
            single_jobs[i] += 1;
            if infra_failed {
                features[i].single_node_node_fails += 1;
            }
        } else if infra_failed {
            // Blame only nodes a health event implicates; a NODE_FAIL hang
            // with no events falls back to blaming the whole allocation.
            let blamed: Vec<usize> = r
                .nodes
                .iter()
                .map(|nd| nd.as_usize())
                .filter(|&i| implicated(i, r.ended_at))
                .collect();
            if blamed.is_empty() {
                for node in &r.nodes {
                    features[node.as_usize()].multi_node_node_fails += 1;
                }
            } else {
                for i in blamed {
                    features[i].multi_node_node_fails += 1;
                }
            }
        }
    }
    for (i, &total) in single_jobs.iter().enumerate() {
        if total > 0 {
            features[i].single_node_node_failure_rate =
                features[i].single_node_node_fails as f64 / total as f64;
        }
    }
    features
}

/// Computes features over the trailing `window` ending at `now`: the batch
/// twin of the streaming `rsc-monitor` windowed estimator, and exactly
/// [`compute_features`] over `[now − window, now]`. The lower bound
/// saturates at time zero, so a window at least as long as the run
/// degenerates to the full-range pass.
pub fn compute_windowed_features(
    view: &TelemetryView,
    now: SimTime,
    window: SimDuration,
) -> Vec<LemonFeatures> {
    compute_features(view, now - window, now)
}

/// Threshold classifier over the features.
///
/// The paper tuned thresholds manually against accuracy and false-positive
/// rate; these defaults flag a node when enough independent signals agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LemonDetector {
    /// Minimum distinct XIDs to count the XID criterion.
    pub min_xid_cnt: u32,
    /// Minimum repair tickets to count the ticket criterion.
    pub min_tickets: u32,
    /// Minimum out-of-service count.
    pub min_out_count: u32,
    /// Minimum multi-node job failures.
    pub min_multi_node_fails: u32,
    /// Minimum single-node job failures.
    pub min_single_node_fails: u32,
    /// Minimum single-node failure rate.
    pub min_single_node_rate: f64,
    /// How many criteria must fire to flag a lemon.
    pub min_criteria: u32,
}

impl LemonDetector {
    /// Defaults tuned on the simulated 28-day window.
    pub fn rsc_default() -> Self {
        LemonDetector {
            min_xid_cnt: 2,
            min_tickets: 3,
            min_out_count: 4,
            min_multi_node_fails: 3,
            min_single_node_fails: 2,
            min_single_node_rate: 0.25,
            min_criteria: 2,
        }
    }

    /// Number of criteria a node's features satisfy.
    pub fn score(&self, f: &LemonFeatures) -> u32 {
        let mut score = 0;
        if f.xid_cnt >= self.min_xid_cnt {
            score += 1;
        }
        if f.tickets >= self.min_tickets {
            score += 1;
        }
        if f.out_count >= self.min_out_count {
            score += 1;
        }
        if f.multi_node_node_fails >= self.min_multi_node_fails {
            score += 1;
        }
        if f.single_node_node_fails >= self.min_single_node_fails {
            score += 1;
        }
        if f.single_node_node_failure_rate >= self.min_single_node_rate
            && f.single_node_node_fails >= 1
        {
            score += 1;
        }
        score
    }

    /// Whether the node is flagged.
    pub fn is_lemon(&self, f: &LemonFeatures) -> bool {
        self.score(f) >= self.min_criteria
    }

    /// Flags lemons among the given features.
    pub fn detect(&self, features: &[LemonFeatures]) -> Vec<NodeId> {
        features
            .iter()
            .filter(|f| self.is_lemon(f))
            .map(|f| f.node)
            .collect()
    }
}

impl Default for LemonDetector {
    fn default() -> Self {
        LemonDetector::rsc_default()
    }
}

impl LemonDetector {
    /// Tunes detector thresholds against labelled ground truth by grid
    /// search, maximizing F1 (the paper tuned "manually based on accuracy
    /// and false positive rate"; this automates that loop for new
    /// deployments). Returns the best detector and its F1.
    ///
    /// The grid scales the default thresholds by factors in
    /// `{0.5, 1, 1.5, 2, 3}` independently for failure-count vs
    /// ticket-count families, crossed with 1–3 agreeing criteria.
    pub fn tune(features: &[LemonFeatures], ground_truth: &[NodeId]) -> (LemonDetector, f64) {
        let base = LemonDetector::rsc_default();
        let scales = [0.5f64, 1.0, 1.5, 2.0, 3.0];
        let mut best = (base, -1.0f64);
        for &fail_scale in &scales {
            for &ticket_scale in &scales {
                for min_criteria in 1..=3u32 {
                    let candidate = LemonDetector {
                        min_xid_cnt: scale_u32(base.min_xid_cnt, ticket_scale),
                        min_tickets: scale_u32(base.min_tickets, ticket_scale),
                        min_out_count: scale_u32(base.min_out_count, ticket_scale),
                        min_multi_node_fails: scale_u32(base.min_multi_node_fails, fail_scale),
                        min_single_node_fails: scale_u32(base.min_single_node_fails, fail_scale),
                        min_single_node_rate: base.min_single_node_rate * fail_scale,
                        min_criteria,
                    };
                    let detected = candidate.detect(features);
                    let q = DetectionQuality::evaluate(&detected, ground_truth);
                    let (p, r) = (q.precision(), q.recall());
                    let f1 = if p + r > 0.0 {
                        2.0 * p * r / (p + r)
                    } else {
                        0.0
                    };
                    if f1 > best.1 {
                        best = (candidate, f1);
                    }
                }
            }
        }
        best
    }
}

fn scale_u32(x: u32, factor: f64) -> u32 {
    ((x as f64 * factor).round() as u32).max(1)
}

/// Detection quality against planted ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Correctly flagged lemons.
    pub true_positives: usize,
    /// Healthy nodes incorrectly flagged.
    pub false_positives: usize,
    /// Lemons missed.
    pub false_negatives: usize,
}

impl DetectionQuality {
    /// Compares detected against ground-truth lemon sets.
    pub fn evaluate(detected: &[NodeId], ground_truth: &[NodeId]) -> Self {
        let det: HashSet<_> = detected.iter().collect();
        let truth: HashSet<_> = ground_truth.iter().collect();
        DetectionQuality {
            true_positives: det.intersection(&truth).count(),
            false_positives: det.difference(&truth).count(),
            false_negatives: truth.difference(&det).count(),
        }
    }

    /// Precision — the paper's "accuracy of predicted lemon nodes".
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            return 0.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// Recall over the planted lemons.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            return 0.0;
        }
        self.true_positives as f64 / actual as f64
    }
}

/// Fig. 11: per-feature CDFs across all nodes.
///
/// Returns `(feature name, ECDF over nodes)`, in the figure's order.
pub fn feature_cdfs(features: &[LemonFeatures]) -> Vec<(&'static str, Ecdf)> {
    vec![
        (
            "excl_jobid_count",
            Ecdf::from_samples(features.iter().map(|f| f.excl_jobid_count as f64)),
        ),
        (
            "xid_cnt",
            Ecdf::from_samples(features.iter().map(|f| f.xid_cnt as f64)),
        ),
        (
            "tickets",
            Ecdf::from_samples(features.iter().map(|f| f.tickets as f64)),
        ),
        (
            "out_count",
            Ecdf::from_samples(features.iter().map(|f| f.out_count as f64)),
        ),
        (
            "multi_node_node_fails",
            Ecdf::from_samples(features.iter().map(|f| f.multi_node_node_fails as f64)),
        ),
        (
            "single_node_node_fails",
            Ecdf::from_samples(features.iter().map(|f| f.single_node_node_fails as f64)),
        ),
        (
            "single_node_node_failure_rate",
            Ecdf::from_samples(features.iter().map(|f| f.single_node_node_failure_rate)),
        ),
    ]
}

/// The fraction of large jobs (≥ `min_gpus`) that end in an infrastructure
/// failure — the paper's before/after lemon-removal metric (14% → 4%).
pub fn large_job_failure_rate(view: &TelemetryView, min_gpus: u32) -> f64 {
    let mut total = 0u64;
    let mut failed = 0u64;
    for r in view.jobs() {
        if r.gpus < min_gpus || r.started_at.is_none() {
            continue;
        }
        total += 1;
        if matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued) {
            failed += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    failed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(node: u32) -> LemonFeatures {
        LemonFeatures::new(NodeId::new(node))
    }

    #[test]
    fn healthy_node_is_not_flagged() {
        let det = LemonDetector::rsc_default();
        assert!(!det.is_lemon(&features(0)));
        assert_eq!(det.score(&features(0)), 0);
    }

    #[test]
    fn bad_node_is_flagged() {
        let det = LemonDetector::rsc_default();
        let mut f = features(1);
        f.tickets = 5;
        f.out_count = 6;
        f.multi_node_node_fails = 4;
        assert!(det.is_lemon(&f));
        assert_eq!(det.score(&f), 3);
    }

    #[test]
    fn single_criterion_is_not_enough() {
        let det = LemonDetector::rsc_default();
        let mut f = features(1);
        f.tickets = 100;
        assert!(!det.is_lemon(&f)); // tickets alone also bumps... only 1 criterion
    }

    #[test]
    fn tuning_finds_a_separating_detector() {
        // Ground truth: nodes 0 and 1 are lemons with strong signals;
        // nodes 2–9 are healthy with mild noise.
        let mut fs: Vec<LemonFeatures> = (0..10).map(features).collect();
        for f in fs.iter_mut().take(2) {
            f.tickets = 8;
            f.out_count = 9;
            f.multi_node_node_fails = 6;
            f.xid_cnt = 4;
        }
        fs[5].tickets = 1; // noise
        let truth = vec![NodeId::new(0), NodeId::new(1)];
        let (tuned, f1) = LemonDetector::tune(&fs, &truth);
        assert!(f1 > 0.99, "f1={f1}");
        let detected = tuned.detect(&fs);
        assert_eq!(detected, truth);
    }

    #[test]
    fn tuning_never_beats_perfect_default_case() {
        // With no signal at all, the best F1 is 0 and tune returns sanely.
        let fs: Vec<LemonFeatures> = (0..5).map(features).collect();
        let (_, f1) = LemonDetector::tune(&fs, &[NodeId::new(3)]);
        assert_eq!(f1, 0.0);
    }

    #[test]
    fn quality_metrics() {
        let detected = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let truth = vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)];
        let q = DetectionQuality::evaluate(&detected, &truth);
        assert_eq!(q.true_positives, 2);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 1);
        assert!((q.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_detection_has_zero_precision() {
        let q = DetectionQuality::evaluate(&[], &[NodeId::new(1)]);
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 0.0);
    }

    #[test]
    fn cdfs_cover_all_features() {
        let fs = vec![features(0), features(1)];
        let cdfs = feature_cdfs(&fs);
        assert_eq!(cdfs.len(), 7);
        for (_, cdf) in &cdfs {
            assert_eq!(cdf.len(), 2);
        }
    }
}
