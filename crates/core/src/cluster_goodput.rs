//! The cluster-goodput waterfall (paper §II-D).
//!
//! "The cluster as a whole can be measured in terms of goodput … The
//! clusters discussed in this paper operate at high utilization, and thus
//! job preemption, resource fragmentation, and failures are the dominant
//! sources of lost goodput." This module decomposes total capacity into
//! that waterfall: productive work, restart overhead, checkpoint-replay
//! loss, preempted/failed residue, and idle.

use serde::{Deserialize, Serialize};

use rsc_sched::job::JobStatus;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

/// Decomposition of a cluster's GPU-time over the measurement window.
/// All values in GPU-hours; fractions available via [`Self::fractions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputWaterfall {
    /// Total capacity: GPUs × wallclock.
    pub capacity: f64,
    /// Scheduled time that produced retained progress.
    pub productive: f64,
    /// Restart overhead paid at every attempt start.
    pub restart_overhead: f64,
    /// Progress lost to interruptions (work since the last checkpoint,
    /// in expectation Δt_cp/2 per interruption).
    pub replay_loss: f64,
    /// GPU-time never allocated to any job.
    pub idle: f64,
}

impl GoodputWaterfall {
    /// The waterfall as fractions of capacity:
    /// `(productive, restart, replay, idle)`.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let c = self.capacity.max(f64::MIN_POSITIVE);
        (
            self.productive / c,
            self.restart_overhead / c,
            self.replay_loss / c,
            self.idle / c,
        )
    }

    /// Normalized cluster goodput (the §II-D utilization-like quantity).
    pub fn goodput(&self) -> f64 {
        self.productive / self.capacity.max(f64::MIN_POSITIVE)
    }
}

/// Computes the waterfall with the paper's accounting assumptions: every
/// attempt pays its spec'd restart overhead; every *interrupted* attempt
/// additionally loses half a checkpoint interval of progress.
pub fn goodput_waterfall(
    view: &TelemetryView,
    gpus_per_node: u32,
    checkpoint_interval: SimDuration,
    restart_overhead: SimDuration,
) -> GoodputWaterfall {
    let capacity = view.num_nodes() as f64 * gpus_per_node as f64 * view.horizon().as_hours();
    let mut scheduled = 0.0f64;
    let mut restart = 0.0f64;
    let mut replay = 0.0f64;
    for r in view.jobs() {
        if r.started_at.is_none() {
            continue;
        }
        let gpu_hours = r.gpu_time().as_hours();
        scheduled += gpu_hours;
        let runtime = r.runtime();
        restart += restart_overhead.min(runtime).as_hours() * r.gpus as f64;
        let interrupted = matches!(
            r.status,
            JobStatus::NodeFail | JobStatus::Requeued | JobStatus::Preempted
        );
        if interrupted {
            let lost = runtime
                .saturating_sub(restart_overhead)
                .min(SimDuration::from_secs(checkpoint_interval.as_secs() / 2));
            replay += lost.as_hours() * r.gpus as f64;
        }
    }
    let productive = (scheduled - restart - replay).max(0.0);
    let idle = (capacity - scheduled).max(0.0);
    GoodputWaterfall {
        capacity,
        productive,
        restart_overhead: restart,
        replay_loss: replay,
        idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::{JobId, NodeId};
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::QosClass;
    use rsc_sim_core::time::SimTime;
    use rsc_telemetry::TelemetryStore;
    use rsc_telemetry::TelemetryView;

    fn record(id: u64, gpus: u32, hours: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(0)],
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status,
            preempted_by: None,
            instigator: None,
        }
    }

    fn store(records: Vec<JobRecord>, nodes: u32, horizon_h: u64) -> TelemetryView {
        let mut s = TelemetryStore::new("t", nodes);
        s.extend_jobs(records);
        s.set_horizon(SimTime::from_hours(horizon_h));
        s.seal()
    }

    #[test]
    fn waterfall_sums_to_capacity() {
        let s = store(
            vec![
                record(1, 8, 10, JobStatus::Completed),
                record(2, 8, 5, JobStatus::NodeFail),
            ],
            2,
            24,
        );
        let w = goodput_waterfall(&s, 8, SimDuration::from_hours(1), SimDuration::from_mins(6));
        assert!((w.capacity - 2.0 * 8.0 * 24.0).abs() < 1e-9);
        let total = w.productive + w.restart_overhead + w.replay_loss + w.idle;
        assert!(
            (total - w.capacity).abs() < 1e-6,
            "total={total} cap={}",
            w.capacity
        );
        let (p, r, l, i) = w.fractions();
        assert!((p + r + l + i - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interrupted_jobs_lose_replay_time() {
        let completed = store(vec![record(1, 8, 10, JobStatus::Completed)], 1, 24);
        let interrupted = store(vec![record(1, 8, 10, JobStatus::Requeued)], 1, 24);
        let ckpt = SimDuration::from_hours(1);
        let u0 = SimDuration::from_mins(6);
        let w_done = goodput_waterfall(&completed, 8, ckpt, u0);
        let w_int = goodput_waterfall(&interrupted, 8, ckpt, u0);
        assert_eq!(w_done.replay_loss, 0.0);
        // Half an hour × 8 GPUs = 4 GPU-hours.
        assert!((w_int.replay_loss - 4.0).abs() < 1e-9);
        assert!(w_int.goodput() < w_done.goodput());
    }

    #[test]
    fn short_attempts_cannot_lose_more_than_they_ran() {
        // A 3-minute attempt can't pay a 6-minute overhead plus replay.
        let s = store(
            vec![{
                let mut r = record(1, 8, 1, JobStatus::NodeFail);
                r.ended_at = SimTime::from_mins(3);
                r
            }],
            1,
            24,
        );
        let w = goodput_waterfall(&s, 8, SimDuration::from_hours(1), SimDuration::from_mins(6));
        assert!(w.productive >= 0.0);
        assert!(w.restart_overhead <= 8.0 * 3.0 / 60.0 + 1e-9);
    }
}
