//! Model FLOPs Utilization (paper §II-D).
//!
//! The paper contrasts ETTR with MFU: ETTR measures reliability overheads,
//! MFU measures "degraded performance or suboptimal implementations" —
//! e.g. communication stalls. This roofline model estimates MFU for a
//! data-parallel transformer from compute intensity and ring all-reduce
//! cost over the fabric, reproducing the regime the paper quotes (LLM MFU
//! around 38–43% for Llama 3) and how it erodes as jobs scale out.

use serde::{Deserialize, Serialize};

/// A data-parallel transformer training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Model parameters, billions.
    pub params_billions: f64,
    /// Global batch size, tokens per optimizer step.
    pub global_batch_tokens: f64,
    /// GPUs in the job.
    pub gpus: u32,
    /// Per-GPU peak, TFLOP/s (A100 bf16 ≈ 312).
    pub peak_tflops: f64,
    /// Fraction of peak the kernels reach when compute-bound (the
    /// implementation-quality ceiling MFU can never exceed).
    pub kernel_efficiency: f64,
    /// Gradient bytes per parameter exchanged per step (bf16 = 2).
    pub grad_bytes_per_param: f64,
    /// Achievable per-GPU all-reduce bus bandwidth, Gb/s.
    pub busbw_gbps: f64,
    /// Fraction of communication hidden behind compute, `[0, 1]`.
    pub comm_overlap: f64,
}

impl TrainingConfig {
    /// A Llama-3-405B-like pretraining shape on A100-class hardware.
    pub fn llama3_405b_like(gpus: u32) -> Self {
        TrainingConfig {
            params_billions: 405.0,
            global_batch_tokens: 16.0e6,
            gpus,
            peak_tflops: 312.0,
            kernel_efficiency: 0.55,
            grad_bytes_per_param: 2.0,
            busbw_gbps: 800.0,
            comm_overlap: 0.7,
        }
    }

    /// Compute time per step per GPU, seconds (6·N·D FLOPs split evenly).
    pub fn compute_secs_per_step(&self) -> f64 {
        let flops = 6.0 * self.params_billions * 1e9 * self.global_batch_tokens;
        let per_gpu = flops / self.gpus as f64;
        per_gpu / (self.peak_tflops * 1e12 * self.kernel_efficiency)
    }

    /// Exposed (non-overlapped) communication time per step, seconds:
    /// ring all-reduce moves `2·(N−1)/N · params · bytes` per GPU.
    pub fn exposed_comm_secs_per_step(&self) -> f64 {
        let n = self.gpus as f64;
        let bytes = 2.0 * (n - 1.0) / n * self.params_billions * 1e9 * self.grad_bytes_per_param;
        let secs = bytes * 8.0 / (self.busbw_gbps * 1e9);
        secs * (1.0 - self.comm_overlap.clamp(0.0, 1.0))
    }

    /// Estimated MFU: model FLOPs over wallclock × peak.
    pub fn mfu(&self) -> f64 {
        let compute = self.compute_secs_per_step();
        let step = compute + self.exposed_comm_secs_per_step();
        let useful_fraction = compute / step;
        self.kernel_efficiency * useful_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_like_mfu_in_paper_band() {
        // The paper quotes 38–43% for Llama 3 training.
        let mfu = TrainingConfig::llama3_405b_like(16_384).mfu();
        assert!((0.36..=0.46).contains(&mfu), "mfu={mfu}");
    }

    #[test]
    fn scaling_out_with_fixed_batch_erodes_mfu() {
        let small = TrainingConfig::llama3_405b_like(4_096).mfu();
        let large = TrainingConfig::llama3_405b_like(65_536).mfu();
        assert!(large < small, "small={small} large={large}");
    }

    #[test]
    fn kernel_efficiency_bounds_mfu() {
        for gpus in [1024u32, 16_384, 131_072] {
            let c = TrainingConfig::llama3_405b_like(gpus);
            assert!(c.mfu() <= c.kernel_efficiency + 1e-12);
            assert!(c.mfu() > 0.0);
        }
    }

    #[test]
    fn full_overlap_reaches_kernel_ceiling() {
        let mut c = TrainingConfig::llama3_405b_like(16_384);
        c.comm_overlap = 1.0;
        assert!((c.mfu() - c.kernel_efficiency).abs() < 1e-12);
    }

    #[test]
    fn more_bandwidth_helps() {
        let mut slow = TrainingConfig::llama3_405b_like(32_768);
        slow.busbw_gbps = 200.0;
        let mut fast = slow;
        fast.busbw_gbps = 1_600.0;
        assert!(fast.mfu() > slow.mfu());
    }

    #[test]
    fn ettr_and_mfu_measure_different_things() {
        // Degraded links cut MFU but leave ETTR untouched (no failure) —
        // the paper's point about the two metrics being complementary.
        let mut degraded = TrainingConfig::llama3_405b_like(16_384);
        degraded.busbw_gbps *= 0.25; // AR-less fabric under bit errors
        let healthy = TrainingConfig::llama3_405b_like(16_384);
        assert!(degraded.mfu() < 0.9 * healthy.mfu());
    }
}
