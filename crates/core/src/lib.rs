#![warn(missing_docs)]

//! # rsc-core — the paper's analysis toolkit
//!
//! The primary contribution of *"Revisiting Reliability in Large-Scale
//! Machine Learning Research Clusters"* (HPCA 2025), as a library:
//!
//! - [`attribution`] — differential-diagnosis failure attribution over
//!   health-check events in a 10-min/5-min window around job endings
//!   (§III, Fig. 4), with ground-truth validation;
//! - [`mttf`] — empirical MTTF by job size with Gamma-posterior confidence
//!   intervals, the `r_f` node-failure-rate estimator, and the
//!   `MTTF = 1/(N·r_f)` projection validated to 4k GPUs and extrapolated
//!   to 131k (Fig. 7, Obs. 8);
//! - [`ettr`] — the expected-ETTR analytical estimator (Eq. 1/2, Appendix
//!   A), its Monte-Carlo validator, measured job-run ETTR (Fig. 9), and
//!   checkpoint-requirement inversion at 100k-GPU scale (Fig. 10);
//! - [`lemon`] — the seven-signal lemon-node detection pipeline with
//!   precision/recall evaluation against planted ground truth (§IV-A,
//!   Fig. 11, Table II);
//! - [`goodput`] — first-order failure and second-order preemption
//!   goodput-loss accounting (Fig. 8, Obs. 9);
//! - [`nccl_debug`] — the §V NCCL-timeout differential diagnosis over
//!   per-rank collective traces;
//! - [`fit`] — exponential/Weibull fitting of failure interarrivals, to
//!   *check* the Poisson assumption behind the MTTF model;
//! - [`queueing`] — queue-wait statistics by size and QoS (Fig. 9's
//!   wait-time caveat);
//! - [`availability`] — per-node downtime, measured MTTR, and fleet
//!   availability from remediation events (Obs. 1);
//! - [`cluster_goodput`] — the §II-D capacity waterfall: productive /
//!   restart / replay / idle GPU-time;
//! - [`mfu`] — a roofline Model-FLOPs-Utilization estimator (§II-D's
//!   companion metric to ETTR);
//! - [`repair_unit`] — §V's rack-scale repair-unit economics (GB200) and
//!   the in-place fault tolerance needed to offset them;
//! - [`report`] — the Fig. 3 / Fig. 6 aggregations and the Table I
//!   taxonomy printer.
//!
//! # Example
//!
//! Project MTTF at frontier scale from the paper's RSC-1 failure rate:
//!
//! ```
//! use rsc_core::mttf::MttfProjection;
//!
//! let proj = MttfProjection::new(6.5e-3); // failures per node-day
//! assert!((proj.mttf_hours(16_384) - 1.8).abs() < 0.05);
//! assert!((proj.mttf_hours(131_072) - 0.23).abs() < 0.01);
//! ```

pub mod attribution;
pub mod availability;
pub mod cluster_goodput;
pub mod ettr;
pub mod fit;
pub mod goodput;
pub mod lemon;
pub mod mfu;
pub mod mttf;
pub mod nccl_debug;
pub mod queueing;
pub mod repair_unit;
pub mod report;

pub use attribution::{attribute_failures, cause_rates, Attribution, AttributionConfig};
pub use ettr::{expected_ettr, EttrParams};
pub use goodput::{goodput_loss, GoodputLoss};
pub use lemon::{compute_features, DetectionQuality, LemonDetector, LemonFeatures};
pub use mttf::{
    estimate_node_failure_rate, estimate_status_only_failure_rate, mttf_by_job_size, MttfPoint,
    MttfProjection,
};
pub use report::{size_distribution, status_breakdown, SizeShare, StatusShare};
