//! Fabric benchmarks: routing and collective evaluation drive the Fig. 12
//! experiments and the ablation sweeps.

use criterion::{criterion_group, criterion_main, Criterion};

use rsc_cluster::ids::NodeId;
use rsc_cluster::spec::ClusterSpec;
use rsc_network::collective::{evaluate_collectives, AllReduce};
use rsc_network::experiments::{ber_injection_experiment, contention_experiment};
use rsc_network::fabric::Fabric;
use rsc_network::routing::RoutingPolicy;

fn bench_single_collective(c: &mut Criterion) {
    let spec = ClusterSpec::new("bench", 64);
    let fabric = Fabric::new(&spec);
    let ar = AllReduce::new((0..64).map(NodeId::new).collect());
    c.bench_function("allreduce_512gpu_adaptive", |b| {
        b.iter(|| {
            evaluate_collectives(&fabric, std::slice::from_ref(&ar), RoutingPolicy::Adaptive)
                .busbw_gbps[0]
        });
    });
    c.bench_function("allreduce_512gpu_static", |b| {
        b.iter(|| {
            evaluate_collectives(
                &fabric,
                std::slice::from_ref(&ar),
                RoutingPolicy::Static {
                    shield_threshold: 0.95,
                },
            )
            .busbw_gbps[0]
        });
    });
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_experiments");
    group.sample_size(10);
    group.bench_function("ber_injection_5_iterations", |b| {
        b.iter(|| ber_injection_experiment(5, 0.5, 0.8, 1).len());
    });
    group.bench_function("contention_64_groups", |b| {
        b.iter(|| contention_experiment(64, 2).with_ar_gbps.len());
    });
    group.finish();
}

criterion_group!(benches, bench_single_collective, bench_experiments);
criterion_main!(benches);
