//! Simulator throughput benchmarks: how fast the discrete-event engine
//! chews through cluster-days at different scales. These keep the figure
//! harness honest — every figure reruns the simulator, so regressions here
//! multiply across the whole reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn bench_sim_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_day");
    group.sample_size(10);
    for divisor in [32u32, 8] {
        let config = SimConfig::rsc1().scaled_down(divisor);
        group.bench_with_input(
            BenchmarkId::new("rsc1_scale", format!("1/{divisor}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut sim = ClusterSim::new(config.clone(), 1);
                    sim.run(SimDuration::from_days(1));
                    sim.into_telemetry().jobs().len()
                });
            },
        );
    }
    group.finish();
}

fn bench_failure_injection(c: &mut Criterion) {
    use rsc_failure::injector::FailureInjector;
    use rsc_failure::modes::ModeCatalog;
    use rsc_failure::process::HazardSchedule;
    use rsc_sim_core::rng::SimRng;
    use rsc_sim_core::time::SimTime;

    c.bench_function("failure_injector_2048_nodes_30_days", |b| {
        b.iter(|| {
            let schedule = HazardSchedule::new(ModeCatalog::rsc1());
            let mut inj = FailureInjector::new(schedule, 2048, SimRng::seed_from(1));
            inj.drain_until(SimTime::from_days(30)).len()
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    use rsc_sim_core::rng::SimRng;
    use rsc_sim_core::time::SimTime;
    use rsc_workload::generator::JobStream;
    use rsc_workload::profile::WorkloadProfile;

    c.bench_function("generate_one_day_of_rsc1_jobs", |b| {
        b.iter(|| {
            let mut stream = JobStream::new(WorkloadProfile::rsc1(), SimRng::seed_from(2));
            stream.take_until(SimTime::from_days(1)).len()
        });
    });
}

criterion_group!(
    benches,
    bench_sim_day,
    bench_failure_injection,
    bench_workload_generation
);
criterion_main!(benches);
