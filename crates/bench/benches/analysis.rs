//! Analysis-pipeline benchmarks: attribution, MTTF fitting, goodput
//! accounting, and lemon-feature extraction over a prebuilt telemetry
//! store (30 simulated days at 1/32 scale).

use criterion::{criterion_group, criterion_main, Criterion};

use rsc_core::attribution::{attribute_failures, AttributionConfig};
use rsc_core::goodput::goodput_loss;
use rsc_core::lemon::compute_features;
use rsc_core::mttf::{gamma_mttf_ci, mttf_by_job_size, FailureScope};
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::view::TelemetryView;

fn store() -> TelemetryView {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 77);
    sim.run(SimDuration::from_days(30));
    sim.into_telemetry().seal()
}

fn bench_attribution(c: &mut Criterion) {
    let t = store();
    c.bench_function("attribute_failures_30_days", |b| {
        b.iter(|| attribute_failures(&t, &AttributionConfig::paper_default()).len());
    });
}

fn bench_mttf(c: &mut Criterion) {
    let t = store();
    c.bench_function("mttf_by_job_size_30_days", |b| {
        b.iter(|| {
            mttf_by_job_size(
                &t,
                FailureScope::AllFailures,
                &AttributionConfig::paper_default(),
            )
            .len()
        });
    });
    c.bench_function("gamma_mttf_ci", |b| {
        b.iter(|| gamma_mttf_ci(criterion::black_box(137), 12_345.0, 0.90));
    });
}

fn bench_goodput(c: &mut Criterion) {
    let t = store();
    c.bench_function("goodput_loss_30_days", |b| {
        b.iter(|| goodput_loss(&t, &AttributionConfig::paper_default()).total_failure_loss);
    });
}

fn bench_lemon_features(c: &mut Criterion) {
    let t = store();
    c.bench_function("lemon_features_30_days", |b| {
        b.iter(|| compute_features(&t, SimTime::ZERO, t.horizon()).len());
    });
}

criterion_group!(
    benches,
    bench_attribution,
    bench_mttf,
    bench_goodput,
    bench_lemon_features
);
criterion_main!(benches);
