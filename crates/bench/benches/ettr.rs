//! ETTR estimator benchmarks: the closed form is used inside parameter
//! sweeps (Fig. 10) and must stay cheap; Monte Carlo sets the baseline it
//! replaces.

use criterion::{criterion_group, criterion_main, Criterion};

use rsc_core::ettr::analytical::{expected_ettr, EttrParams};
use rsc_core::ettr::montecarlo::monte_carlo_ettr;
use rsc_core::ettr::requirements::max_coupled_interval_mins;
use rsc_sim_core::rng::SimRng;

fn params() -> EttrParams {
    EttrParams {
        nodes: 2048,
        r_f: 6.5e-3,
        queue_time: 5.0 / 60.0 / 24.0,
        restart_overhead: 5.0 / 60.0 / 24.0,
        checkpoint_interval: 1.0 / 24.0,
        productive_time: 7.0,
    }
}

fn bench_analytic(c: &mut Criterion) {
    let p = params();
    c.bench_function("expected_ettr_closed_form", |b| {
        b.iter(|| expected_ettr(criterion::black_box(&p)));
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let p = params();
    c.bench_function("monte_carlo_ettr_1000_trials", |b| {
        let mut rng = SimRng::seed_from(5);
        b.iter(|| monte_carlo_ettr(&p, 1000, &mut rng).mean);
    });
}

fn bench_requirement_solver(c: &mut Criterion) {
    c.bench_function("max_coupled_interval_bisection", |b| {
        b.iter(|| max_coupled_interval_mins(100_000, 2.34e-3, 0.9, 1.0, 7.0));
    });
}

criterion_group!(
    benches,
    bench_analytic,
    bench_monte_carlo,
    bench_requirement_solver
);
criterion_main!(benches);
