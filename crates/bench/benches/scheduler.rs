//! Scheduler benchmarks: the per-cycle cost bounds full-scale simulation
//! speed (one cycle runs after every event).

use criterion::{criterion_group, criterion_main, Criterion};

use rsc_cluster::ids::JobId;
use rsc_cluster::spec::ClusterSpec;
use rsc_cluster::topology::Topology;
use rsc_sched::job::{Destiny, JobSpec, QosClass};
use rsc_sched::sched::{SchedConfig, Scheduler};
use rsc_sim_core::time::{SimDuration, SimTime};

fn spec(id: u64, gpus: u32, qos: QosClass) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        project: Default::default(),
        run: None,
        gpus,
        submit_at: SimTime::ZERO,
        work: SimDuration::from_hours(4),
        time_limit: SimDuration::from_days(1),
        qos,
        checkpoint_interval: SimDuration::from_hours(1),
        restart_overhead: SimDuration::from_mins(5),
        destiny: Destiny::Complete,
        requeue_on_user_failure: false,
    }
}

fn bench_cycle_with_backlog(c: &mut Criterion) {
    c.bench_function("cycle_256_nodes_500_pending", |b| {
        b.iter_with_setup(
            || {
                let topo = Topology::new(&ClusterSpec::new("bench", 256));
                let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
                for i in 0..500u64 {
                    let gpus = match i % 4 {
                        0 => 1,
                        1 => 8,
                        2 => 32,
                        _ => 2,
                    };
                    let qos = if i % 10 == 0 {
                        QosClass::High
                    } else {
                        QosClass::Low
                    };
                    sched.submit(spec(i + 1, gpus, qos));
                }
                sched
            },
            |mut sched| sched.cycle(SimTime::from_mins(5)).len(),
        );
    });
}

fn bench_allocation(c: &mut Criterion) {
    use rsc_sched::alloc::ResourcePool;
    let topo = Topology::new(&ClusterSpec::new("bench", 2048));
    let pool = ResourcePool::new(topo);
    let big = spec(1, 4096, QosClass::High);
    c.bench_function("allocate_4096_gpus_on_2048_nodes", |b| {
        b.iter(|| pool.try_allocate(&big).map(|v| v.len()));
    });
    let small = spec(2, 2, QosClass::Low);
    c.bench_function("allocate_2_gpus_on_2048_nodes", |b| {
        b.iter(|| pool.try_allocate(&small).map(|v| v.len()));
    });
}

criterion_group!(benches, bench_cycle_with_backlog, bench_allocation);
criterion_main!(benches);
