//! Byte-identity proofs for the simulation hot paths.
//!
//! Two retained reference implementations back these checks:
//!
//! * the scheduler keeps its pre-optimization O(nodes) scans as `*_naive`
//!   reference code — verbatim what shipped before the indexed cycle;
//! * the future-event queue keeps a single-binary-heap backend behind
//!   `set_reference_event_queue` — the pre-tiered implementation.
//!
//! Running the default scenario set with either reference routed in must
//! produce sealed snapshots byte-identical to the optimized runs: same
//! starts, same preemption victims, same pop order, same RNG stream, same
//! bytes. (The superposition failure injector is deliberately *not* in this
//! file: it realizes the same law from different draws, so it gets the
//! statistical-equivalence suite in `rsc-failure/tests/superposition.rs`
//! instead of byte comparison.)

use rsc_bench::{rsc1_sized_spec, rsc1_spec, rsc2_spec};
use rsc_sim::{ClusterSim, ScenarioSpec};
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::write_snapshot;

fn snapshot_bytes(spec: &ScenarioSpec, naive: bool) -> Vec<u8> {
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    sim.set_naive_scheduler_scans(naive);
    sim.run(SimDuration::from_days(spec.days));
    let view = sim.into_telemetry().seal();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("in-memory snapshot write");
    bytes
}

#[test]
fn indexed_scheduler_matches_naive_scans_byte_for_byte() {
    // The default scenario set at test scale: both cluster presets (their
    // era schedules exercise different failure mixes) plus a resized RSC-1
    // large enough to hit preemption and conservative-backfill
    // reservations.
    let specs = [
        rsc1_spec(64, 7, 20250301),
        rsc2_spec(64, 7, 20250301),
        rsc1_sized_spec(256, 5, 7),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let indexed = snapshot_bytes(spec, false);
        let naive = snapshot_bytes(spec, true);
        assert!(
            indexed == naive,
            "scenario {i}: sealed snapshot differs between indexed and naive scans \
             ({} vs {} bytes)",
            indexed.len(),
            naive.len()
        );
    }
}

fn snapshot_bytes_queue(spec: &ScenarioSpec, reference_heap: bool) -> Vec<u8> {
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    if reference_heap {
        sim.set_reference_event_queue();
    }
    sim.run(SimDuration::from_days(spec.days));
    let view = sim.into_telemetry().seal();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("in-memory snapshot write");
    bytes
}

#[test]
fn tiered_event_queue_matches_reference_heap_byte_for_byte() {
    // The tiered queue must preserve the *exact* (time, seq) pop order of
    // the single binary heap — not merely a valid order — because the pop
    // order fixes RNG draw order and therefore every downstream byte. The
    // sized RSC-1 run is long enough (and its far-future repair/probation
    // events spread enough) to exercise wheel rebasing and the overflow
    // tier, not just the near band.
    let specs = [
        rsc1_spec(64, 7, 20250301),
        rsc2_spec(64, 7, 20250301),
        rsc1_sized_spec(256, 14, 7),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let tiered = snapshot_bytes_queue(spec, false);
        let reference = snapshot_bytes_queue(spec, true);
        assert!(
            tiered == reference,
            "scenario {i}: sealed snapshot differs between tiered and reference-heap \
             event queues ({} vs {} bytes)",
            tiered.len(),
            reference.len()
        );
    }
}

fn snapshot_bytes_planner(spec: &ScenarioSpec, serial_twin: bool) -> Vec<u8> {
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    if serial_twin {
        sim.set_serial_failure_planning();
    }
    sim.run(SimDuration::from_days(spec.days));
    let view = sim.into_telemetry().seal();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("in-memory snapshot write");
    bytes
}

#[test]
fn batched_failure_planning_matches_lazy_loop_byte_for_byte() {
    // The shard-compute/merge-apply split attributes failures a batch ahead
    // of the clock. The serial twin pins a look-ahead of one and the
    // single-threaded compute path — verbatim the pre-split lazy
    // draw-then-handle loop — and both must seal the same bytes: same
    // injector stream, same lemon masking, same apply order, same
    // simulation-RNG draws.
    let specs = [
        rsc1_spec(64, 7, 20250301),
        rsc2_spec(64, 7, 20250301),
        rsc1_sized_spec(256, 14, 7),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let batched = snapshot_bytes_planner(spec, false);
        let lazy = snapshot_bytes_planner(spec, true);
        assert!(
            batched == lazy,
            "scenario {i}: sealed snapshot differs between batched and lazy failure \
             planning ({} vs {} bytes)",
            batched.len(),
            lazy.len()
        );
    }
}

#[test]
fn per_stream_injector_hook_runs_end_to_end() {
    // The injector swap is same-law-different-realization, so no byte
    // comparison — but the per-stream hook must still drive a full run to
    // a valid sealed snapshot, and differ from the superposition run only
    // in realization (same config, same horizon).
    let spec = rsc1_spec(64, 7, 20250301);
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    sim.set_per_stream_injector();
    sim.run(SimDuration::from_days(spec.days));
    let per_stream = sim.into_telemetry().seal();

    let default_run = spec.simulate();
    assert_eq!(per_stream.horizon(), default_run.horizon());
    // Both realizations should see failures at this scale.
    assert!(!per_stream.ground_truth_failures().is_empty());
    assert!(!default_run.ground_truth_failures().is_empty());
}
