//! Byte-identity proof for the indexed scheduler hot path.
//!
//! The scheduler keeps its pre-optimization O(nodes) scans as retained
//! `*_naive` reference implementations — verbatim the code that shipped
//! before the indexed cycle landed. Running the default scenario set with
//! the naive scans routed in must produce sealed snapshots byte-identical
//! to the indexed runs: same starts, same preemption victims, same
//! reservation times, same RNG stream, same bytes.

use rsc_bench::{rsc1_sized_spec, rsc1_spec, rsc2_spec};
use rsc_sim::{ClusterSim, ScenarioSpec};
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::write_snapshot;

fn snapshot_bytes(spec: &ScenarioSpec, naive: bool) -> Vec<u8> {
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    sim.set_naive_scheduler_scans(naive);
    sim.run(SimDuration::from_days(spec.days));
    let view = sim.into_telemetry().seal();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("in-memory snapshot write");
    bytes
}

#[test]
fn indexed_scheduler_matches_naive_scans_byte_for_byte() {
    // The default scenario set at test scale: both cluster presets (their
    // era schedules exercise different failure mixes) plus a resized RSC-1
    // large enough to hit preemption and conservative-backfill
    // reservations.
    let specs = [
        rsc1_spec(64, 7, 20250301),
        rsc2_spec(64, 7, 20250301),
        rsc1_sized_spec(256, 5, 7),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let indexed = snapshot_bytes(spec, false);
        let naive = snapshot_bytes(spec, true);
        assert!(
            indexed == naive,
            "scenario {i}: sealed snapshot differs between indexed and naive scans \
             ({} vs {} bytes)",
            indexed.len(),
            naive.len()
        );
    }
}
