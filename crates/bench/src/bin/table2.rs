//! Table II: lemon-node root-cause fractions.
//!
//! Plants the paper's 40 lemons (24 RSC-1 + 16 RSC-2) from the Table II
//! distribution and reports the realized root-cause histogram next to the
//! paper's percentages.

use rsc_failure::lemon::{LemonPlan, ROOT_CAUSE_TABLE};
use rsc_sim_core::rng::SimRng;

fn main() {
    rsc_bench::banner(
        "Table II",
        "Fraction of lemon-node root causes",
        "40 planted lemons (24 on RSC-1, 16 on RSC-2), seeded",
    );
    let mut rng = SimRng::seed_from(rsc_bench::FIGURE_SEED);
    let rsc1 = LemonPlan::plant(&mut rng, 2048, 24);
    let rsc2 = LemonPlan::plant(&mut rng, 1024, 16);

    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "component", "paper %", "planted n", "planted %"
    );
    println!("{}", "-".repeat(50));
    let mut rows = Vec::new();
    let total = (rsc1.lemons().len() + rsc2.lemons().len()) as f64;
    for (kind, paper_pct) in ROOT_CAUSE_TABLE {
        let n = rsc1
            .lemons()
            .iter()
            .chain(rsc2.lemons())
            .filter(|l| l.root_cause == kind)
            .count();
        let planted_pct = n as f64 / total * 100.0;
        println!(
            "{:<10} {:>11.1}% {:>12} {:>11.1}%",
            kind.label(),
            paper_pct,
            n,
            planted_pct
        );
        rows.push(vec![
            kind.label().to_string(),
            format!("{paper_pct:.1}"),
            n.to_string(),
            format!("{planted_pct:.1}"),
        ]);
    }
    rsc_bench::save_csv(
        "table2_lemon_root_causes.csv",
        &["component", "paper_pct", "planted_count", "planted_pct"],
        rows,
    );
}
