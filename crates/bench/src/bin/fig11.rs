//! Fig. 11: lemon-node feature CDFs over a 28-day window, with the planted
//! lemons' feature values for contrast.

use rsc_core::lemon::{compute_features, feature_cdfs};
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::{SimDuration, SimTime};

fn main() {
    rsc_bench::banner(
        "Fig. 11",
        "Lemon-detection feature CDFs (28-day window)",
        "RSC-1 at 1/4 scale with 6 planted lemons, 28 simulated days",
    );
    let mut config = SimConfig::rsc1().scaled_down(4);
    config.lemon_count = 6;
    let mut sim = ClusterSim::new(config, rsc_bench::FIGURE_SEED);
    sim.run(SimDuration::from_days(28));
    let lemon_ids = sim.lemons().node_ids();
    let store = sim.into_telemetry().seal();

    let features = compute_features(&store, SimTime::ZERO, store.horizon());
    let cdfs = feature_cdfs(&features);

    let mut rows = Vec::new();
    for (name, cdf) in &cdfs {
        println!("\n{name} (node CDF; sparse features step sharply):");
        for q in [0.50, 0.90, 0.99, 1.00] {
            let v = cdf.quantile(q).unwrap_or(0.0);
            println!("  p{:<3.0} = {v:.3}", q * 100.0);
            rows.push(vec![name.to_string(), format!("{q:.2}"), format!("{v:.4}")]);
        }
        // Lemon nodes' values for contrast.
        let lemon_vals: Vec<f64> = features
            .iter()
            .filter(|f| lemon_ids.contains(&f.node))
            .map(|f| match *name {
                "excl_jobid_count" => f.excl_jobid_count as f64,
                "xid_cnt" => f.xid_cnt as f64,
                "tickets" => f.tickets as f64,
                "out_count" => f.out_count as f64,
                "multi_node_node_fails" => f.multi_node_node_fails as f64,
                "single_node_node_fails" => f.single_node_node_fails as f64,
                _ => f.single_node_node_failure_rate,
            })
            .collect();
        let mean = lemon_vals.iter().sum::<f64>() / lemon_vals.len().max(1) as f64;
        println!("  planted lemons' mean value: {mean:.3}");
    }
    println!("\n(paper: most features are highly sparse — non-smooth CDFs — and");
    println!(" excl_jobid_count correlates weakly, motivating automated detection)");
    rsc_bench::save_csv(
        "fig11_lemon_feature_cdfs.csv",
        &["feature", "quantile", "value"],
        rows,
    );
}
