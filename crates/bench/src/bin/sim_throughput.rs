//! Simulation hot-path throughput: events/sec and wall-time across
//! cluster sizes, persisted as a tracked perf trajectory.
//!
//! Runs the RSC-1-like scaling scenario (see [`rsc_bench::rsc1_sized_spec`])
//! at a sweep of node counts, timing the event loop and the telemetry seal
//! separately, best-of-N rounds like `monitor_overhead` so background-load
//! spikes are discarded. Results merge into `BENCH_sim_throughput.json` at
//! the working directory (the repo root in CI): the `baseline` section is
//! preserved verbatim across runs, so the file always carries the pre-PR
//! reference numbers alongside the current ones and reports the speedup.
//!
//! Alongside the headline wall time, each scale gets a per-phase breakdown
//! (inject vs. queue vs. sched vs. handle) from one extra instrumented run —
//! the timed run is separate so `Instant` overhead never contaminates the
//! speedup-gated numbers. The instrumented run also reports memory: peak
//! RSS over the scale (Linux `VmHWM`, reset per scale) and job-arena
//! allocator statistics (slab capacity and slot-reuse count).
//!
//! Flags:
//!
//! * `--days N` — horizon per scale (default 30);
//! * `--seed N` — RNG seed (default [`rsc_bench::FIGURE_SEED`]);
//! * `--rounds N` — best-of-N rounds per scale (default 2);
//! * `--nodes A,B,C` — node counts to sweep (default
//!   `1024,16384,102400,1000000,10000000`);
//! * `--smoke` — CI-sized sweep: `256,1024,102400` nodes, 3 days, marked
//!   `"smoke": true` so it is never mistaken for trajectory numbers;
//! * `--rebaseline` — overwrite the stored baseline with this run;
//! * `--min-speedup X` — exit nonzero unless every scale present in both
//!   baseline and current sped up by at least `X`;
//! * `--max-eps-regression X` — exit nonzero if `events_per_s` at any scale
//!   present in both baseline and current dropped by more than the fraction
//!   `X` (CI passes `0.10` for the >10% regression gate);
//! * `--max-rss-regression X` — exit nonzero if `peak_rss_mb` at any scale
//!   present in both baseline and current grew by more than the fraction
//!   `X` — the memory-wave twin of the events/s gate, so a perf win that
//!   trades away resident memory fails loudly;
//! * `--out PATH` — output file (default `BENCH_sim_throughput.json`);
//! * `--determinism-check` — run a small scenario plus short 102400-node,
//!   1,000,000-node, and 10,000,000-node scenarios twice each and fail
//!   unless the sealed snapshots are byte-identical (the CI determinism
//!   gate, covering the tiered queue's rebase/overflow paths at fleet
//!   scale and the arena / SoA / bitset / sparse-wheel layouts at
//!   ten-million-node scale).

use std::fmt::Write as _;
use std::time::Instant;

use rsc_bench::{json_number_field, json_object_field};
use rsc_sched::arena::ArenaStats;
use rsc_sim::driver::{ClusterSim, PhaseTimings};
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::write_snapshot;
use rsc_telemetry::SegmentStats;

#[derive(Debug, Clone)]
struct Args {
    days: u64,
    seed: u64,
    rounds: usize,
    nodes: Vec<u32>,
    smoke: bool,
    rebaseline: bool,
    min_speedup: Option<f64>,
    max_eps_regression: Option<f64>,
    max_rss_regression: Option<f64>,
    out: String,
    determinism_check: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            days: 30,
            seed: rsc_bench::FIGURE_SEED,
            rounds: 2,
            nodes: vec![1024, 16_384, 102_400, 1_000_000, 10_000_000],
            smoke: false,
            rebaseline: false,
            min_speedup: None,
            max_eps_regression: None,
            max_rss_regression: None,
            out: "BENCH_sim_throughput.json".to_string(),
            determinism_check: false,
        }
    }
}

fn parse_args() -> Args {
    let mut out = Args::default();
    let mut iter = std::env::args().skip(1);
    let mut nodes_overridden = false;
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> String {
            inline.clone().or_else(|| iter.next()).unwrap_or_else(|| {
                eprintln!("error: {name} requires a value");
                std::process::exit(2);
            })
        };
        let bad = |name: &str, v: &str| -> ! {
            eprintln!("error: bad {name}: {v:?}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--days" => {
                let v = value("--days");
                out.days = v.parse().unwrap_or_else(|_| bad("--days", &v));
            }
            "--seed" => {
                let v = value("--seed");
                out.seed = v.parse().unwrap_or_else(|_| bad("--seed", &v));
            }
            "--rounds" => {
                let v = value("--rounds");
                out.rounds = v.parse().unwrap_or_else(|_| bad("--rounds", &v));
                out.rounds = out.rounds.max(1);
            }
            "--nodes" => {
                let v = value("--nodes");
                out.nodes = v
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| bad("--nodes", &v)))
                    .collect();
                nodes_overridden = true;
            }
            "--smoke" => out.smoke = true,
            "--rebaseline" => out.rebaseline = true,
            "--min-speedup" => {
                let v = value("--min-speedup");
                out.min_speedup = Some(v.parse().unwrap_or_else(|_| bad("--min-speedup", &v)));
            }
            "--max-eps-regression" => {
                let v = value("--max-eps-regression");
                out.max_eps_regression = Some(
                    v.parse()
                        .unwrap_or_else(|_| bad("--max-eps-regression", &v)),
                );
            }
            "--max-rss-regression" => {
                let v = value("--max-rss-regression");
                out.max_rss_regression = Some(
                    v.parse()
                        .unwrap_or_else(|_| bad("--max-rss-regression", &v)),
                );
            }
            "--out" => out.out = value("--out"),
            "--determinism-check" => out.determinism_check = true,
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!(
                    "usage: [--days N] [--seed N] [--rounds N] [--nodes A,B,C] [--smoke] \
                     [--rebaseline] [--min-speedup X] [--max-eps-regression X] \
                     [--max-rss-regression X] [--out PATH] [--determinism-check]"
                );
                std::process::exit(2);
            }
        }
    }
    if out.smoke {
        if !nodes_overridden {
            // Include the fleet scale so CI exercises the 102400-node hot
            // path; the shortened horizon keeps it inside the smoke budget.
            out.nodes = vec![256, 1024, 102_400];
        }
        out.days = out.days.min(3);
    }
    out
}

/// One scale's best-of-rounds measurement, plus the phase breakdown from a
/// separate instrumented run.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    nodes: u32,
    events: u64,
    jobs: usize,
    wall_s: f64,
    seal_s: f64,
    phases: Option<PhaseTimings>,
    /// Telemetry recording attribution from the instrumented run: segment
    /// counters plus the final merge-and-index seal second.
    segments: Option<SegmentStats>,
    final_seal_s: f64,
    /// Peak resident set over this scale's rounds (Linux `VmHWM`, reset
    /// before the first round), in MiB; `None` off Linux.
    peak_rss_mb: Option<f64>,
    /// Job-arena allocator statistics from the instrumented run.
    arena: Option<ArenaStats>,
}

impl Measurement {
    fn total_s(&self) -> f64 {
        self.wall_s + self.seal_s
    }
    fn events_per_s(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

fn measure(nodes: u32, days: u64, seed: u64, rounds: usize) -> Measurement {
    let spec = rsc_bench::rsc1_sized_spec(nodes, days, seed);
    // Per-scale peak RSS: reset the kernel high-water mark so the reading
    // at the end of this scale is not dominated by an earlier, larger scale.
    rsc_bench::reset_peak_rss();
    let mut best: Option<Measurement> = None;
    for round in 0..rounds {
        let t0 = Instant::now();
        let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
        sim.run(SimDuration::from_days(spec.days));
        let events = sim.events_processed();
        let wall_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let view = sim.into_telemetry().seal();
        let seal_s = t1.elapsed().as_secs_f64();
        let m = Measurement {
            nodes,
            events,
            jobs: view.jobs().len(),
            wall_s,
            seal_s,
            phases: None,
            segments: None,
            final_seal_s: 0.0,
            peak_rss_mb: None,
            arena: None,
        };
        println!(
            "  round {round}: {events} events in {wall_s:.3} s ({:.0} ev/s), seal {seal_s:.3} s",
            m.events_per_s()
        );
        match best {
            Some(b) if b.total_s() <= m.total_s() => {}
            _ => best = Some(m),
        }
    }
    let mut best = best.expect("at least one round ran");

    // Phase attribution from one instrumented run, kept out of the
    // speedup-gated rounds so `Instant` overhead never skews them. The
    // same run carries the telemetry append/rotate timers and times the
    // final merge-and-index seal, splitting seal cost into its segmented
    // phases: per-append staging, batch hashing at rotations, and the
    // end-of-run merge.
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    sim.enable_phase_timings();
    sim.enable_telemetry_append_timing();
    sim.run(SimDuration::from_days(spec.days));
    if let Some(p) = sim.phase_timings() {
        println!(
            "  phases: inject {:.3} s, queue {:.3} s, sched {:.3} s, handle {:.3} s",
            p.inject_s, p.queue_s, p.sched_s, p.handle_s
        );
        best.phases = Some(p);
    }
    let stats = sim.telemetry_segment_stats();
    best.arena = Some(sim.arena_stats());
    let t2 = Instant::now();
    let _ = sim.into_telemetry().seal();
    best.final_seal_s = t2.elapsed().as_secs_f64();
    println!(
        "  seal phases: append {:.3} s, rotate {:.3} s, final seal {:.3} s \
         ({} rotations at capacity {})",
        stats.append_s, stats.rotate_s, best.final_seal_s, stats.rotations, stats.capacity
    );
    best.segments = Some(stats);
    best.peak_rss_mb = rsc_bench::peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0));
    if let (Some(rss), Some(a)) = (best.peak_rss_mb, best.arena) {
        println!(
            "  memory: peak rss {rss:.1} MiB, arena capacity {} slots ({} reused)",
            a.capacity, a.reused
        );
    }
    best
}

/// Renders one `"scales"` entry; field order is part of the file format
/// (the merge logic re-reads it with substring scans, so new fields append
/// after the existing ones).
fn scale_json(m: &Measurement) -> String {
    let mut s = format!(
        "\"{}\": {{\"wall_s\": {:.4}, \"seal_s\": {:.4}, \"total_s\": {:.4}, \
         \"events\": {}, \"events_per_s\": {:.1}, \"jobs\": {}",
        m.nodes,
        m.wall_s,
        m.seal_s,
        m.total_s(),
        m.events,
        m.events_per_s(),
        m.jobs
    );
    if let Some(p) = m.phases {
        let _ = write!(
            s,
            ", \"phases\": {{\"inject_s\": {:.4}, \"queue_s\": {:.4}, \
             \"sched_s\": {:.4}, \"handle_s\": {:.4}}}",
            p.inject_s, p.queue_s, p.sched_s, p.handle_s
        );
    }
    if let Some(seg) = m.segments {
        let _ = write!(
            s,
            ", \"seal_phases\": {{\"append_s\": {:.4}, \"rotate_s\": {:.4}, \
             \"final_seal_s\": {:.4}}}, \"segments\": {{\"capacity\": {}, \
             \"rotations\": {}}}",
            seg.append_s, seg.rotate_s, m.final_seal_s, seg.capacity, seg.rotations
        );
    }
    if let Some(rss) = m.peak_rss_mb {
        let _ = write!(s, ", \"peak_rss_mb\": {rss:.1}");
    }
    if let Some(a) = m.arena {
        let _ = write!(
            s,
            ", \"arena\": {{\"capacity\": {}, \"live\": {}, \"reused\": {}}}",
            a.capacity, a.live, a.reused
        );
    }
    s.push('}');
    s
}

fn section_json(days: u64, seed: u64, smoke: bool, measurements: &[Measurement]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"days\": {days}, \"seed\": {seed}");
    if smoke {
        s.push_str(", \"smoke\": true");
    }
    s.push_str(", \"scales\": {");
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&scale_json(m));
    }
    s.push_str("}}");
    s
}

/// Baseline total seconds for `nodes`, if the stored baseline has it.
fn baseline_total_s(baseline: &str, nodes: u32) -> Option<f64> {
    let scales = json_object_field(baseline, "scales")?;
    let entry = json_object_field(scales, &nodes.to_string())?;
    json_number_field(entry, "total_s")
}

/// Baseline event-loop throughput for `nodes`, if the stored baseline has it.
fn baseline_events_per_s(baseline: &str, nodes: u32) -> Option<f64> {
    let scales = json_object_field(baseline, "scales")?;
    let entry = json_object_field(scales, &nodes.to_string())?;
    json_number_field(entry, "events_per_s")
}

/// Baseline peak resident set for `nodes`, if the stored baseline has it.
fn baseline_peak_rss_mb(baseline: &str, nodes: u32) -> Option<f64> {
    let scales = json_object_field(baseline, "scales")?;
    let entry = json_object_field(scales, &nodes.to_string())?;
    json_number_field(entry, "peak_rss_mb")
}

fn determinism_check() -> std::process::ExitCode {
    // A small scenario plus short fleet- and million-node-scale ones: the
    // larger drive the tiered event queue through rebase/overflow, the
    // superposition injector through a large alias table, and the arena /
    // SoA node state / hierarchical-bitset index layouts at full width.
    let scales = [
        (256u32, 5u64),
        (102_400, 1),
        (1_000_000, 1),
        (10_000_000, 1),
    ];
    let snap = |spec: &rsc_sim::runner::ScenarioSpec| {
        let view = spec.simulate();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &view).expect("snapshot serializes");
        bytes
    };
    for (nodes, days) in scales {
        let spec = rsc_bench::rsc1_sized_spec(nodes, days, rsc_bench::FIGURE_SEED);
        let a = snap(&spec);
        let b = snap(&spec);
        if a == b {
            println!(
                "determinism-check: OK at {nodes} nodes × {days} d \
                 ({} byte snapshot identical across two runs)",
                a.len()
            );
        } else {
            eprintln!(
                "FAIL: two runs at {nodes} nodes × {days} d produced different snapshot bytes"
            );
            return std::process::ExitCode::FAILURE;
        }
    }

    // Cross-capacity: sealed v3 bytes are a pure function of the record
    // streams, so shrinking the segment capacity until the fleet-scale run
    // rotates mid-run must not move a single byte.
    let spec = rsc_bench::rsc1_sized_spec(102_400, 1, rsc_bench::FIGURE_SEED);
    let run_at = |capacity: Option<usize>| {
        let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
        if let Some(c) = capacity {
            sim.set_telemetry_segment_capacity(c);
        }
        sim.run(SimDuration::from_days(spec.days));
        let view = sim.into_telemetry().seal();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &view).expect("snapshot serializes");
        bytes
    };
    let default_bytes = run_at(None);
    let mut sim = ClusterSim::new(spec.config.clone(), spec.seed);
    sim.set_telemetry_segment_capacity(4096);
    sim.run(SimDuration::from_days(spec.days));
    let rotations = sim.telemetry_segment_stats().rotations;
    let view = sim.into_telemetry().seal();
    let mut rotated_bytes = Vec::new();
    write_snapshot(&mut rotated_bytes, &view).expect("snapshot serializes");
    if rotations == 0 {
        eprintln!("FAIL: capacity 4096 at 102400 nodes × 1 d never rotated a segment");
        return std::process::ExitCode::FAILURE;
    }
    if default_bytes == rotated_bytes {
        println!(
            "determinism-check: OK across segment capacities at 102400 nodes × 1 d \
             ({} byte snapshot identical, {rotations} mid-run rotations at capacity 4096)",
            default_bytes.len()
        );
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: segment capacity 4096 changed the sealed snapshot bytes at 102400 nodes × 1 d"
        );
        std::process::ExitCode::FAILURE
    }
}

fn main() -> std::process::ExitCode {
    let args = parse_args();
    if args.determinism_check {
        return determinism_check();
    }
    rsc_bench::banner(
        "sim_throughput",
        "Event-loop throughput and telemetry-seal wall time",
        &format!(
            "nodes {:?}, {} days, seed {}, best of {} round(s)",
            args.nodes, args.days, args.seed, args.rounds
        ),
    );

    let mut measurements = Vec::new();
    for &nodes in &args.nodes {
        println!("\n== {nodes} nodes × {} days ==", args.days);
        measurements.push(measure(nodes, args.days, args.seed, args.rounds));
    }

    let current = section_json(args.days, args.seed, args.smoke, &measurements);
    let previous = std::fs::read_to_string(&args.out).unwrap_or_default();
    // A smoke run never overwrites the stored trajectory baseline; a full
    // run seeds it on first write (or on --rebaseline).
    let baseline: String = if args.rebaseline {
        current.clone()
    } else {
        match json_object_field(&previous, "baseline") {
            Some(b) => b.to_string(),
            None if args.smoke => String::new(),
            None => current.clone(),
        }
    };

    println!(
        "\n{:>8} {:>12} {:>10} {:>10} {:>12} {:>9}",
        "nodes", "events", "wall (s)", "seal (s)", "events/s", "speedup"
    );
    let mut speedups = String::new();
    let mut min_seen = f64::INFINITY;
    // Speedups are only meaningful against a baseline over the same
    // horizon and seed; a smoke run (shorter days) reports "-".
    let comparable = json_number_field(&baseline, "days") == Some(args.days as f64)
        && json_number_field(&baseline, "seed") == Some(args.seed as f64);
    if !comparable && !baseline.is_empty() {
        eprintln!("note: baseline days/seed differ from this run; per-scale speedups skipped");
    }
    let mut skipped_scales = Vec::new();
    // Worst per-scale events/s regression vs the baseline, as a fraction
    // (0.25 = one scale's event loop slowed to 75% of its baseline rate).
    let mut worst_eps_drop: Option<(u32, f64)> = None;
    // Worst per-scale peak-RSS growth vs the baseline, as a fraction
    // (0.25 = one scale's resident set grew to 125% of its baseline).
    let mut worst_rss_growth: Option<(u32, f64)> = None;
    for m in &measurements {
        let baseline_total = comparable
            .then(|| baseline_total_s(&baseline, m.nodes))
            .flatten();
        if comparable && baseline_total.is_none() {
            skipped_scales.push(m.nodes);
        }
        if let Some(base_eps) = comparable
            .then(|| baseline_events_per_s(&baseline, m.nodes))
            .flatten()
        {
            let drop = 1.0 - m.events_per_s() / base_eps.max(1e-9);
            if worst_eps_drop.is_none_or(|(_, d)| drop > d) {
                worst_eps_drop = Some((m.nodes, drop));
            }
        }
        if let (Some(rss), Some(base_rss)) = (
            m.peak_rss_mb,
            comparable
                .then(|| baseline_peak_rss_mb(&baseline, m.nodes))
                .flatten(),
        ) {
            let growth = rss / base_rss.max(1e-9) - 1.0;
            if worst_rss_growth.is_none_or(|(_, g)| growth > g) {
                worst_rss_growth = Some((m.nodes, growth));
            }
        }
        let speedup = baseline_total.map(|b| b / m.total_s());
        let label = speedup.map_or("-".to_string(), |s| format!("{s:.2}x"));
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3} {:>12.0} {:>9}",
            m.nodes,
            m.events,
            m.wall_s,
            m.seal_s,
            m.events_per_s(),
            label
        );
        if let Some(s) = speedup {
            min_seen = min_seen.min(s);
            if !speedups.is_empty() {
                speedups.push_str(", ");
            }
            let _ = write!(speedups, "\"{}\": {s:.3}", m.nodes);
        }
    }
    if !skipped_scales.is_empty() {
        // A scale missing from the stored baseline would otherwise vanish
        // silently from `speedup_total` — say so, and say how to fix it.
        eprintln!(
            "note: no stored baseline for scale(s) {skipped_scales:?}; their speedups \
             were skipped — run with --rebaseline to capture them"
        );
    }

    let mut body = String::from("{\n  \"bench\": \"sim_throughput\",\n");
    if !baseline.is_empty() {
        let _ = writeln!(body, "  \"baseline\": {baseline},");
    }
    let _ = writeln!(body, "  \"current\": {current},");
    let _ = writeln!(body, "  \"speedup_total\": {{{speedups}}}\n}}");
    match std::fs::write(&args.out, &body) {
        Ok(()) => println!("\n[json] wrote {}", args.out),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", args.out);
            return std::process::ExitCode::FAILURE;
        }
    }

    if let Some(min) = args.min_speedup {
        if min_seen < min {
            eprintln!("FAIL: speedup {min_seen:.2}x below required {min:.2}x");
            return std::process::ExitCode::FAILURE;
        }
    }
    if let Some(max_drop) = args.max_eps_regression {
        match worst_eps_drop {
            Some((nodes, drop)) if drop > max_drop => {
                eprintln!(
                    "FAIL: events_per_s at {nodes} nodes regressed {:.1}% vs baseline \
                     (gate: {:.1}%)",
                    drop * 100.0,
                    max_drop * 100.0
                );
                return std::process::ExitCode::FAILURE;
            }
            Some((nodes, drop)) => {
                println!(
                    "events/s gate: OK (worst change {:+.1}% at {nodes} nodes, \
                     gate {:.1}%)",
                    -drop * 100.0,
                    max_drop * 100.0
                );
            }
            None => {
                // The gate was requested but nothing was comparable — that
                // is a misconfigured check, not a pass.
                eprintln!(
                    "FAIL: --max-eps-regression given but no scale was comparable \
                     against the stored baseline (days/seed mismatch or missing scales)"
                );
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    if let Some(max_growth) = args.max_rss_regression {
        match worst_rss_growth {
            Some((nodes, growth)) if growth > max_growth => {
                eprintln!(
                    "FAIL: peak_rss_mb at {nodes} nodes grew {:.1}% vs baseline \
                     (gate: {:.1}%)",
                    growth * 100.0,
                    max_growth * 100.0
                );
                return std::process::ExitCode::FAILURE;
            }
            Some((nodes, growth)) => {
                println!(
                    "peak-rss gate: OK (worst change {:+.1}% at {nodes} nodes, \
                     gate {:.1}%)",
                    growth * 100.0,
                    max_growth * 100.0
                );
            }
            None => {
                eprintln!(
                    "FAIL: --max-rss-regression given but no scale had peak_rss_mb in \
                     both baseline and current (days/seed mismatch, missing scales, or \
                     a non-Linux host without VmHWM)"
                );
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    std::process::ExitCode::SUCCESS
}
