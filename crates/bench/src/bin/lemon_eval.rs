//! §IV-A / Obs. 11: lemon-node detection quality and the effect of lemon
//! removal on large-job failure rates (paper: >85% accuracy; 512+ GPU job
//! failures 14% → 4%).

use rsc_core::lemon::{compute_features, large_job_failure_rate, DetectionQuality, LemonDetector};
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::{SimDuration, SimTime};

fn main() {
    rsc_bench::banner(
        "Lemon evaluation",
        "Detection accuracy and large-job failure reduction",
        "RSC-1 at 1/4 scale, 24 lemons planted, 84 days, 56-day feature window",
    );

    // The observed RSC-1 rate *includes* the lemons' contribution; the
    // stationary background is the lemon-free residual. Scaling the base
    // modes to ~35% leaves lemons responsible for roughly two thirds of
    // failures — the regime where their removal moves large-job failure
    // rates the way the paper reports.
    let mut config = SimConfig::rsc1().scaled_down(4);
    config.modes = config.modes.scaled_rates(0.35);
    config.lemon_count = 24;
    let mut sim = ClusterSim::new(config.clone(), rsc_bench::FIGURE_SEED);
    sim.run(SimDuration::from_days(84));
    let truth = sim.lemons().node_ids();
    let store = sim.into_telemetry().seal();
    let from = store.horizon() - SimDuration::from_days(56);
    let features = compute_features(&store, from, store.horizon());
    let detector = LemonDetector::rsc_default();
    let detected = detector.detect(&features);
    let quality = DetectionQuality::evaluate(&detected, &truth);

    println!("\nplanted lemons: {}", truth.len());
    println!("flagged nodes:  {}", detected.len());
    println!(
        "precision: {} (paper 'accuracy': >85%)   recall: {}",
        rsc_bench::pct(quality.precision()),
        rsc_bench::pct(quality.recall())
    );
    println!(
        "TP = {}, FP = {}, FN = {}",
        quality.true_positives, quality.false_positives, quality.false_negatives
    );

    // Counterfactual: the same cluster with lemons removed.
    let with_lemons = large_job_failure_rate(&store, 128);
    let mut clean_config = config;
    clean_config.lemon_count = 0;
    let mut clean = ClusterSim::new(clean_config, rsc_bench::FIGURE_SEED);
    clean.run(SimDuration::from_days(84));
    let clean_store = clean.into_telemetry().seal();
    let without_lemons = large_job_failure_rate(&clean_store, 128);

    println!(
        "\nlarge-job (128+ GPU at this scale) infra-failure rate:\n  with lemons:    {}\n  lemons removed: {}",
        rsc_bench::pct(with_lemons),
        rsc_bench::pct(without_lemons)
    );
    if with_lemons > 0.0 {
        println!(
            "  reduction: {} (paper: 14% → 4% on 512+ GPU jobs)",
            rsc_bench::pct((with_lemons - without_lemons) / with_lemons)
        );
    }

    let mut rows = vec![vec![
        "detection".to_string(),
        format!("{:.4}", quality.precision()),
        format!("{:.4}", quality.recall()),
        with_lemons.to_string(),
        without_lemons.to_string(),
    ]];
    rows[0].truncate(5);
    rsc_bench::save_csv(
        "lemon_eval.csv",
        &[
            "row",
            "precision",
            "recall",
            "large_job_failure_with",
            "large_job_failure_without",
        ],
        rows,
    );

    let _ = SimTime::ZERO;
}
