//! §III text numbers: MTTF projections for frontier-scale jobs from the
//! measured failure rates.

use rsc_core::mttf::MttfProjection;

fn main() {
    rsc_bench::banner(
        "Projections",
        "MTTF at frontier scale from 1/(N·r_f)",
        "analytic; r_f from the paper's published rates",
    );
    let mut rows = Vec::new();
    for (name, r_f) in [("RSC-1", 6.50e-3), ("RSC-2", 2.34e-3)] {
        let proj = MttfProjection::new(r_f);
        println!(
            "\n--- {name} (r_f = {:.2} per 1000 node-days) ---",
            r_f * 1000.0
        );
        println!("{:>12} {:>12} {:>14}", "GPUs", "nodes", "MTTF");
        println!("{}", "-".repeat(40));
        for gpus in [
            1024u32, 4096, 8192, 16_384, 32_768, 65_536, 100_000, 131_072,
        ] {
            let hours = proj.mttf_hours(gpus);
            let fmt = if hours >= 1.0 {
                format!("{hours:.2} h")
            } else {
                format!("{:.1} min", hours * 60.0)
            };
            println!("{gpus:>12} {:>12} {fmt:>14}", gpus.div_ceil(8));
            rows.push(vec![
                name.to_string(),
                gpus.to_string(),
                format!("{hours:.4}"),
            ]);
        }
    }
    println!("\n(paper: 16,384 GPUs → 1.8 h; 131,072 GPUs → 0.23 h at the RSC-1 rate;");
    println!(" ~15 min MTTF at 100k GPUs motivates sub-10-minute checkpointing)");
    rsc_bench::save_csv(
        "projections_mttf.csv",
        &["cluster", "gpus", "mttf_hours"],
        rows,
    );
}
