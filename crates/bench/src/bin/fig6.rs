//! Fig. 6: job-size distribution by fraction of jobs and fraction of
//! compute, RSC-1 and RSC-2.

use rsc_core::report::size_distribution;

fn main() {
    rsc_bench::banner(
        "Fig. 6",
        "Job distribution by jobs and by compute",
        "both clusters at 1/8 scale (max job 512 GPUs at this scale), 330 days",
    );
    let mut rows = Vec::new();
    for (name, store) in [
        ("RSC-1", rsc_bench::run_rsc1(8, rsc_bench::MEASUREMENT_DAYS, rsc_bench::FIGURE_SEED)),
        ("RSC-2", rsc_bench::run_rsc2(8, rsc_bench::MEASUREMENT_DAYS, rsc_bench::FIGURE_SEED + 1)),
    ] {
        let dist = size_distribution(&store);
        println!("\n--- {name} ---");
        println!("{:>6} {:>11} {:>13}", "GPUs", "% of jobs", "% of compute");
        println!("{}", "-".repeat(34));
        for s in &dist {
            println!(
                "{:>6} {:>11} {:>13}  {}",
                s.gpus,
                rsc_bench::pct(s.job_fraction),
                rsc_bench::pct(s.gpu_time_fraction),
                rsc_bench::bar(s.gpu_time_fraction, 0.5, 30)
            );
            rows.push(vec![
                name.to_string(),
                s.gpus.to_string(),
                format!("{:.6}", s.job_fraction),
                format!("{:.6}", s.gpu_time_fraction),
            ]);
        }
        let one_gpu: f64 = dist.iter().filter(|s| s.gpus == 1).map(|s| s.job_fraction).sum();
        let sub_node: f64 = dist.iter().filter(|s| s.gpus < 8).map(|s| s.job_fraction).sum();
        let sub_node_gpu: f64 = dist
            .iter()
            .filter(|s| s.gpus < 8)
            .map(|s| s.gpu_time_fraction)
            .sum();
        let large: f64 = dist
            .iter()
            .filter(|s| s.gpus >= 256 / 8)
            .map(|s| s.gpu_time_fraction)
            .sum();
        println!("\n  1-GPU jobs: {} of jobs (paper: >40%)", rsc_bench::pct(one_gpu));
        println!(
            "  <1 server: {} of jobs, {} of compute (paper: >90% / <10%)",
            rsc_bench::pct(sub_node),
            rsc_bench::pct(sub_node_gpu)
        );
        println!(
            "  ≥32 GPUs (≙256 at full scale): {} of compute (paper: 66% / 52%)",
            rsc_bench::pct(large)
        );
    }
    rsc_bench::save_csv(
        "fig6_size_distribution.csv",
        &["cluster", "gpus", "job_fraction", "gpu_time_fraction"],
        rows,
    );
}
