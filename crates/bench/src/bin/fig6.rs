//! Fig. 6: job-size distribution by fraction of jobs and fraction of
//! compute, RSC-1 and RSC-2.

use rsc_core::report::size_distribution;

fn main() {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Fig. 6",
        "Job distribution by jobs and by compute",
        &format!("both clusters, {}", args.scale_note("")),
    );
    let mut rows = Vec::new();
    let (rsc1, rsc2) = rsc_bench::run_both(args.scale, args.days, args.seed);
    for (name, store) in [("RSC-1", rsc1), ("RSC-2", rsc2)] {
        let dist = size_distribution(&store);
        println!("\n--- {name} ---");
        println!("{:>6} {:>11} {:>13}", "GPUs", "% of jobs", "% of compute");
        println!("{}", "-".repeat(34));
        for s in &dist {
            println!(
                "{:>6} {:>11} {:>13}  {}",
                s.gpus,
                rsc_bench::pct(s.job_fraction),
                rsc_bench::pct(s.gpu_time_fraction),
                rsc_bench::bar(s.gpu_time_fraction, 0.5, 30)
            );
            rows.push(vec![
                name.to_string(),
                s.gpus.to_string(),
                format!("{:.6}", s.job_fraction),
                format!("{:.6}", s.gpu_time_fraction),
            ]);
        }
        let one_gpu: f64 = dist
            .iter()
            .filter(|s| s.gpus == 1)
            .map(|s| s.job_fraction)
            .sum();
        let sub_node: f64 = dist
            .iter()
            .filter(|s| s.gpus < 8)
            .map(|s| s.job_fraction)
            .sum();
        let sub_node_gpu: f64 = dist
            .iter()
            .filter(|s| s.gpus < 8)
            .map(|s| s.gpu_time_fraction)
            .sum();
        let large: f64 = dist
            .iter()
            .filter(|s| s.gpus >= 256 / 8)
            .map(|s| s.gpu_time_fraction)
            .sum();
        println!(
            "\n  1-GPU jobs: {} of jobs (paper: >40%)",
            rsc_bench::pct(one_gpu)
        );
        println!(
            "  <1 server: {} of jobs, {} of compute (paper: >90% / <10%)",
            rsc_bench::pct(sub_node),
            rsc_bench::pct(sub_node_gpu)
        );
        println!(
            "  ≥32 GPUs (≙256 at full scale): {} of compute (paper: 66% / 52%)",
            rsc_bench::pct(large)
        );
    }
    rsc_bench::save_csv(
        "fig6_size_distribution.csv",
        &["cluster", "gpus", "job_fraction", "gpu_time_fraction"],
        rows,
    );
}
