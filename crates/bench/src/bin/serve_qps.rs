//! Harness check: `rsc-serve`'s hot read path under concurrent load.
//!
//! Boots the service on an ephemeral port with a private cache dir, seals
//! one small scenario, then hammers the analysis and health routes from
//! N client threads — each client opening one connection per request,
//! exactly as the `Connection: close` server serves them. Every analysis
//! response is compared against the first byte for byte, so the run
//! doubles as a concurrency stress of the determinism contract: a single
//! mismatched body fails the bench.
//!
//! Writes `BENCH_serve_qps.json` (override with `--out PATH`) with the
//! measured throughput. `--smoke` shrinks the request count for CI.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rsc_serve::client;
use rsc_serve::core::ServiceConfig;
use rsc_serve::server::Server;

struct Args {
    clients: usize,
    requests_per_client: usize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        requests_per_client: 200,
        out: "BENCH_serve_qps.json".to_string(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients must be an integer".to_string())?
            }
            "--requests" => {
                args.requests_per_client = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be an integer".to_string())?
            }
            "--out" => args.out = value("--out")?,
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.requests_per_client = args.requests_per_client.min(25);
    }
    Ok(args)
}

/// One client's share of the load: alternating analysis fetches (checked
/// bitwise) and healthz probes, returning (requests, analysis bytes).
fn client_loop(
    addr: SocketAddr,
    target: &str,
    expected: &[u8],
    requests: usize,
    mismatches: &AtomicU64,
) -> u64 {
    let mut done = 0;
    for i in 0..requests {
        if i % 4 == 3 {
            let health = client::get(addr, "/healthz").expect("healthz");
            assert_eq!(health.status, 200);
        } else {
            let resp = client::get(addr, target).expect("analysis fetch");
            assert_eq!(resp.status, 200);
            if resp.body != expected {
                mismatches.fetch_add(1, Ordering::Relaxed);
            }
        }
        done += 1;
    }
    done
}

fn main() -> std::process::ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("serve_qps: {err}");
            return std::process::ExitCode::FAILURE;
        }
    };
    rsc_bench::banner(
        "Serve QPS",
        "rsc-serve analysis read path under concurrent clients",
        &format!(
            "{} clients x {} requests{}",
            args.clients,
            args.requests_per_client,
            if args.smoke { " (smoke)" } else { "" }
        ),
    );

    let cache_dir = std::env::temp_dir().join(format!("rsc-serve-qps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServiceConfig::with_cache_dir(&cache_dir),
        args.clients.max(4),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Seal one small scenario to serve.
    let accepted = client::post(addr, "/api/v1/sweeps?preset=small_test&seeds=7&days=3")
        .expect("submit scenario");
    assert_eq!(accepted.status, 202, "submit: {}", accepted.text());
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = client::get(addr, "/api/v1/jobs/0").expect("poll").text();
        if body.contains("\"state\":\"sealed\"") {
            break;
        }
        assert!(!body.contains("\"state\":\"failed\""), "job failed: {body}");
        assert!(Instant::now() < deadline, "job never sealed");
        std::thread::sleep(Duration::from_millis(20));
    }

    let reference = client::get(addr, "/api/v1/jobs/0/analysis").expect("reference fetch");
    assert_eq!(reference.status, 200);
    let expected = Arc::new(reference.body);
    println!(
        "sealed analysis: {} bytes; measuring from {} threads",
        expected.len(),
        args.clients
    );

    let mismatches = AtomicU64::new(0);
    let t0 = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let expected = Arc::clone(&expected);
                let mismatches = &mismatches;
                scope.spawn(move || {
                    client_loop(
                        addr,
                        "/api/v1/jobs/0/analysis",
                        &expected,
                        args.requests_per_client,
                        mismatches,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let qps = total as f64 / elapsed;
    let bad = mismatches.load(Ordering::Relaxed);

    println!("\n{total} requests in {elapsed:.3} s -> {qps:.0} req/s");
    println!("byte-identity mismatches: {bad}");

    let json = format!(
        "{{\"clients\": {}, \"requests_per_client\": {}, \"total_requests\": {total}, \
         \"elapsed_s\": {elapsed:.4}, \"qps\": {qps:.1}, \"analysis_bytes\": {}, \
         \"mismatches\": {bad}, \"smoke\": {}}}\n",
        args.clients,
        args.requests_per_client,
        expected.len(),
        args.smoke
    );
    std::fs::write(&args.out, json).expect("write bench output");
    println!("wrote {}", args.out);

    let down = client::post(addr, "/api/v1/shutdown").expect("shutdown");
    assert_eq!(down.status, 200);
    server.join();
    let _ = std::fs::remove_dir_all(&cache_dir);

    if bad > 0 {
        eprintln!("FAIL: {bad} responses differed from the reference bytes");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
