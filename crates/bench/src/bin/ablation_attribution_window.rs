//! Ablation: the failure-attribution window.
//!
//! The paper attributes a job failure to a cause seen within 10 minutes
//! before / 5 minutes after the job's end. This sweep shows the trade-off
//! that choice navigates: short windows miss causes (low coverage), long
//! windows pick up unrelated events (misattribution against ground truth).

use rsc_core::attribution::{attribute_failures, attribution_accuracy, AttributionConfig};
use rsc_sched::job::JobStatus;
use rsc_sim_core::time::SimDuration;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Attribution window sweep (paper default: 10 min before / 5 after)",
        "RSC-1 at 1/8 scale, 120 simulated days",
    );
    let store = rsc_bench::run_rsc1(8, 120, rsc_bench::FIGURE_SEED);

    println!(
        "\n{:>14} {:>12} {:>14} {:>16}",
        "window before", "coverage", "accuracy", "(vs ground truth)"
    );
    println!("{}", "-".repeat(60));
    let mut rows = Vec::new();
    for before_mins in [1u64, 2, 5, 10, 20, 40, 60, 120] {
        let config = AttributionConfig {
            window_before: SimDuration::from_mins(before_mins),
            window_after: SimDuration::from_mins(5),
        };
        let attributions = attribute_failures(&store, &config);
        // Coverage: infra-interrupted records (NODE_FAIL / REQUEUED) that
        // received a cause.
        let infra: Vec<_> = attributions
            .iter()
            .filter(|a| {
                matches!(
                    store.jobs()[a.record_index].status,
                    JobStatus::NodeFail | JobStatus::Requeued
                )
            })
            .collect();
        let covered = infra.iter().filter(|a| a.is_attributed()).count();
        let coverage = covered as f64 / infra.len().max(1) as f64;
        let accuracy = attribution_accuracy(&store, &config);
        println!(
            "{:>10} min {:>12} {:>14}",
            before_mins,
            rsc_bench::pct(coverage),
            rsc_bench::pct(accuracy)
        );
        rows.push(vec![
            before_mins.to_string(),
            format!("{coverage:.4}"),
            format!("{accuracy:.4}"),
        ]);
    }
    println!("\n(reading: detection is prompt in this substrate, so coverage saturates");
    println!(" well before the paper's 10-minute choice — the uncovered remainder is");
    println!(" heartbeat-only NODE_FAILs — while very wide windows start trading");
    println!(" accuracy for stray events)");
    rsc_bench::save_csv(
        "ablation_attribution_window.csv",
        &["window_before_mins", "coverage", "accuracy"],
        rows,
    );
}
