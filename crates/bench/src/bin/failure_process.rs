//! Supplementary analysis: is the failure process actually Poisson?
//!
//! The 1/(N·r_f) projection and Gamma CIs assume exponential failure
//! interarrivals. This harness fits Weibull models to simulated failure
//! streams: stationary clusters come out shape ≈ 1 (Poisson-like), while
//! lemon nodes and era effects push shape < 1 (bursty) — the regime where
//! Obs. 8 warns that small-job MTTFs grow "less predictable".

use rsc_core::fit::{fit_failure_process, fit_weibull};
use rsc_core::queueing::{mean_wait_hours, wait_by_size_and_qos};
use rsc_sim::config::{EraPreset, SimConfig};
use rsc_sim::runner::ScenarioSpec;

fn main() {
    rsc_bench::banner(
        "Failure process",
        "Weibull fit of failure interarrivals + queue waits",
        "RSC-1 at 1/8 scale, 330 days: stationary vs lemons+eras",
    );

    println!(
        "\n{:>26} {:>8} {:>10} {:>10} {:>8}",
        "scenario", "gaps", "shape", "scale (h)", "KS"
    );
    println!("{}", "-".repeat(68));
    let mut rows = Vec::new();
    let scenarios: Vec<(&str, SimConfig)> = vec![
        ("stationary, no lemons", {
            let mut c = SimConfig::rsc1().scaled_down(8);
            c.eras = EraPreset::None;
            c.lemon_count = 0;
            // Keep the observed total comparable: fold the lemon share
            // back into the base.
            c.modes = c.modes.scaled_rates(1.0 / 0.78);
            c
        }),
        ("lemons + eras (default)", SimConfig::rsc1().scaled_down(8)),
    ];
    let specs: Vec<ScenarioSpec> = scenarios
        .iter()
        .map(|(_, config)| {
            ScenarioSpec::new(
                config.clone(),
                rsc_bench::FIGURE_SEED,
                rsc_bench::MEASUREMENT_DAYS,
            )
        })
        .collect();
    let views = rsc_bench::run_specs(&specs);
    for ((name, _), store) in scenarios.iter().zip(views) {
        let fit = fit_failure_process(&store, 50).expect("enough failures");
        println!(
            "{name:>26} {:>8} {:>10.3} {:>10.2} {:>8.3}",
            fit.samples, fit.shape, fit.scale, fit.ks_distance
        );
        rows.push(vec![
            name.to_string(),
            fit.samples.to_string(),
            format!("{:.4}", fit.shape),
            format!("{:.3}", fit.scale),
            format!("{:.4}", fit.ks_distance),
        ]);

        if name.starts_with("lemons") {
            println!("\nqueue waits by size and QoS (same run):");
            println!(
                "{:>8} {:>8} {:>8} {:>12} {:>12}",
                "GPUs", "QoS", "starts", "mean wait", "max wait"
            );
            for b in wait_by_size_and_qos(&store) {
                if b.count >= 20 {
                    println!(
                        "{:>8} {:>8} {:>8} {:>10.2} h {:>10.1} h",
                        b.gpus_lo, b.qos, b.count, b.mean_wait_hours, b.max_wait_hours
                    );
                }
            }
            println!("  overall mean wait: {:.2} h", mean_wait_hours(&store));
        }
    }

    // A deliberately bursty process: one mode spiking 25x for two months.
    {
        use rsc_failure::injector::FailureInjector;
        use rsc_failure::modes::ModeCatalog;
        use rsc_failure::process::{HazardSchedule, NodeFilter, RateModifier};
        use rsc_failure::taxonomy::FailureSymptom;
        use rsc_sim_core::rng::SimRng;
        use rsc_sim_core::time::SimTime;

        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        let ib = schedule
            .mode_by_symptom(FailureSymptom::InfinibandLink)
            .expect("ib mode");
        schedule.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::All,
            from: SimTime::from_days(100),
            until: SimTime::from_days(160),
            multiplier: 25.0,
        });
        let mut injector = FailureInjector::new(schedule, 256, SimRng::seed_from(3));
        let events = injector.drain_until(SimTime::from_days(330));
        let mut times: Vec<SimTime> = events.iter().map(|e| e.at).collect();
        times.sort();
        let gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1].saturating_since(w[0]).as_hours())
            .filter(|&dt| dt > 0.0)
            .collect();
        let fit = fit_weibull(&gaps);
        println!(
            "{:>26} {:>8} {:>10.3} {:>10.2} {:>8.3}",
            "25x shared-mode era", fit.samples, fit.shape, fit.scale, fit.ks_distance
        );
        rows.push(vec![
            "25x shared-mode era".to_string(),
            fit.samples.to_string(),
            format!("{:.4}", fit.shape),
            format!("{:.3}", fit.scale),
            format!("{:.4}", fit.ks_distance),
        ]);
    }

    // Reference: a pure exponential sample of the same size fits shape 1.
    let mut rng = rsc_sim_core::rng::SimRng::seed_from(1);
    let reference: Vec<f64> = (0..2000).map(|_| rng.exponential(1.0)).collect();
    let ref_fit = fit_weibull(&reference);
    println!(
        "\nreference exponential sample: shape {:.3} (calibration check)",
        ref_fit.shape
    );
    println!("\n(reading: cluster-wide interarrivals stay Poisson-like even with");
    println!(" lemons — the superposition of many independent node processes");
    println!(" washes out per-node heterogeneity (Palm–Khintchine), which is why");
    println!(" the paper's 1/(N*r_f) model holds; only strong *shared* eras, like");
    println!(" a fleet-wide driver regression, make the pooled process bursty)");
    rsc_bench::save_csv(
        "failure_process_fit.csv",
        &[
            "scenario",
            "gaps",
            "weibull_shape",
            "weibull_scale_hours",
            "ks_distance",
        ],
        rows,
    );
}
