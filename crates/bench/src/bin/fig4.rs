//! Fig. 4: attributed hardware failure rates per GPU-hour, by cause, for
//! RSC-1 and RSC-2.

use rsc_core::attribution::{cause_rates, AttributionConfig};

fn main() {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Fig. 4",
        "Attributed hardware failures per GPU-hour",
        &format!("both clusters, {}; 10/5-min window", args.scale_note("")),
    );
    let config = AttributionConfig::paper_default();
    let mut rows = Vec::new();
    let (rsc1, rsc2) = rsc_bench::run_both(args.scale, args.days, args.seed);
    for (name, store) in [("RSC-1", rsc1), ("RSC-2", rsc2)] {
        let rates = cause_rates(&store, &config);
        let swap_rate = store.gpu_swaps() as f64
            / (store.num_nodes() as f64 * 8.0 * store.horizon().as_days() / 365.25);
        println!(
            "\n--- {name} (total GPU-hours: {:.2e}; GPU swaps: {} ≈ {:.3}/GPU-year) ---",
            rates.total_gpu_hours,
            store.gpu_swaps(),
            swap_rate
        );
        println!("{:<16} {:>16}", "cause", "failures/GPU-hr");
        println!("{}", "-".repeat(36));
        let max = rates.rates.first().map(|r| r.1).unwrap_or(0.0);
        for (cause, rate) in &rates.rates {
            let label = cause.map(|c| c.label()).unwrap_or("unattributed");
            println!(
                "{:<16} {:>16.3e}  {}",
                label,
                rate,
                rsc_bench::bar(*rate, max, 30)
            );
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{rate:.6e}"),
            ]);
        }
    }
    println!("\n(paper: IB links, filesystem mounts, GPU memory, and PCIe dominate;");
    println!(" a large unattributed NODE_FAIL mass; RSC-2 rates ~3x lower overall,");
    println!(" corroborated by RSC-1's GPU swap rate running ~3x RSC-2's)");
    rsc_bench::save_csv(
        "fig4_cause_rates.csv",
        &["cluster", "cause", "failures_per_gpu_hour"],
        rows,
    );
}
