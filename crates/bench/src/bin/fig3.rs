//! Fig. 3: scheduler job status breakdown by number of jobs and by GPU
//! runtime, RSC-1.

use rsc_core::report::status_breakdown;

fn main() {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Fig. 3",
        "Scheduler job status breakdown (RSC-1)",
        &args.scale_note("RSC-1"),
    );
    let store = rsc_bench::run_rsc1(args.scale, args.days, args.seed);
    println!("records: {}", store.jobs().len());
    let shares = status_breakdown(&store);

    println!(
        "\n{:<15} {:>10} {:>14}   (paper: COMPLETED 60%, FAILED 24%, PREEMPTED 10%)",
        "status", "% of jobs", "% of GPU time"
    );
    println!("{}", "-".repeat(90));
    let mut rows = Vec::new();
    for s in &shares {
        println!(
            "{:<15} {:>10} {:>14}   {}",
            s.status.label(),
            rsc_bench::pct(s.job_fraction),
            rsc_bench::pct(s.gpu_time_fraction),
            rsc_bench::bar(s.job_fraction, 1.0, 40)
        );
        rows.push(vec![
            s.status.label().to_string(),
            format!("{:.6}", s.job_fraction),
            format!("{:.6}", s.gpu_time_fraction),
        ]);
    }

    // The paper's headline: infra failures hit few jobs but much GPU time.
    let infra: Vec<_> = shares
        .iter()
        .filter(|s| {
            matches!(
                s.status,
                rsc_sched::job::JobStatus::NodeFail | rsc_sched::job::JobStatus::Requeued
            )
        })
        .collect();
    let job_frac: f64 = infra.iter().map(|s| s.job_fraction).sum();
    let gpu_frac: f64 = infra.iter().map(|s| s.gpu_time_fraction).sum();
    println!(
        "\nInfra-interrupted (NODE_FAIL + REQUEUED): {} of jobs, {} of GPU time",
        rsc_bench::pct(job_frac),
        rsc_bench::pct(gpu_frac)
    );
    println!("(paper: hardware failures touch ~0.2% of jobs but ~18.7% of GPU runtime)");

    rsc_bench::save_csv(
        "fig3_status_breakdown.csv",
        &["status", "job_fraction", "gpu_time_fraction"],
        rows,
    );
}
