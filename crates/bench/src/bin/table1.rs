//! Table I: the failure taxonomy — symptoms, implicated domains, likely
//! causes.

use rsc_core::report::taxonomy_table;

fn main() {
    rsc_bench::banner(
        "Table I",
        "Taxonomy of failures",
        "static taxonomy; no simulation required",
    );
    println!(
        "{:<16} {:^7} {:^7} {:^7}  likely causes",
        "symptom", "user", "system", "hw"
    );
    println!("{}", "-".repeat(100));
    let table = taxonomy_table();
    let mut rows = Vec::new();
    for (symptom, user, system, hw, causes) in &table {
        let mark = |b: &bool| if *b { "x" } else { "." };
        println!(
            "{:<16} {:^7} {:^7} {:^7}  {}",
            symptom,
            mark(user),
            mark(system),
            mark(hw),
            causes
        );
        rows.push(vec![
            symptom.clone(),
            user.to_string(),
            system.to_string(),
            hw.to_string(),
            causes.clone(),
        ]);
    }
    rsc_bench::save_csv(
        "table1_taxonomy.csv",
        &[
            "symptom",
            "user_program",
            "system_software",
            "hardware_infra",
            "likely_causes",
        ],
        rows,
    );
}
