//! Ablation: lemon-detector threshold tuning.
//!
//! The paper tuned its detection criteria manually against accuracy and
//! false-positive rate. This sweep reproduces that exercise: vary how many
//! criteria must agree and how strict the per-signal thresholds are, and
//! report the precision/recall frontier against planted ground truth.

use rsc_core::lemon::{compute_features, DetectionQuality, LemonDetector};
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Lemon-detector threshold sweep",
        "RSC-1 at 1/4 scale, residual base rates, 24 lemons, 84 days",
    );
    let mut config = SimConfig::rsc1().scaled_down(4);
    config.modes = config.modes.scaled_rates(0.35);
    config.lemon_count = 24;
    let mut sim = ClusterSim::new(config, rsc_bench::FIGURE_SEED);
    sim.run(SimDuration::from_days(84));
    let truth = sim.lemons().node_ids();
    let store = sim.into_telemetry().seal();
    let from = store.horizon() - SimDuration::from_days(56);
    let features = compute_features(&store, from, store.horizon());

    println!(
        "\n{:>10} {:>10} {:>9} {:>9} {:>11} {:>8} {:>8}",
        "strictness", "criteria", "flagged", "TP", "precision", "recall", "F1"
    );
    println!("{}", "-".repeat(70));
    let mut rows = Vec::new();
    for (label, scale) in [("loose", 0.5f64), ("default", 1.0), ("strict", 2.0)] {
        for min_criteria in [1u32, 2, 3] {
            let base = LemonDetector::rsc_default();
            let detector = LemonDetector {
                min_xid_cnt: (base.min_xid_cnt as f64 * scale).round().max(1.0) as u32,
                min_tickets: (base.min_tickets as f64 * scale).round().max(1.0) as u32,
                min_out_count: (base.min_out_count as f64 * scale).round().max(1.0) as u32,
                min_multi_node_fails: (base.min_multi_node_fails as f64 * scale).round().max(1.0)
                    as u32,
                min_single_node_fails: (base.min_single_node_fails as f64 * scale).round().max(1.0)
                    as u32,
                min_single_node_rate: base.min_single_node_rate * scale,
                min_criteria,
            };
            let detected = detector.detect(&features);
            let q = DetectionQuality::evaluate(&detected, &truth);
            let p = q.precision();
            let r = q.recall();
            let f1 = if p + r > 0.0 {
                2.0 * p * r / (p + r)
            } else {
                0.0
            };
            println!(
                "{label:>10} {min_criteria:>10} {:>9} {:>9} {:>11} {:>8} {f1:>8.2}",
                detected.len(),
                q.true_positives,
                rsc_bench::pct(p),
                rsc_bench::pct(r),
            );
            rows.push(vec![
                label.to_string(),
                min_criteria.to_string(),
                detected.len().to_string(),
                format!("{p:.4}"),
                format!("{r:.4}"),
                format!("{f1:.4}"),
            ]);
        }
    }
    println!("\n(the shipped default — medium thresholds, 2 agreeing criteria — sits");
    println!(" at the F1 knee, matching the paper's manually tuned >85% accuracy)");
    rsc_bench::save_csv(
        "ablation_lemon_thresholds.csv",
        &[
            "strictness",
            "min_criteria",
            "flagged",
            "precision",
            "recall",
            "f1",
        ],
        rows,
    );
}
