//! Ablation: repair-failure probability under the fallible-remediation
//! lifecycle.
//!
//! The paper's availability model (§II-C) treats a remediation visit as one
//! sampled repair that always works. This ablation prices the optimism:
//! with per-rung failure probability `p`, failed attempts retry with
//! exponential backoff, escalate up the ladder (soft reset → reboot →
//! hardware swap → vendor ticket), and budget-exhausted nodes quarantine —
//! so fleet availability falls monotonically in `p`, and quarantined nodes
//! surface in lemon detection's churn features.
//!
//! Each sweep point is averaged over [`REPLICATES`] seeds: a single RNG
//! trajectory's visit-to-visit variance at small scale is the same order as
//! the p-step signal, so per-point means are what the monotone trend is
//! asserted on. All replicates run in parallel through the shared scenario
//! runner and land in the telemetry artifact cache as v2 snapshots.

use std::sync::Arc;

use rsc_core::availability::fleet_availability;
use rsc_core::lemon::{compute_features, LemonDetector};
use rsc_health::lifecycle::RemediationPolicy;
use rsc_sim::config::SimConfig;
use rsc_sim::runner::ScenarioSpec;
use rsc_sim_core::time::SimTime;
use rsc_storage::checkpoint::CheckpointFallbackPolicy;
use rsc_telemetry::store::NodeEventKind;
use rsc_telemetry::view::TelemetryView;

/// Per-rung failure probabilities swept, in centi-units.
const SWEEP_CENTI: [u32; 4] = [0, 25, 50, 75];

/// Seeds averaged per sweep point.
const REPLICATES: u64 = 3;

/// Everything one replicate contributes to a sweep point.
struct Sample {
    availability: f64,
    mttr_hours: f64,
    quarantined: usize,
    fallbacks: usize,
    lemons: usize,
}

fn sample(view: &Arc<TelemetryView>) -> Sample {
    let fleet = fleet_availability(view);
    let quarantined = view
        .node_events()
        .iter()
        .filter(|e| e.kind == NodeEventKind::Quarantined)
        .count();
    let features = compute_features(view, SimTime::ZERO, view.horizon());
    let lemons = LemonDetector::rsc_default().detect(&features).len();
    Sample {
        availability: fleet.fleet_availability,
        mttr_hours: fleet.mttr_hours,
        quarantined,
        fallbacks: view.ckpt_fallbacks().len(),
        lemons,
    }
}

fn main() {
    let mut args = rsc_bench::BenchArgs::parse(8);
    // The sweep runs 12 scenarios; cap the horizon so the default
    // invocation stays tractable (and the banner reports the real days).
    args.days = args.days.min(120);
    let days = args.days;
    let base = SimConfig::rsc1().scaled_down(args.scale);
    rsc_bench::banner(
        "Ablation",
        "Fallible remediation: repair-failure probability sweep",
        &args.scale_note("RSC-1"),
    );
    println!(
        "\n{:>8} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "p(fail)", "availability", "mttr (h)", "quarantined", "ckpt fallbks", "lemons"
    );
    println!("{}", "-".repeat(78));

    // Build every (p, replicate) scenario up front and run the whole batch
    // in parallel. Checkpoint fallback stays constant across rows so the
    // only knob that varies is rung fallibility.
    let mut specs = Vec::new();
    for p_centi in SWEEP_CENTI {
        let mut config = base.clone();
        config.remediation =
            RemediationPolicy::rsc_default().with_failure_prob(p_centi as f64 / 100.0);
        config.ckpt_fallback = CheckpointFallbackPolicy::rsc_default();
        for r in 0..REPLICATES {
            specs.push(ScenarioSpec::new(config.clone(), args.seed + r, days));
        }
    }
    let views = rsc_bench::run_specs(&specs);

    let mut rows = Vec::new();
    let mut last_availability = f64::INFINITY;
    for (p_centi, point) in SWEEP_CENTI
        .iter()
        .zip(views.chunks_exact(REPLICATES as usize))
    {
        let p = *p_centi as f64 / 100.0;
        let samples: Vec<Sample> = point.iter().map(sample).collect();
        let n = samples.len() as f64;
        let availability = samples.iter().map(|s| s.availability).sum::<f64>() / n;
        let mttr = samples.iter().map(|s| s.mttr_hours).sum::<f64>() / n;
        let quarantined: usize = samples.iter().map(|s| s.quarantined).sum();
        let fallbacks: usize = samples.iter().map(|s| s.fallbacks).sum();
        let lemons: usize = samples.iter().map(|s| s.lemons).sum();

        println!(
            "{:>8.2} {:>13.3}% {:>12.1} {:>12} {:>14} {:>12}",
            p,
            availability * 100.0,
            mttr,
            quarantined,
            fallbacks,
            lemons,
        );
        assert!(
            availability <= last_availability + 1e-12,
            "mean availability must fall monotonically in repair-failure probability \
             (p={p:.2}: {availability:.6} vs previous {last_availability:.6})"
        );
        last_availability = availability;
        rows.push(vec![
            format!("{p:.2}"),
            format!("{availability:.6}"),
            format!("{mttr:.2}"),
            quarantined.to_string(),
            fallbacks.to_string(),
            lemons.to_string(),
        ]);
    }
    if rows.last().is_some_and(|r| r[3] == "0") {
        eprintln!(
            "warning: no quarantines at the top of the sweep — horizon/scale too \
             small for the retry budget to exhaust"
        );
    }

    println!("\n(availability decays monotonically in p: failed attempts stretch each");
    println!(" remediation visit by backoff × escalation, and budget-exhausted nodes");
    println!(" quarantine — permanent capacity loss the infallible model never shows.");
    println!(" The quarantine/churn events feed the lemon detector's ticket and");
    println!(" out-count criteria, giving §IV-A a recovery-driven signal.)");
    rsc_bench::save_csv(
        "ablation_remediation.csv",
        &[
            "repair_fail_prob",
            "fleet_availability",
            "mttr_hours",
            "quarantined_nodes",
            "ckpt_fallbacks",
            "lemons_detected",
        ],
        rows,
    );
}
