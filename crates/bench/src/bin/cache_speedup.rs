//! Harness check: the telemetry artifact cache must make warm figure
//! invocations at least 5× faster than cold ones.
//!
//! Runs a representative figure scenario (RSC-1 at 1/8 scale) twice
//! against a dedicated cache directory: once cold (simulate + write
//! artifact), once warm (decode the snapshot). Reports both timings and
//! exits nonzero if the warm path is not ≥5× faster.

use std::time::Instant;

use rsc_sim::runner::ScenarioRunner;

fn main() -> std::process::ExitCode {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Cache speedup",
        "Warm artifact-cache load vs cold simulation",
        &args.scale_note("RSC-1"),
    );

    // A dedicated cache subdirectory so this check never poisons (or is
    // flattered by) the shared figure cache.
    let dir = rsc_sim::runner::default_cache_dir().join("cache_speedup");
    let _ = std::fs::remove_dir_all(&dir);
    let runner = ScenarioRunner::new().with_cache_dir(&dir);
    let spec = rsc_bench::rsc1_spec(args.scale, args.days, args.seed);

    let t0 = Instant::now();
    let (cold_views, cold_stats) = runner.run_all_with_stats(std::slice::from_ref(&spec));
    let cold = t0.elapsed();
    assert_eq!(cold_stats.misses, 1, "first run must be a cache miss");

    let t1 = Instant::now();
    let (warm_views, warm_stats) = runner.run_all_with_stats(std::slice::from_ref(&spec));
    let warm = t1.elapsed();
    assert_eq!(warm_stats.hits, 1, "second run must be a cache hit");

    assert_eq!(
        cold_views[0].jobs(),
        warm_views[0].jobs(),
        "cache hit must reproduce the simulation"
    );

    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "\ncold (simulate + write artifact): {:>10.3} s",
        cold.as_secs_f64()
    );
    println!(
        "warm (load artifact):             {:>10.3} s",
        warm.as_secs_f64()
    );
    println!("speedup: {speedup:.1}x (required: >= 5x)");
    let _ = std::fs::remove_dir_all(&dir);

    if speedup >= 5.0 {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: warm cache load is not >= 5x faster than simulation");
        std::process::ExitCode::FAILURE
    }
}
