//! Fig. 7: MTTF by job size with Gamma 90% confidence intervals, against
//! the theoretical 1/(N·r_f) projection.

use rsc_core::attribution::AttributionConfig;
use rsc_core::mttf::{estimate_node_failure_rate, mttf_by_job_size, FailureScope, MttfProjection};

fn main() {
    let args = rsc_bench::BenchArgs::parse(1);
    rsc_bench::banner(
        "Fig. 7",
        "MTTF by job size vs 1/(N·r_f) projection",
        &format!("both clusters, {} (takes ~1 min cold)", args.scale_note("")),
    );
    let config = AttributionConfig::paper_default();
    let mut rows = Vec::new();
    let (rsc1, rsc2) = rsc_bench::run_both(args.scale, args.days, args.seed);
    for (name, store) in [("RSC-1", rsc1), ("RSC-2", rsc2)] {
        let r_f = estimate_node_failure_rate(&store, &config, 128);
        let proj = if r_f > 0.0 {
            Some(MttfProjection::new(r_f))
        } else {
            None
        };
        println!(
            "\n--- {name}: estimated r_f = {:.2} per 1000 node-days (paper: 6.50 / 2.34) ---",
            r_f * 1000.0
        );
        let points = mttf_by_job_size(&store, FailureScope::InfraOnly, &config);
        println!(
            "{:>7} {:>9} {:>13} {:>22} {:>13}",
            "GPUs", "failures", "MTTF (h)", "90% CI (h)", "projected (h)"
        );
        println!("{}", "-".repeat(70));
        for p in &points {
            let ci = p
                .ci90
                .map(|(lo, hi)| format!("[{lo:>8.1}, {hi:>8.1}]"))
                .unwrap_or_else(|| "-".to_string());
            let projected = proj
                .as_ref()
                .map(|pr| format!("{:.1}", pr.mttf_hours(p.gpus)))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>7} {:>9} {:>13.1} {:>22} {:>13}",
                p.gpus, p.failures, p.mttf_hours, ci, projected
            );
            rows.push(vec![
                name.to_string(),
                p.gpus.to_string(),
                p.failures.to_string(),
                format!("{:.3}", p.mttf_hours),
                p.ci90.map(|c| format!("{:.3}", c.0)).unwrap_or_default(),
                p.ci90.map(|c| format!("{:.3}", c.1)).unwrap_or_default(),
                proj.as_ref()
                    .map(|pr| format!("{:.3}", pr.mttf_hours(p.gpus)))
                    .unwrap_or_default(),
            ]);
        }
        if let Some(pr) = &proj {
            println!(
                "\n  projections: 16,384 GPUs → {:.1} h (paper: 1.8 h at RSC-1 rate)",
                pr.mttf_hours(16_384)
            );
            println!(
                "               131,072 GPUs → {:.2} h (paper: 0.23 h)",
                pr.mttf_hours(131_072)
            );
        }
    }
    println!("\n(paper: 1024-GPU MTTF ≈ 7.9 h, ~2 orders below 8-GPU jobs at 47.7 d;");
    println!(" empirical curve tracks 1/N from 32 GPUs up)");
    rsc_bench::save_csv(
        "fig7_mttf.csv",
        &[
            "cluster",
            "gpus",
            "failures",
            "mttf_hours",
            "ci_lo",
            "ci_hi",
            "projected_hours",
        ],
        rows,
    );
}
