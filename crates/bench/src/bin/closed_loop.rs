//! Closed- vs open-loop goodput under a lemon-hazard sweep.
//!
//! The paper diagnoses reliability offline: lemons are detected from a
//! season of telemetry (§IV-A), checkpoint cadence is solved once from a
//! measured MTTF (§V). This experiment prices the alternative the
//! `rsc-control` crate implements — the same detectors driving budgeted,
//! hysteresis-gated mitigations *mid-run*: lemon quarantine with
//! controlled release, static→adaptive routing on MTTF regression, and an
//! online Young/Daly re-solve of the checkpoint interval from the
//! streaming failure rate.
//!
//! Each sweep point scales the hazard — every rate in the failure-mode
//! catalog plus the lemons' extra rate — and runs the *same* `(config,
//! seed)` pair twice: open loop ([`ControlPolicy::disabled`], fixed 1 h checkpoint
//! cadence) and closed loop ([`ControlPolicy::rsc_default`], cadence
//! taken from the controller's last accepted retune). Goodput is the
//! waterfall productive fraction (§III-B): delivered GPU-time minus
//! restart overhead and lost-work replay, over fleet capacity. Points are
//! averaged over [`REPLICATES`] seeds; the binary asserts the closed loop
//! wins at the top of the sweep, where mitigation has the most to bite.

use std::sync::Arc;

use rsc_cluster::node::GPUS_PER_NODE;
use rsc_control::{ClosedLoopRunner, ClosedLoopSpec, ControlPolicy};
use rsc_core::cluster_goodput::goodput_waterfall;
use rsc_sim::config::SimConfig;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::view::TelemetryView;

/// Multipliers applied to the failure-mode catalog and lemon rates.
const HAZARD_SWEEP: [f64; 3] = [1.0, 4.0, 16.0];

/// Seeds averaged per sweep point at the default 128-node scale. Smaller
/// fleets get proportionally more replicates ([`replicates_for`]): the
/// packing noise a quarantine or retune perturbs grows as the fleet
/// shrinks, so the seed average has to work harder for the same margin.
const REPLICATES: u64 = 5;

/// Replicates per sweep point for a fleet of `num_nodes` nodes.
fn replicates_for(num_nodes: u32) -> u64 {
    (REPLICATES * 128 / num_nodes.max(1) as u64).clamp(REPLICATES, 15)
}

/// Open-loop checkpoint cadence (the paper's hourly baseline).
const BASELINE_INTERVAL: SimDuration = SimDuration::from_hours(1);

/// Restart overhead charged per interruption in the waterfall.
const RESTART_OVERHEAD: SimDuration = SimDuration::from_mins(5);

fn goodput(view: &Arc<TelemetryView>, interval: SimDuration) -> f64 {
    goodput_waterfall(view, GPUS_PER_NODE as u32, interval, RESTART_OVERHEAD).goodput()
}

fn main() {
    let mut args = rsc_bench::BenchArgs::parse(16);
    // 18 scenarios, run per-pair rather than batched; keep the default
    // invocation tractable.
    args.days = args.days.min(60);
    let days = args.days;
    let base = SimConfig::rsc1().scaled_down(args.scale);
    let replicates = replicates_for(base.cluster.num_nodes());
    rsc_bench::banner(
        "Closed loop",
        "Reliability controller: goodput vs lemon hazard, open vs closed loop",
        &args.scale_note("RSC-1"),
    );
    println!(
        "\n{:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "hazard", "open", "closed", "delta", "actions", "accepted", "tau (m)"
    );
    println!("{}", "-".repeat(78));

    let runner = ClosedLoopRunner::new();
    let mut rows = Vec::new();
    let mut top_delta = f64::NAN;
    let mut top_accepted = 0usize;
    for hazard in HAZARD_SWEEP {
        let mut config = base.clone();
        // Elevated hazard scales the whole failure process — every mode in
        // the catalog and the lemons' extra rate — the way a bad hardware
        // batch or a regressing driver would, not just the planted lemons.
        // The batch itself is sized to the fleet (1/16 of nodes) so the
        // quarantine actuator has real lemons to catch, not only the
        // rounding remnant `scaled_down` leaves at deep scale-downs.
        config.modes = base.modes.scaled_rates(hazard);
        config.lemon_count = (base.cluster.num_nodes() as usize / 16).max(2);
        config.lemon_extra_rate_median *= hazard;

        let mut open_sum = 0.0;
        let mut closed_sum = 0.0;
        let mut actions = 0usize;
        let mut accepted = 0usize;
        let mut tau_mins = 0.0;
        for r in 0..replicates {
            let seed = args.seed + r;
            let open = runner.run_one(&ClosedLoopSpec::new(
                config.clone(),
                seed,
                days,
                ControlPolicy::disabled(),
            ));
            let closed = runner.run_one(&ClosedLoopSpec::new(
                config.clone(),
                seed,
                days,
                ControlPolicy::rsc_default(),
            ));
            let tau = closed.effective_checkpoint_interval(BASELINE_INTERVAL);
            open_sum += goodput(&open.view, BASELINE_INTERVAL);
            closed_sum += goodput(&closed.view, tau);
            actions += closed.view.control_actions().len();
            accepted += closed
                .view
                .control_actions()
                .iter()
                .filter(|a| a.accepted)
                .count();
            tau_mins += tau.as_secs() as f64 / 60.0;
        }
        let n = replicates as f64;
        let open_mean = open_sum / n;
        let closed_mean = closed_sum / n;
        let delta = closed_mean - open_mean;
        let tau_mean = tau_mins / n;

        println!(
            "{:>7.1}x {:>11.2}% {:>11.2}% {:>+9.2}% {:>10} {:>10} {:>10.0}",
            hazard,
            open_mean * 100.0,
            closed_mean * 100.0,
            delta * 100.0,
            actions,
            accepted,
            tau_mean,
        );
        top_delta = delta;
        top_accepted = accepted;
        rows.push(vec![
            format!("{hazard:.1}"),
            format!("{open_mean:.6}"),
            format!("{closed_mean:.6}"),
            format!("{delta:.6}"),
            actions.to_string(),
            accepted.to_string(),
            format!("{tau_mean:.1}"),
        ]);
    }

    assert!(
        top_accepted > 0,
        "the controller never actuated at the top of the hazard sweep — \
         the closed loop is not closing"
    );
    assert!(
        top_delta > 0.0,
        "closed-loop goodput must beat open-loop at the top of the hazard \
         sweep (delta = {:+.4}%)",
        top_delta * 100.0
    );

    println!("\n(Open loop checkpoints hourly whatever the hazard; the closed loop");
    println!(" re-solves Young/Daly from the streaming failure rate, quarantines");
    println!(" lemon suspects under the fleet budget, and flips routing adaptive on");
    println!(" MTTF regression. At elevated hazard the shorter cadence and culled");
    println!(" lemons cut replay loss by more than the quarantined capacity costs,");
    println!(" so the goodput delta grows with the hazard multiplier.)");
    rsc_bench::save_csv(
        "closed_loop.csv",
        &[
            "hazard_multiplier",
            "open_goodput",
            "closed_goodput",
            "delta",
            "actions",
            "accepted",
            "tau_minutes",
        ],
        rows,
    );
}
