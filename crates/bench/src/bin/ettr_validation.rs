//! §III validation: the analytic E\[ETTR\] approximation vs Monte Carlo,
//! across job scales (the paper reports ~5% agreement).

use rsc_core::ettr::analytical::{expected_ettr, EttrParams};
use rsc_core::ettr::montecarlo::monte_carlo_ettr;
use rsc_sim_core::rng::SimRng;

fn main() {
    rsc_bench::banner(
        "ETTR validation",
        "Analytic E[ETTR] vs Monte Carlo",
        "10,000 trials per scale; RSC-1 rate; Δt_cp = 60 min, u0 = 5 min",
    );
    let mut rng = SimRng::seed_from(rsc_bench::FIGURE_SEED);
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "GPUs", "nodes", "analytic", "monte-carlo", "rel diff", "E[failures]"
    );
    println!("{}", "-".repeat(70));
    let mut rows = Vec::new();
    for gpus in [64u32, 256, 1024, 2048, 8192, 16_384] {
        let nodes = gpus / 8;
        let params = EttrParams {
            nodes,
            r_f: 6.5e-3,
            queue_time: 5.0 / 60.0 / 24.0,
            restart_overhead: 5.0 / 60.0 / 24.0,
            checkpoint_interval: 1.0 / 24.0,
            productive_time: 7.0,
        };
        let analytic = expected_ettr(&params);
        let mc = monte_carlo_ettr(&params, 10_000, &mut rng);
        let rel = (mc.mean - analytic).abs() / mc.mean;
        println!(
            "{gpus:>8} {nodes:>10} {analytic:>12.4} {:>12.4} {:>9.2}% {:>12.2}",
            mc.mean,
            rel * 100.0,
            mc.mean_failures
        );
        rows.push(vec![
            gpus.to_string(),
            format!("{analytic:.5}"),
            format!("{:.5}", mc.mean),
            format!("{rel:.5}"),
            format!("{:.3}", mc.mean_failures),
        ]);
    }
    println!("\n(paper: the approximation is accurate to within ~5% even for large,");
    println!(" long-running hypothetical jobs such as 8k GPUs)");
    rsc_bench::save_csv(
        "ettr_validation.csv",
        &[
            "gpus",
            "analytic",
            "monte_carlo",
            "rel_diff",
            "mean_failures",
        ],
        rows,
    );
}
