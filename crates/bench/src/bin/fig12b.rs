//! Fig. 12b: sixty-four concurrent 16-GPU All-Reduce groups flooding the
//! fabric — bandwidth distribution with and without Adaptive Routing.

use rsc_network::experiments::contention_experiment;
use rsc_sim_core::stats::Ecdf;

fn main() {
    rsc_bench::banner(
        "Fig. 12b",
        "Concurrent All-Reduce groups under contention, ±AR",
        "64 groups × 2 nodes (16 GPUs each), one shared fabric",
    );
    let result = contention_experiment(64, rsc_bench::FIGURE_SEED);
    let (mean_ar, mean_st) = result.means();
    let (cv_ar, cv_st) = result.cvs();

    println!("\n{:>22} {:>12} {:>12}", "", "with AR", "without AR");
    println!("{}", "-".repeat(48));
    println!(
        "{:>22} {:>8.0} Gb/s {:>8.0} Gb/s",
        "mean group bandwidth", mean_ar, mean_st
    );
    println!(
        "{:>22} {:>12.3} {:>12.3}",
        "coeff. of variation", cv_ar, cv_st
    );

    let ar_cdf = Ecdf::from_samples(result.with_ar_gbps.iter().copied());
    let st_cdf = Ecdf::from_samples(result.without_ar_gbps.iter().copied());
    println!("\nper-group bandwidth quantiles (Gb/s):");
    println!("{:>8} {:>12} {:>12}", "quantile", "with AR", "without AR");
    let mut rows = Vec::new();
    for q in [0.05, 0.25, 0.50, 0.75, 0.95] {
        let a = ar_cdf.quantile(q).unwrap_or(0.0);
        let s = st_cdf.quantile(q).unwrap_or(0.0);
        println!("{:>7.0}% {a:>12.0} {s:>12.0}", q * 100.0);
        rows.push(vec![
            format!("{q:.2}"),
            format!("{a:.1}"),
            format!("{s:.1}"),
        ]);
    }
    println!("\n(paper: with many NCCL rings in flight, AR lowers performance");
    println!(" variation and achieves higher bandwidth by spreading flows away");
    println!(" from congested links)");
    rsc_bench::save_csv(
        "fig12b_contention.csv",
        &["quantile", "with_ar_gbps", "without_ar_gbps"],
        rows,
    );
}
