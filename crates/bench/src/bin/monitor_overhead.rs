//! Harness check: the streaming reliability monitor must cost under 5% of
//! simulation wall-clock.
//!
//! Runs a representative figure scenario (RSC-1 at 1/8 scale) uncached,
//! twice per round: bare, and with a full
//! [`rsc_monitor::ReliabilityMonitor`] attached to the event bus. The
//! overhead is the best per-round paired ratio over k rounds, so slow
//! background-load drift cancels. Reports the timings, the end-of-run
//! monitor summary, and a CSV row, and exits nonzero if the overhead
//! exceeds the budget (`RSC_MONITOR_OVERHEAD_MAX_PCT`, default 5).

use std::time::Instant;

use rsc_monitor::config::MonitorConfig;
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_sim::bus::SharedObserver;

const ROUNDS: usize = 5;

fn main() -> std::process::ExitCode {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Monitor overhead",
        "Streaming monitor cost vs bare simulation",
        &args.scale_note("RSC-1"),
    );
    let max_pct: f64 = std::env::var("RSC_MONITOR_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    let spec = rsc_bench::rsc1_spec(args.scale, args.days, args.seed);

    // Each round times bare and monitored back-to-back and compares them
    // as a ratio, so background load (which drifts on a timescale longer
    // than one round) cancels within the pair; taking the best ratio over
    // the rounds then discards pairs a load spike still split.
    let mut bare = f64::INFINITY;
    let mut monitored = f64::INFINITY;
    let mut overhead_pct = f64::INFINITY;
    let mut last_report = None;
    for round in 0..ROUNDS {
        let t0 = Instant::now();
        let baseline = spec.simulate();
        let bare_s = t0.elapsed().as_secs_f64();

        let handle = SharedObserver::new(ReliabilityMonitor::new(MonitorConfig::rsc_default()));
        let t1 = Instant::now();
        let observed = spec.simulate_observed(Box::new(handle.clone()));
        let monitored_s = t1.elapsed().as_secs_f64();

        assert_eq!(
            baseline.jobs(),
            observed.jobs(),
            "monitor must not perturb the simulation"
        );
        let round_pct = (monitored_s - bare_s) / bare_s * 100.0;
        println!(
            "round {round}: bare {bare_s:.3} s, monitored {monitored_s:.3} s ({round_pct:+.2}%)"
        );
        bare = bare.min(bare_s);
        monitored = monitored.min(monitored_s);
        overhead_pct = overhead_pct.min(round_pct);
        last_report = Some(handle.with(|m| m.report()));
    }

    println!("\nbest of {ROUNDS}: bare {bare:.3} s, monitored {monitored:.3} s");
    println!("overhead (best paired round): {overhead_pct:.2}% (budget: {max_pct:.1}%)");

    let report = last_report.expect("at least one round ran");
    println!("\nmonitor summary:");
    for line in report.summary_lines() {
        println!("  {line}");
    }

    rsc_bench::save_csv(
        "monitor_overhead.csv",
        &["bare_s", "monitored_s", "overhead_pct", "budget_pct"],
        vec![vec![
            format!("{bare:.4}"),
            format!("{monitored:.4}"),
            format!("{overhead_pct:.3}"),
            format!("{max_pct:.1}"),
        ]],
    );

    if overhead_pct <= max_pct {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: monitor overhead {overhead_pct:.2}% exceeds {max_pct:.1}% budget");
        std::process::ExitCode::FAILURE
    }
}
