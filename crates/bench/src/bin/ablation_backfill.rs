//! Ablation: backfill policy.
//!
//! The paper's Fig. 9 notes that its largest job runs waited *less* than
//! average — large-job wait time is a scheduler-policy outcome. This
//! sweep compares EASY-style unreserved backfill against conservative
//! reservations on the same workload.

use rsc_core::queueing::wait_by_size_and_qos;
use rsc_sched::job::QosClass;
use rsc_sched::sched::BackfillPolicy;
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Backfill policy: unreserved vs conservative reservations",
        "RSC-1 at 1/8 scale, 120 simulated days per policy",
    );
    let mut rows = Vec::new();
    for (name, policy) in [
        ("unreserved", BackfillPolicy::Unreserved),
        ("conservative", BackfillPolicy::Conservative),
    ] {
        let mut config = SimConfig::rsc1().scaled_down(8);
        config.sched.backfill = policy;
        let mut sim = ClusterSim::new(config, rsc_bench::FIGURE_SEED);
        sim.run(SimDuration::from_days(120));
        let util = sim.mean_utilization();
        let store = sim.into_telemetry().seal();
        println!("\n--- {name} (mean utilization {:.1}%) ---", util * 100.0);
        println!(
            "{:>8} {:>8} {:>8} {:>14} {:>12}",
            "GPUs", "QoS", "starts", "mean wait (h)", "max wait (h)"
        );
        for b in wait_by_size_and_qos(&store) {
            if b.count >= 30 && (b.gpus_lo >= 64 || b.qos == QosClass::Low) {
                println!(
                    "{:>8} {:>8} {:>8} {:>14.2} {:>12.1}",
                    b.gpus_lo, b.qos, b.count, b.mean_wait_hours, b.max_wait_hours
                );
                rows.push(vec![
                    name.to_string(),
                    b.gpus_lo.to_string(),
                    b.qos.to_string(),
                    b.count.to_string(),
                    format!("{:.3}", b.mean_wait_hours),
                    format!("{:.2}", b.max_wait_hours),
                ]);
            }
        }
    }
    println!("\n(reading: reservations trade a little small-job wait and utilization");
    println!(" for bounded large-job waits — the knob behind Fig. 9's observation");
    println!(" that the biggest runs waited less than average)");
    rsc_bench::save_csv(
        "ablation_backfill.csv",
        &[
            "policy",
            "gpus_lo",
            "qos",
            "starts",
            "mean_wait_hours",
            "max_wait_hours",
        ],
        rows,
    );
}
