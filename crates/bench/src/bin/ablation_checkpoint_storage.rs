//! Ablation: what Fig. 10's checkpoint cadences cost the storage system.
//!
//! The paper's 100k-GPU requirements ("~2-minute checkpointing") assume
//! non-blocking writes. This harness prices those cadences on the three
//! storage tiers: sustained bandwidth demand, per-checkpoint stall, and
//! the ETTR actually achieved once stalls are charged.

use rsc_core::ettr::analytical::{expected_ettr, EttrParams};
use rsc_sim_core::time::SimDuration;
use rsc_storage::checkpoint::{CheckpointSpec, WriteMode};
use rsc_storage::requirements::{ettr_with_stalls, writers_needed};
use rsc_storage::tier::{StorageTier, TierSpec};

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Storage cost of Fig. 10 checkpoint cadences",
        "100k-GPU run, 2T-parameter model (32 TB checkpoints), RSC-2 failure rate",
    );
    let size_gb = 32_000.0;
    let r_f = 2.34e-3;
    let nodes = 12_500u32;

    println!(
        "\n{:>10} {:>12} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "interval", "tier", "writers", "stall/ckpt", "demand GB/s", "ETTR(fail)", "ETTR(total)"
    );
    println!("{}", "-".repeat(88));
    let mut rows = Vec::new();
    for interval_mins in [60u64, 21, 7, 2] {
        let interval = SimDuration::from_mins(interval_mins);
        for tier_kind in StorageTier::ALL {
            let tier = TierSpec::rsc_default(tier_kind);
            // Shard enough to drain each write in half the interval.
            let budget = SimDuration::from_secs((interval.as_secs() / 2).max(1));
            let Some(writers) = writers_needed(size_gb, budget, &tier) else {
                println!(
                    "{:>7}min {:>12} {:>10} {:>12} {:>14} {:>12} {:>12}",
                    interval_mins,
                    tier_kind.label(),
                    "-",
                    "infeasible",
                    "-",
                    "-",
                    "-"
                );
                rows.push(vec![
                    interval_mins.to_string(),
                    tier_kind.label().to_string(),
                    String::new(),
                    "infeasible".to_string(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            };
            let spec = CheckpointSpec {
                size_gb,
                interval,
                mode: WriteMode::NonBlocking {
                    snapshot_secs: 10.0,
                },
                writers,
            };
            let stall = spec.stall_fraction(&tier);
            let demand = spec.fleet_demand_gbps(1);
            let failure_ettr = expected_ettr(&EttrParams {
                nodes,
                r_f,
                queue_time: 1.0 / 60.0 / 24.0,
                restart_overhead: 2.0 / 60.0 / 24.0,
                checkpoint_interval: interval_mins as f64 / 60.0 / 24.0,
                productive_time: 7.0,
            });
            let total = ettr_with_stalls(failure_ettr, stall);
            println!(
                "{:>7}min {:>12} {:>10} {:>11} {:>14.0} {:>12.3} {:>12.3}",
                interval_mins,
                tier_kind.label(),
                writers,
                rsc_bench::pct(stall),
                demand,
                failure_ettr,
                total
            );
            rows.push(vec![
                interval_mins.to_string(),
                tier_kind.label().to_string(),
                writers.to_string(),
                format!("{stall:.5}"),
                format!("{demand:.1}"),
                format!("{total:.4}"),
            ]);
        }
    }
    println!("\nBlocking-write counterfactual at the 2-minute cadence (ObjectStore):");
    let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
    let writers = writers_needed(size_gb, SimDuration::from_mins(1), &tier).expect("feasible");
    let blocking = CheckpointSpec {
        size_gb,
        interval: SimDuration::from_mins(2),
        mode: WriteMode::Blocking,
        writers,
    };
    println!(
        "  stall/ckpt = {} of the interval — blocking writes erase the gains",
        rsc_bench::pct(blocking.stall_fraction(&tier))
    );
    println!("\n(reading: minute-scale cadences are only viable on the object tier,");
    println!(" sharded wide, with non-blocking writes — the paper's assumption,");
    println!(" here priced at ~270 GB/s of sustained write bandwidth per run)");
    rsc_bench::save_csv(
        "ablation_checkpoint_storage.csv",
        &[
            "interval_mins",
            "tier",
            "writers",
            "stall_fraction",
            "demand_gbps",
            "ettr_total",
        ],
        rows,
    );
}
