//! Ablation: the two-hour preemption floor.
//!
//! "To help ensure even the lowest priority jobs are able to make
//! progress, preemptions can only occur after two hours of runtime"
//! (paper §III). This sweep shows the trade the floor makes: low-QoS
//! progress protection against high-QoS wait.

use rsc_core::queueing::wait_by_size_and_qos;
use rsc_core::report::status_breakdown;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Preemption floor sweep (paper default: 2 hours)",
        "RSC-1 at 1/8 scale, 90 simulated days per point",
    );
    println!(
        "\n{:>8} {:>12} {:>16} {:>20} {:>18}",
        "floor", "% preempted", "low-QoS runtime", "high-QoS mean wait", "mean utilization"
    );
    println!("{}", "-".repeat(80));
    let mut rows = Vec::new();
    for floor_mins in [0u64, 30, 120, 480] {
        let mut config = SimConfig::rsc1().scaled_down(8);
        config.sched.preemption_floor = SimDuration::from_mins(floor_mins);
        let mut sim = ClusterSim::new(config, rsc_bench::FIGURE_SEED);
        sim.run(SimDuration::from_days(90));
        let util = sim.mean_utilization();
        let store = sim.into_telemetry().seal();

        let shares = status_breakdown(&store);
        let preempted = shares
            .iter()
            .find(|s| s.status == JobStatus::Preempted)
            .map(|s| s.job_fraction)
            .unwrap_or(0.0);
        // Low-QoS productive share: completed low-QoS runtime fraction.
        let low_runtime: f64 = store
            .jobs()
            .iter()
            .filter(|r| r.qos == QosClass::Low && r.status == JobStatus::Completed)
            .map(|r| r.gpu_time().as_hours())
            .sum();
        let high_wait = wait_by_size_and_qos(&store)
            .iter()
            .filter(|b| b.qos == QosClass::High)
            .map(|b| b.mean_wait_hours * b.count as f64)
            .sum::<f64>()
            / wait_by_size_and_qos(&store)
                .iter()
                .filter(|b| b.qos == QosClass::High)
                .map(|b| b.count as f64)
                .sum::<f64>()
                .max(1.0);
        println!(
            "{:>5}min {:>12} {:>13.2e} h {:>18.3} h {:>17.1}%",
            floor_mins,
            rsc_bench::pct(preempted),
            low_runtime,
            high_wait,
            util * 100.0
        );
        rows.push(vec![
            floor_mins.to_string(),
            format!("{preempted:.5}"),
            format!("{low_runtime:.1}"),
            format!("{high_wait:.4}"),
            format!("{util:.4}"),
        ]);
    }
    println!("\n(reading: no floor maximizes high-QoS responsiveness but churns");
    println!(" low-QoS work; very long floors make preemption useless. The 2-hour");
    println!(" default keeps preempted-job share near the paper's ~10% while");
    println!(" letting the lowest tier finish real work)");
    rsc_bench::save_csv(
        "ablation_preemption_floor.csv",
        &[
            "floor_mins",
            "preempted_fraction",
            "low_qos_completed_gpu_hours",
            "high_qos_mean_wait_hours",
            "utilization",
        ],
        rows,
    );
}
