//! Fig. 12a: 512-GPU NCCL All-Reduce bandwidth under injected bit errors,
//! with and without Adaptive Routing (five iterations).

use rsc_network::experiments::ber_injection_experiment;

fn main() {
    rsc_bench::banner(
        "Fig. 12a",
        "All-Reduce bandwidth under link errors, ±AR",
        "512 GPUs (64 nodes), 50% of uplinks at 80% error rate, 5 iterations",
    );
    let healthy = ber_injection_experiment(1, 0.0, 0.0, rsc_bench::FIGURE_SEED)[0];
    println!(
        "\nhealthy baseline: {:.0} Gb/s (AR) / {:.0} Gb/s (static)",
        healthy.with_ar_gbps, healthy.without_ar_gbps
    );

    let results = ber_injection_experiment(5, 0.5, 0.8, rsc_bench::FIGURE_SEED);
    println!(
        "\n{:>10} {:>14} {:>14} {:>16}",
        "iteration", "with AR", "without AR", "static loss vs healthy"
    );
    println!("{}", "-".repeat(58));
    let mut rows = Vec::new();
    for r in &results {
        let loss = 1.0 - r.without_ar_gbps / healthy.without_ar_gbps;
        println!(
            "{:>10} {:>11.0} Gb/s {:>11.0} Gb/s {:>15}",
            r.iteration,
            r.with_ar_gbps,
            r.without_ar_gbps,
            rsc_bench::pct(loss)
        );
        rows.push(vec![
            r.iteration.to_string(),
            format!("{:.1}", r.with_ar_gbps),
            format!("{:.1}", r.without_ar_gbps),
            format!("{loss:.4}"),
        ]);
    }
    let mean_ar: f64 = results.iter().map(|r| r.with_ar_gbps).sum::<f64>() / 5.0;
    let mean_st: f64 = results.iter().map(|r| r.without_ar_gbps).sum::<f64>() / 5.0;
    println!(
        "\nmeans: {mean_ar:.0} Gb/s with AR vs {mean_st:.0} Gb/s without ({:.1}x)",
        mean_ar / mean_st
    );
    println!("(paper: AR maintains much higher bandwidth; without resilience, the");
    println!(" cluster saw 50–75% bandwidth loss during bring-up)");
    rsc_bench::save_csv(
        "fig12a_ber_allreduce.csv",
        &[
            "iteration",
            "with_ar_gbps",
            "without_ar_gbps",
            "static_loss_fraction",
        ],
        rows,
    );
}
