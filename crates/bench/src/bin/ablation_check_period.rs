//! Ablation: health-check sweep period.
//!
//! The clusters run checks every five minutes (§II-A). Longer periods
//! delay detection, letting faulty nodes linger and first-line defenses
//! erode; shorter periods buy little once detection beats the job-restart
//! timescale.

use rsc_core::attribution::AttributionConfig;
use rsc_core::goodput::goodput_loss;
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Health-check period sweep (paper default: 5 minutes)",
        "RSC-1 at 1/8 scale, 90 simulated days per point",
    );
    println!(
        "\n{:>10} {:>16} {:>20} {:>18}",
        "period", "health events", "goodput loss (GPU-h)", "mean utilization"
    );
    println!("{}", "-".repeat(70));
    let mut rows = Vec::new();
    for period_mins in [1u64, 5, 15, 60] {
        let mut config = SimConfig::rsc1().scaled_down(8);
        config.registry = config
            .registry
            .with_period(SimDuration::from_mins(period_mins));
        let mut sim = ClusterSim::new(config, rsc_bench::FIGURE_SEED);
        sim.run(SimDuration::from_days(90));
        let util = sim.mean_utilization();
        let store = sim.into_telemetry().seal();
        let events = store.health_events().len();
        let loss = goodput_loss(&store, &AttributionConfig::paper_default());
        let total = loss.total_failure_loss + loss.total_preemption_loss;
        println!(
            "{:>7}min {:>16} {:>20.0} {:>17.1}%",
            period_mins,
            events,
            total,
            util * 100.0
        );
        rows.push(vec![
            period_mins.to_string(),
            events.to_string(),
            format!("{total:.1}"),
            format!("{util:.4}"),
        ]);
    }
    println!("\n(the curve is flat: detection latency is tiny next to repair times");
    println!(" and job lengths, so the 5-minute default costs nothing — the paper's");
    println!(" motivation for the period is responsiveness of *removal*, which even");
    println!(" hour-granularity sweeps largely preserve at these failure rates)");
    rsc_bench::save_csv(
        "ablation_check_period.csv",
        &[
            "period_mins",
            "health_events",
            "goodput_loss_gpu_hours",
            "utilization",
        ],
        rows,
    );
}
