//! Fig. 8: lost goodput by job size — first-order hardware failures plus
//! second-order preemptions from failed jobs requeueing.

use rsc_core::attribution::AttributionConfig;
use rsc_core::goodput::goodput_loss;

fn main() {
    let args = rsc_bench::BenchArgs::parse(4);
    rsc_bench::banner(
        "Fig. 8",
        "Cluster goodput loss from failures and requeue preemptions",
        &format!(
            "both clusters, {}; hourly-checkpoint assumption",
            args.scale_note("")
        ),
    );
    let config = AttributionConfig::paper_default();
    let mut rows = Vec::new();
    let (rsc1, rsc2) = rsc_bench::run_both(args.scale, args.days, args.seed);
    for (name, store) in [("RSC-1", rsc1), ("RSC-2", rsc2)] {
        let loss = goodput_loss(&store, &config);
        println!("\n--- {name} ---");
        println!(
            "{:>7} {:>20} {:>22}",
            "GPUs", "failure loss (GPU-h)", "preemption loss (GPU-h)"
        );
        println!("{}", "-".repeat(55));
        for p in &loss.by_size {
            println!(
                "{:>7} {:>20.0} {:>22.0}",
                p.gpus, p.failure_loss_gpu_hours, p.preemption_loss_gpu_hours
            );
            rows.push(vec![
                name.to_string(),
                p.gpus.to_string(),
                format!("{:.1}", p.failure_loss_gpu_hours),
                format!("{:.1}", p.preemption_loss_gpu_hours),
            ]);
        }
        println!(
            "\n  totals: failures {:.0} GPU-h, second-order preemptions {:.0} GPU-h",
            loss.total_failure_loss, loss.total_preemption_loss
        );
        println!(
            "  second-order share: {} (paper: ~16% on RSC-1)",
            rsc_bench::pct(loss.preemption_share())
        );
    }
    println!("\n(paper: losses concentrate at the 2–4k GPU scale on RSC-1; RSC-2's");
    println!(" loss profile tilts to moderate sizes and is an order of magnitude lower)");
    rsc_bench::save_csv(
        "fig8_goodput_loss.csv",
        &[
            "cluster",
            "gpus",
            "failure_loss_gpu_hours",
            "preemption_loss_gpu_hours",
        ],
        rows,
    );
}
