//! Fig. 8: lost goodput by job size — first-order hardware failures plus
//! second-order preemptions from failed jobs requeueing.

use rsc_core::attribution::AttributionConfig;
use rsc_core::goodput::goodput_loss;

fn main() {
    rsc_bench::banner(
        "Fig. 8",
        "Cluster goodput loss from failures and requeue preemptions",
        "both clusters at 1/4 scale, 330 simulated days, hourly-checkpoint assumption",
    );
    let config = AttributionConfig::paper_default();
    let mut rows = Vec::new();
    for (name, mut store) in [
        ("RSC-1", rsc_bench::run_rsc1(4, rsc_bench::MEASUREMENT_DAYS, rsc_bench::FIGURE_SEED)),
        ("RSC-2", rsc_bench::run_rsc2(4, rsc_bench::MEASUREMENT_DAYS, rsc_bench::FIGURE_SEED + 1)),
    ] {
        let loss = goodput_loss(&mut store, &config);
        println!("\n--- {name} ---");
        println!(
            "{:>7} {:>20} {:>22}",
            "GPUs", "failure loss (GPU-h)", "preemption loss (GPU-h)"
        );
        println!("{}", "-".repeat(55));
        for p in &loss.by_size {
            println!(
                "{:>7} {:>20.0} {:>22.0}",
                p.gpus, p.failure_loss_gpu_hours, p.preemption_loss_gpu_hours
            );
            rows.push(vec![
                name.to_string(),
                p.gpus.to_string(),
                format!("{:.1}", p.failure_loss_gpu_hours),
                format!("{:.1}", p.preemption_loss_gpu_hours),
            ]);
        }
        println!(
            "\n  totals: failures {:.0} GPU-h, second-order preemptions {:.0} GPU-h",
            loss.total_failure_loss, loss.total_preemption_loss
        );
        println!(
            "  second-order share: {} (paper: ~16% on RSC-1)",
            rsc_bench::pct(loss.preemption_share())
        );
    }
    println!("\n(paper: losses concentrate at the 2–4k GPU scale on RSC-1; RSC-2's");
    println!(" loss profile tilts to moderate sizes and is an order of magnitude lower)");
    rsc_bench::save_csv(
        "fig8_goodput_loss.csv",
        &["cluster", "gpus", "failure_loss_gpu_hours", "preemption_loss_gpu_hours"],
        rows,
    );
}
