//! Ablation: restart-overhead scaling (§V).
//!
//! NCCL initialization "can scale poorly with the number of GPU nodes";
//! this sweep shows what a scale-proof restart path buys as clusters grow
//! — the paper's argument for investing in fast, reliable restart
//! routines.

use rsc_core::ettr::restart::RestartOverheadModel;

fn main() {
    rsc_bench::banner(
        "Ablation",
        "Restart-overhead scaling: naive vs optimized restart path",
        "analytic; RSC-2 failure rate, 5-minute checkpoints, week-long runs",
    );
    let r_f = 2.34e-3;
    let cp = 5.0 / 60.0 / 24.0;
    let naive = RestartOverheadModel::naive();
    let optimized = RestartOverheadModel::optimized();

    println!(
        "\n{:>10} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "GPUs", "naive u0", "optimized u0", "ETTR naive", "ETTR optim", "gain"
    );
    println!("{}", "-".repeat(78));
    let mut rows = Vec::new();
    for gpus in [1024u32, 8192, 16_384, 65_536, 100_000, 131_072] {
        let nodes = gpus.div_ceil(8);
        let n_u0 = naive.u0_secs(nodes);
        let o_u0 = optimized.u0_secs(nodes);
        let n_ettr = naive.expected_ettr(gpus, r_f, 1e-4, cp, 7.0);
        let o_ettr = optimized.expected_ettr(gpus, r_f, 1e-4, cp, 7.0);
        println!(
            "{gpus:>10} {:>11.0} s {:>11.0} s {n_ettr:>12.3} {o_ettr:>12.3} {:>+9.3}",
            n_u0,
            o_u0,
            o_ettr - n_ettr
        );
        rows.push(vec![
            gpus.to_string(),
            format!("{n_u0:.1}"),
            format!("{o_u0:.1}"),
            format!("{n_ettr:.4}"),
            format!("{o_ettr:.4}"),
        ]);
    }
    println!("\n(reading: below ~10k GPUs restart latency is noise; at 100k GPUs the");
    println!(" naive path's ~15-minute restarts cost several points of ETTR on top");
    println!(" of checkpoint losses — §V's case for rearchitecting initialization)");
    rsc_bench::save_csv(
        "ablation_restart_scaling.csv",
        &[
            "gpus",
            "naive_u0_secs",
            "optimized_u0_secs",
            "ettr_naive",
            "ettr_optimized",
        ],
        rows,
    );
}
