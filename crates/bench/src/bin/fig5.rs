//! Fig. 5: evolution of the cluster failure rate over the measurement
//! year, broken down by failure mode, with health-check introduction dates
//! annotated (30-day rolling average).

use rsc_core::attribution::{attribute_failures, AttributionConfig};
use rsc_health::registry::CheckRegistry;
use rsc_sched::job::JobStatus;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::rolling::rolling_rate;

fn main() {
    let args = rsc_bench::BenchArgs::parse(8);
    rsc_bench::banner(
        "Fig. 5",
        "Failure-rate evolution by mode (30-day rolling average)",
        &args.scale_note("RSC-1"),
    );
    let store = rsc_bench::run_rsc1(args.scale, args.days, args.seed);
    let num_nodes = store.num_nodes();
    let horizon = store.horizon();
    let attributions = attribute_failures(&store, &AttributionConfig::paper_default());

    // Collect failure times per attributed cause (infra failures only).
    let mut series: std::collections::BTreeMap<String, Vec<SimTime>> = Default::default();
    for a in &attributions {
        let r = &store.jobs()[a.record_index];
        let is_hw = matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued)
            || (r.status == JobStatus::Failed && a.is_attributed());
        if !is_hw {
            continue;
        }
        let label = a
            .cause
            .map(|c| c.label().to_string())
            .unwrap_or_else(|| "unattributed".into());
        series.entry(label).or_default().push(r.ended_at);
    }
    for times in series.values_mut() {
        times.sort();
    }

    println!("\nHealth-check rollout annotations:");
    for (check, at) in CheckRegistry::rsc_default().rollout_annotations() {
        println!("  day {:>4.0}: {} check introduced", at.as_days(), check);
    }

    let window = SimDuration::from_days(30);
    let step = SimDuration::from_days(10);
    let mut rows: Vec<Vec<String>> = Vec::new();
    println!("\nfailures per 1000 node-days (rows = day, columns = mode):");
    let labels: Vec<String> = series.keys().cloned().collect();
    println!(
        "{:>6} {}",
        "day",
        labels
            .iter()
            .map(|l| format!("{l:>14}"))
            .collect::<String>()
    );
    let per_mode: Vec<Vec<rsc_telemetry::rolling::SeriesPoint>> = labels
        .iter()
        .map(|l| rolling_rate(&series[l], horizon, window, step, num_nodes))
        .collect();
    if let Some(first) = per_mode.first() {
        for (i, p) in first.iter().enumerate() {
            let mut row = vec![format!("{:.0}", p.day)];
            print!("{:>6.0} ", p.day);
            for mode_series in &per_mode {
                let v = mode_series[i].value * 1000.0;
                print!("{v:>14.3}");
                row.push(format!("{v:.4}"));
            }
            println!();
            rows.push(row);
        }
    }
    println!("\n(paper: GSP-timeout era early in the year fixed by a driver patch;");
    println!(" mount failures appear once the FS-mount check ships; an IB-link");
    println!(" spike from a handful of nodes in the summer)");

    let mut header: Vec<&str> = vec!["day"];
    header.extend(labels.iter().map(|s| s.as_str()));
    rsc_bench::save_csv("fig5_failure_rate_evolution.csv", &header, rows);
}
