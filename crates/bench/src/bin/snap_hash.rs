//! Prints a stable hash of the sealed telemetry snapshot for a scenario.
//!
//! The byte-identity audit tool: run it before and after a layout or
//! hot-path change (same `--nodes/--days/--seed`) and diff the printed
//! FNV-1a 64 hash. Identical hashes mean the sealed snapshot — every
//! record in every stream, in order, plus the chain checkpoints — is
//! byte-for-byte unchanged.
//!
//! ```text
//! cargo run --release -p rsc-bench --bin snap_hash -- --nodes 102400 --days 1
//! ```
//!
//! `--preset rsc1|rsc2` hashes the era-accurate presets instead of the
//! resized scaling scenario (`--scale N` applies `scaled_down(N)`).

use std::io::Write as _;

use rsc_bench::{rsc1_sized_spec, rsc1_spec, rsc2_spec, FIGURE_SEED};
use rsc_telemetry::snapshot::write_snapshot;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut nodes: u32 = 2048;
    let mut days: u64 = 7;
    let mut seed: u64 = FIGURE_SEED;
    let mut preset: Option<String> = None;
    let mut scale: u32 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().expect("flag needs a value");
        match a.as_str() {
            "--nodes" => nodes = val().parse().expect("--nodes"),
            "--days" => days = val().parse().expect("--days"),
            "--seed" => seed = val().parse().expect("--seed"),
            "--preset" => preset = Some(val()),
            "--scale" => scale = val().parse().expect("--scale"),
            other => panic!("unknown flag {other}"),
        }
    }
    let spec = match preset.as_deref() {
        None => rsc1_sized_spec(nodes, days, seed),
        Some("rsc1") => rsc1_spec(scale, days, seed),
        Some("rsc2") => rsc2_spec(scale, days, seed),
        Some(other) => panic!("unknown preset {other} (rsc1|rsc2)"),
    };
    let view = spec.simulate();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("encode snapshot");
    let h = fnv1a(&bytes);
    let mut out = std::io::stdout().lock();
    writeln!(
        out,
        "scenario fp={:016x} snapshot_bytes={} fnv1a={:016x}",
        spec.fingerprint(),
        bytes.len(),
        h
    )
    .unwrap();
}
