//! Fig. 10: checkpoint-interval and failure-rate requirements for
//! 100k-GPU job runs (restart overhead coupled to the interval).

use rsc_core::ettr::requirements::{max_coupled_interval_mins, sweep};

fn main() {
    rsc_bench::banner(
        "Fig. 10",
        "Checkpoint & failure-rate requirements at 100k GPUs",
        "analytic sweep; u0 coupled to Δt_cp, 1-min queues, 7-day runs",
    );
    let rates: Vec<f64> = vec![1.0e-3, 2.34e-3, 4.0e-3, 6.5e-3, 1.0e-2];
    let intervals: Vec<f64> = vec![1.0, 2.0, 5.0, 7.0, 10.0, 21.0, 30.0, 60.0];

    println!("\nE[ETTR] grid (rows = r_f per 1000 node-days, cols = checkpoint mins):");
    print!("{:>10}", "r_f");
    for cp in &intervals {
        print!("{cp:>8.0}m");
    }
    println!();
    println!("{}", "-".repeat(10 + 9 * intervals.len()));
    let points = sweep(100_000, &rates, &intervals, 1.0, 0.0, 7.0);
    let mut rows = Vec::new();
    for &r_f in &rates {
        print!("{:>10.2}", r_f * 1000.0);
        for &cp in &intervals {
            // Coupled overhead: evaluate with u0 = Δt_cp directly.
            let p = rsc_core::ettr::analytical::EttrParams {
                nodes: 12_500,
                r_f,
                queue_time: 1.0 / 60.0 / 24.0,
                restart_overhead: cp / 60.0 / 24.0,
                checkpoint_interval: cp / 60.0 / 24.0,
                productive_time: 7.0,
            };
            let e = rsc_core::ettr::analytical::expected_ettr(&p);
            print!("{e:>9.2}");
            rows.push(vec![
                format!("{:.4}", r_f),
                format!("{cp:.1}"),
                format!("{e:.4}"),
            ]);
        }
        println!();
    }
    let _ = points; // uncoupled sweep retained for the CSV consumers below

    println!("\nRequired checkpoint interval (u0 = Δt_cp) for target E[ETTR]:");
    println!(
        "{:>26} {:>14} {:>14}",
        "failure rate", "ETTR = 0.5", "ETTR = 0.9"
    );
    for (label, r_f) in [
        ("RSC-1-like (6.50)", 6.5e-3),
        ("RSC-2-like (2.34)", 2.34e-3),
    ] {
        let half = max_coupled_interval_mins(100_000, r_f, 0.5, 1.0, 7.0)
            .map(|m| format!("{m:.1} min"))
            .unwrap_or_else(|| "unreachable".into());
        let nine = max_coupled_interval_mins(100_000, r_f, 0.9, 1.0, 7.0)
            .map(|m| format!("{m:.1} min"))
            .unwrap_or_else(|| "unreachable".into());
        println!("{label:>26} {half:>14} {nine:>14}");
    }
    println!("\n(paper: ~7 min for ETTR 0.5 at the RSC-1 rate, ~21 min at the RSC-2");
    println!(" rate; ETTR 0.9 at the RSC-2 rate needs ~2-min checkpoints + restarts)");
    rsc_bench::save_csv(
        "fig10_requirements.csv",
        &["r_f_per_node_day", "checkpoint_mins", "expected_ettr"],
        rows,
    );
}
