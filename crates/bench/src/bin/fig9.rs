//! Fig. 9: expected ETTR (analytical) vs measured job-run ETTR by job
//! size, for long high-priority runs.

use rsc_core::attribution::AttributionConfig;
use rsc_core::ettr::analytical::{expected_ettr, EttrParams};
use rsc_core::ettr::jobrun::{ettr_by_size_bucket, long_high_priority_runs, reconstruct_job_runs};
use rsc_core::mttf::estimate_node_failure_rate;
use rsc_sim_core::time::SimDuration;

fn main() {
    let args = rsc_bench::BenchArgs::parse(1);
    rsc_bench::banner(
        "Fig. 9",
        "Expected vs measured job-run ETTR by size",
        &format!(
            "both clusters, {}; Δt_cp = 60 min, u0 = 5 min; runs ≥ 24 h, high priority",
            args.scale_note("")
        ),
    );
    let ckpt = SimDuration::from_mins(60);
    let u0 = SimDuration::from_mins(5);
    let mut rows = Vec::new();
    let (rsc1, rsc2) = rsc_bench::run_both(args.scale, args.days, args.seed);
    for (name, store) in [("RSC-1", rsc1), ("RSC-2", rsc2)] {
        let r_f = estimate_node_failure_rate(&store, &AttributionConfig::paper_default(), 128);
        let runs = reconstruct_job_runs(&store);
        let selected = long_high_priority_runs(&runs, SimDuration::from_hours(24));
        let buckets = ettr_by_size_bucket(&selected, ckpt, u0);
        println!(
            "\n--- {name}: r_f = {:.2}/1000 node-days, {} qualifying runs ---",
            r_f * 1000.0,
            selected.len()
        );
        println!(
            "{:>10} {:>6} {:>14} {:>18} {:>12}",
            "GPUs", "runs", "measured ETTR", "90% CI", "E[ETTR]"
        );
        println!("{}", "-".repeat(66));
        for b in &buckets {
            // Analytical expectation for a typical run in this bucket.
            let params = EttrParams {
                nodes: (b.gpus_lo / 8).max(1),
                r_f: r_f.max(1e-6),
                queue_time: 5.0 / 60.0 / 24.0,
                restart_overhead: u0.as_days(),
                checkpoint_interval: ckpt.as_days(),
                productive_time: 2.0,
            };
            let expected = expected_ettr(&params);
            println!(
                "{:>10} {:>6} {:>14.3} {:>8.3}–{:<8.3} {:>12.3}",
                format!("{}–{}", b.gpus_lo, b.gpus_hi),
                b.runs,
                b.mean_ettr,
                b.ci90.0.max(0.0),
                b.ci90.1.min(1.0),
                expected
            );
            rows.push(vec![
                name.to_string(),
                b.gpus_lo.to_string(),
                b.runs.to_string(),
                format!("{:.4}", b.mean_ettr),
                format!("{:.4}", b.ci90.0),
                format!("{:.4}", b.ci90.1),
                format!("{:.4}", expected),
            ]);
        }
    }
    println!("\n(paper: expectation and measurement agree except at the smallest sizes;");
    println!(" the largest RSC-1 runs sit above prediction — their queues are shorter)");
    rsc_bench::save_csv(
        "fig9_ettr.csv",
        &[
            "cluster",
            "gpus_lo",
            "runs",
            "measured_ettr",
            "ci_lo",
            "ci_hi",
            "expected_ettr",
        ],
        rows,
    );
}
