#![warn(missing_docs)]

//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary regenerates one table or figure from the paper by running
//! the simulator (at a stated scale) and printing the same rows/series the
//! paper reports, plus a CSV copy under [`figures_dir`].
//!
//! Simulation goes through [`rsc_sim::ScenarioRunner`]: scenarios execute
//! in parallel where a figure needs more than one, and sealed telemetry is
//! cached as snapshots under the runner's artifact directory (default
//! `target/telemetry/`), so re-running a figure binary — or a second
//! binary wanting the same scenario — loads the artifact instead of
//! simulating for minutes. Delete the cache directory (or change any
//! scenario parameter) to force fresh runs.
//!
//! Binaries take `--seed N`, `--days N`, and `--scale N` flags (see
//! [`BenchArgs`]) so scenarios can be varied without recompiling.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rsc_sim::config::SimConfig;
use rsc_sim::runner::{ScenarioRunner, ScenarioSpec};
use rsc_telemetry::view::TelemetryView;

/// Standard measurement horizon: the paper covers 11 months.
pub const MEASUREMENT_DAYS: u64 = 330;

/// Default seed for figure regeneration (fixed for reproducibility).
pub const FIGURE_SEED: u64 = 20_250_301;

/// The scenario runner the harness binaries share: default artifact
/// cache (override with `RSC_TELEMETRY_CACHE`), default worker pool.
pub fn runner() -> ScenarioRunner {
    ScenarioRunner::new()
}

/// The RSC-1 scenario spec at `1/divisor` scale for `days`.
pub fn rsc1_spec(divisor: u32, days: u64, seed: u64) -> ScenarioSpec {
    spec(SimConfig::rsc1(), divisor, days, seed)
}

/// The RSC-2 scenario spec at `1/divisor` scale for `days`.
pub fn rsc2_spec(divisor: u32, days: u64, seed: u64) -> ScenarioSpec {
    spec(SimConfig::rsc2(), divisor, days, seed)
}

fn spec(config: SimConfig, divisor: u32, days: u64, seed: u64) -> ScenarioSpec {
    let config = if divisor > 1 {
        config.scaled_down(divisor)
    } else {
        config
    };
    ScenarioSpec::new(config, seed, days)
}

/// An RSC-1-like scenario resized to exactly `num_nodes` nodes (up *or*
/// down from RSC-1's 2,048), with the arrival rate scaled proportionally
/// and the offered load re-calibrated — the `sim_throughput` scaling
/// scenario. Era storylines are disabled so runs at different sizes stay
/// comparable (stationary failure rates, scheduler-bound behaviour).
pub fn rsc1_sized_spec(num_nodes: u32, days: u64, seed: u64) -> ScenarioSpec {
    let base = SimConfig::rsc1();
    let factor = num_nodes as f64 / base.cluster.num_nodes() as f64;
    let cluster = rsc_cluster::spec::ClusterSpec::new(format!("RSC-1@{num_nodes}"), num_nodes);
    let mut workload = base.workload.scaled(factor);
    workload.calibrate_load(cluster.total_gpus(), 0.95);
    let config = SimConfig {
        cluster,
        workload,
        eras: rsc_sim::config::EraPreset::None,
        lemon_count: ((base.lemon_count as f64 * factor) as usize).max(1),
        ib_spike_node_count: 0,
        ..base
    };
    ScenarioSpec::new(config, seed, days)
}

/// Runs (or loads from cache) an RSC-1-like simulation at `1/divisor`
/// scale for `days`, returning sealed telemetry.
pub fn run_rsc1(divisor: u32, days: u64, seed: u64) -> Arc<TelemetryView> {
    runner().run_one(&rsc1_spec(divisor, days, seed))
}

/// Runs (or loads from cache) an RSC-2-like simulation at `1/divisor`
/// scale for `days`, returning sealed telemetry.
pub fn run_rsc2(divisor: u32, days: u64, seed: u64) -> Arc<TelemetryView> {
    runner().run_one(&rsc2_spec(divisor, days, seed))
}

/// Runs the RSC-1 and RSC-2 scenarios *in parallel* (RSC-2 seeded with
/// `seed + 1` as the figure binaries conventionally do), returning both
/// sealed views.
pub fn run_both(divisor: u32, days: u64, seed: u64) -> (Arc<TelemetryView>, Arc<TelemetryView>) {
    let specs = [
        rsc1_spec(divisor, days, seed),
        rsc2_spec(divisor, days, seed + 1),
    ];
    let mut views = runner().run_all(&specs).into_iter();
    let rsc1 = views.next().expect("runner returns one view per spec");
    let rsc2 = views.next().expect("runner returns one view per spec");
    (rsc1, rsc2)
}

/// Runs a batch of scenario specs in parallel through the shared runner.
pub fn run_specs(specs: &[ScenarioSpec]) -> Vec<Arc<TelemetryView>> {
    runner().run_all(specs)
}

/// Common command-line arguments for the figure/table binaries.
///
/// Supported flags, each as `--flag N` or `--flag=N`:
///
/// * `--seed N` — RNG seed (default [`FIGURE_SEED`]);
/// * `--days N` — horizon in days (default [`MEASUREMENT_DAYS`]);
/// * `--scale N` — run clusters at `1/N` scale (default per binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchArgs {
    /// RNG seed.
    pub seed: u64,
    /// Horizon in days.
    pub days: u64,
    /// Scale divisor: simulate at `1/scale` of full cluster size.
    pub scale: u32,
}

impl BenchArgs {
    /// Parses `std::env::args()`, exiting with a usage message on
    /// malformed flags. `default_scale` is the binary's stated scale.
    pub fn parse(default_scale: u32) -> Self {
        match Self::parse_from(std::env::args().skip(1), default_scale) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: [--seed N] [--days N] [--scale N]");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`](Self::parse)).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, missing values, or
    /// unparseable numbers.
    pub fn parse_from<I>(args: I, default_scale: u32) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = BenchArgs {
            seed: FIGURE_SEED,
            days: MEASUREMENT_DAYS,
            scale: default_scale,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let mut value = |name: &str| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => iter
                        .next()
                        .ok_or_else(|| format!("{name} requires a value")),
                }
            };
            match flag.as_str() {
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("bad --seed: {v:?}"))?;
                }
                "--days" => {
                    let v = value("--days")?;
                    out.days = v.parse().map_err(|_| format!("bad --days: {v:?}"))?;
                    if out.days == 0 {
                        return Err("--days must be positive".to_string());
                    }
                }
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale = v.parse().map_err(|_| format!("bad --scale: {v:?}"))?;
                    if out.scale == 0 {
                        return Err("--scale must be positive".to_string());
                    }
                }
                other => return Err(format!("unknown flag: {other:?}")),
            }
        }
        Ok(out)
    }

    /// A short human-readable summary for figure banners. `cluster` may be
    /// empty when the binary names the clusters itself.
    pub fn scale_note(&self, cluster: &str) -> String {
        let prefix = if cluster.is_empty() {
            String::new()
        } else {
            format!("{cluster} ")
        };
        format!(
            "{prefix}at 1/{} scale, {} simulated days, seed {}",
            self.scale, self.days, self.seed
        )
    }
}

/// Extracts the balanced `{...}` object following `"key":` in `text`,
/// or `None` if the key is absent or not followed by an object. Scans
/// textually (the bench JSON files contain no strings with braces), so
/// the perf-trajectory files can be merged without a JSON dependency.
pub fn json_object_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(at) = text[from..].find(&needle) {
        let after = from + at + needle.len();
        let rest = text[after..].trim_start();
        if let Some(stripped) = rest.strip_prefix(':') {
            let body = stripped.trim_start();
            if body.starts_with('{') {
                let start = text.len() - body.len();
                let mut depth = 0usize;
                for (i, c) in text[start..].char_indices() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(&text[start..start + i + 1]);
                            }
                        }
                        _ => {}
                    }
                }
                return None; // unbalanced
            }
        }
        from = after;
    }
    None
}

/// Extracts the number following the first `"key":` in `text`.
pub fn json_number_field(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Where figure CSVs land, resolved in order:
///
/// 1. `$RSC_FIGURES_DIR` — explicit override;
/// 2. `$CARGO_TARGET_DIR/figures` — follows a relocated target dir;
/// 3. `target/figures` relative to the working directory.
pub fn figures_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RSC_FIGURES_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        if !target.is_empty() {
            return Path::new(&target).join("figures");
        }
    }
    PathBuf::from("target").join("figures")
}

/// Writes a figure CSV and reports the path.
pub fn save_csv<S: AsRef<str>>(name: &str, header: &[&str], rows: Vec<Vec<S>>) {
    let path = figures_dir().join(name);
    match rsc_telemetry::csv::write_csv_file(&path, header, rows) {
        Ok(()) => println!("\n[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a fraction as a percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x == 0.0 {
        "0%".to_string()
    } else if x < 0.001 {
        format!("{:.3}%", x * 100.0)
    } else if x < 0.10 {
        format!("{:.2}%", x * 100.0)
    } else {
        format!("{:.1}%", x * 100.0)
    }
}

/// A fixed-width ASCII bar for quick terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Resets the process peak-RSS high-water mark (Linux only), so the next
/// [`peak_rss_bytes`] read reflects only allocations made after this call.
/// Best-effort: silently a no-op where `/proc/self/clear_refs` is absent
/// or not writable.
pub fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    {
        // Writing "5" resets VmHWM (and VmPeak) to the current usage.
        let _ = std::fs::write("/proc/self/clear_refs", "5");
    }
}

/// The process peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux / if unreadable. Pair with
/// [`reset_peak_rss`] for per-measurement peaks.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: u64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())?;
        Some(kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Prints a figure banner.
pub fn banner(id: &str, title: &str, scale_note: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("  ({scale_note})");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default_scale: u32) -> Result<BenchArgs, String> {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()), default_scale)
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0), "0%");
        assert_eq!(pct(0.0005), "0.050%");
        assert_eq!(pct(0.05), "5.00%");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn args_defaults() {
        let a = parse(&[], 8).unwrap();
        assert_eq!(a.seed, FIGURE_SEED);
        assert_eq!(a.days, MEASUREMENT_DAYS);
        assert_eq!(a.scale, 8);
    }

    #[test]
    fn args_parse_both_styles() {
        let a = parse(&["--seed", "7", "--days=14", "--scale", "32"], 8).unwrap();
        assert_eq!((a.seed, a.days, a.scale), (7, 14, 32));
    }

    #[test]
    fn args_reject_garbage() {
        assert!(parse(&["--seed"], 8).is_err());
        assert!(parse(&["--days", "zero"], 8).is_err());
        assert!(parse(&["--days", "0"], 8).is_err());
        assert!(parse(&["--scale=0"], 8).is_err());
        assert!(parse(&["--frobnicate", "1"], 8).is_err());
    }

    #[test]
    fn json_object_field_extracts_balanced() {
        let text = r#"{"bench": "x", "baseline": {"days": 30, "scales": {"1024": {"wall_s": 1.5}}}, "current": {"days": 5}}"#;
        let baseline = json_object_field(text, "baseline").unwrap();
        assert!(baseline.starts_with('{') && baseline.ends_with('}'));
        assert!(baseline.contains("\"scales\""));
        assert!(!baseline.contains("\"current\""));
        let scales = json_object_field(baseline, "scales").unwrap();
        let entry = json_object_field(scales, "1024").unwrap();
        assert_eq!(json_number_field(entry, "wall_s"), Some(1.5));
        assert_eq!(json_object_field(text, "missing"), None);
        // Key present but not an object: skipped, not mis-parsed.
        assert_eq!(json_object_field(text, "bench"), None);
    }

    #[test]
    fn json_number_field_parses_variants() {
        let text = r#"{"a": 12, "b": -3.25, "c": 1.2e3, "d": true}"#;
        assert_eq!(json_number_field(text, "a"), Some(12.0));
        assert_eq!(json_number_field(text, "b"), Some(-3.25));
        assert_eq!(json_number_field(text, "c"), Some(1200.0));
        assert_eq!(json_number_field(text, "d"), None);
        assert_eq!(json_number_field(text, "zz"), None);
    }

    #[test]
    fn sized_spec_matches_node_count() {
        let spec = rsc1_sized_spec(512, 3, 1);
        assert_eq!(spec.config.cluster.num_nodes(), 512);
        assert_eq!(spec.days, 3);
    }

    #[test]
    fn small_run_produces_telemetry() {
        // Uncached spec path: keep harness tests hermetic.
        let view = rsc_sim::ScenarioRunner::without_cache().run_one(&rsc1_spec(32, 2, 1));
        assert!(!view.jobs().is_empty());
    }
}
