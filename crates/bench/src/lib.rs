#![warn(missing_docs)]

//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary regenerates one table or figure from the paper by running
//! the simulator (at a stated scale) and printing the same rows/series the
//! paper reports, plus a CSV copy under `target/figures/`.

use std::path::PathBuf;

use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::store::TelemetryStore;

/// Standard measurement horizon: the paper covers 11 months.
pub const MEASUREMENT_DAYS: u64 = 330;

/// Default seed for figure regeneration (fixed for reproducibility).
pub const FIGURE_SEED: u64 = 20_250_301;

/// Runs an RSC-1-like simulation at `1/divisor` scale for `days`.
pub fn run_rsc1(divisor: u32, days: u64, seed: u64) -> TelemetryStore {
    run(SimConfig::rsc1(), divisor, days, seed)
}

/// Runs an RSC-2-like simulation at `1/divisor` scale for `days`.
pub fn run_rsc2(divisor: u32, days: u64, seed: u64) -> TelemetryStore {
    run(SimConfig::rsc2(), divisor, days, seed)
}

fn run(config: SimConfig, divisor: u32, days: u64, seed: u64) -> TelemetryStore {
    let config = if divisor > 1 {
        config.scaled_down(divisor)
    } else {
        config
    };
    let mut sim = ClusterSim::new(config, seed);
    sim.run(SimDuration::from_days(days));
    sim.into_telemetry()
}

/// Where figure CSVs land.
pub fn figures_dir() -> PathBuf {
    PathBuf::from("target/figures")
}

/// Writes a figure CSV and reports the path.
pub fn save_csv<S: AsRef<str>>(name: &str, header: &[&str], rows: Vec<Vec<S>>) {
    let path = figures_dir().join(name);
    match rsc_telemetry::csv::write_csv_file(&path, header, rows) {
        Ok(()) => println!("\n[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Formats a fraction as a percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x == 0.0 {
        "0%".to_string()
    } else if x < 0.001 {
        format!("{:.3}%", x * 100.0)
    } else if x < 0.10 {
        format!("{:.2}%", x * 100.0)
    } else {
        format!("{:.1}%", x * 100.0)
    }
}

/// A fixed-width ASCII bar for quick terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Prints a figure banner.
pub fn banner(id: &str, title: &str, scale_note: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("  ({scale_note})");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0), "0%");
        assert_eq!(pct(0.0005), "0.050%");
        assert_eq!(pct(0.05), "5.00%");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn small_run_produces_telemetry() {
        let t = run_rsc1(32, 2, 1);
        assert!(!t.jobs().is_empty());
    }
}
