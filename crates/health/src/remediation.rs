//! Repair workflows: how long a node stays in remediation.
//!
//! Transient faults (link flaps, driver wedges) clear with a reset on the
//! order of an hour or two; permanent faults open a vendor ticket and hold
//! the node for days (paper §II-E distinguishes the two classes).

use serde::{Deserialize, Serialize};

use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimDuration;

/// Lognormal repair-duration model, split by fault permanence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairPolicy {
    /// Median repair time for transient faults.
    pub transient_median: SimDuration,
    /// Lognormal sigma for transient repairs.
    pub transient_sigma: f64,
    /// Median repair time for permanent faults (vendor ticket).
    pub permanent_median: SimDuration,
    /// Lognormal sigma for permanent repairs.
    pub permanent_sigma: f64,
}

impl RepairPolicy {
    /// The default RSC-like policy: transient resets with a 90-minute
    /// median, vendor repairs with a 3-day median.
    pub fn rsc_default() -> Self {
        RepairPolicy {
            transient_median: SimDuration::from_mins(90),
            transient_sigma: 0.6,
            permanent_median: SimDuration::from_days(3),
            permanent_sigma: 0.7,
        }
    }

    /// An idealized instant-repair policy (for ablations).
    pub fn instant() -> Self {
        RepairPolicy {
            transient_median: SimDuration::from_secs(1),
            transient_sigma: 0.0,
            permanent_median: SimDuration::from_secs(1),
            permanent_sigma: 0.0,
        }
    }

    /// Samples a repair duration.
    pub fn sample(&self, permanent: bool, rng: &mut SimRng) -> SimDuration {
        let (median, sigma) = if permanent {
            (self.permanent_median, self.permanent_sigma)
        } else {
            (self.transient_median, self.transient_sigma)
        };
        if sigma == 0.0 {
            return median;
        }
        let secs = rng.lognormal((median.as_secs().max(1) as f64).ln(), sigma);
        SimDuration::from_secs_f64(secs)
    }
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy::rsc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_repairs_take_longer() {
        let policy = RepairPolicy::rsc_default();
        let mut rng = SimRng::seed_from(1);
        let t_mean: f64 = (0..2000)
            .map(|_| policy.sample(false, &mut rng).as_hours())
            .sum::<f64>()
            / 2000.0;
        let p_mean: f64 = (0..2000)
            .map(|_| policy.sample(true, &mut rng).as_hours())
            .sum::<f64>()
            / 2000.0;
        assert!(p_mean > 10.0 * t_mean, "t={t_mean} p={p_mean}");
    }

    #[test]
    fn transient_median_near_90_minutes() {
        let policy = RepairPolicy::rsc_default();
        let mut rng = SimRng::seed_from(2);
        let mut samples: Vec<f64> = (0..4001)
            .map(|_| policy.sample(false, &mut rng).as_mins())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 90.0).abs() < 8.0, "median={median}");
    }

    #[test]
    fn instant_policy_is_deterministic() {
        let policy = RepairPolicy::instant();
        let mut rng = SimRng::seed_from(3);
        assert_eq!(policy.sample(true, &mut rng), SimDuration::from_secs(1));
        assert_eq!(policy.sample(false, &mut rng), SimDuration::from_secs(1));
    }
}
