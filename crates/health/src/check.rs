//! The health-check catalog.
//!
//! Checks run on every node every five minutes (paper §II-A). Each check
//! watches a family of raw signals, has a severity — high-severity failures
//! remove the node and reschedule its jobs *immediately*; low-severity ones
//! drain the node after the current job — and a rollout date, because checks
//! were introduced over the measurement year as new failure modes were
//! discovered (Fig. 5's annotated vertical lines).

use std::fmt;

use serde::{Deserialize, Serialize};

use rsc_failure::modes::Severity;
use rsc_failure::signals::SignalKind;
use rsc_failure::taxonomy::FailureSymptom;

/// The checks deployed on the RSC clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CheckKind {
    /// GPU accessibility / XID 79 ("GPU not accessible").
    GpuAccessible,
    /// Uncorrectable GPU ECC and row-remap failures.
    GpuMemory,
    /// NVLink errors.
    NvLink,
    /// GSP timeout / driver fault check.
    GpuDriver,
    /// PCIe AER error check.
    PcieLink,
    /// Backend InfiniBand link health.
    IbLink,
    /// Frontend Ethernet link health.
    EthLink,
    /// Required filesystem mountpoints present and responsive.
    FsMount,
    /// Host DRAM uncorrectable error check.
    HostMemory,
    /// Local block-device errors.
    BlockDevice,
    /// Host service status (scheduler daemon, container runtime).
    Services,
    /// IPMI critical-interrupt log scraping.
    Ipmi,
}

impl CheckKind {
    /// All checks, in a stable report order.
    pub const ALL: [CheckKind; 12] = [
        CheckKind::GpuAccessible,
        CheckKind::GpuMemory,
        CheckKind::NvLink,
        CheckKind::GpuDriver,
        CheckKind::PcieLink,
        CheckKind::IbLink,
        CheckKind::EthLink,
        CheckKind::FsMount,
        CheckKind::HostMemory,
        CheckKind::BlockDevice,
        CheckKind::Services,
        CheckKind::Ipmi,
    ];

    /// Whether this check fires on the given raw signal.
    pub fn detects(self, signal: SignalKind) -> bool {
        use rsc_cluster::gpu::XidError::*;
        match self {
            CheckKind::GpuAccessible => matches!(signal, SignalKind::Xid(FallenOffBus)),
            CheckKind::GpuMemory => {
                matches!(
                    signal,
                    SignalKind::Xid(DoubleBitEcc) | SignalKind::Xid(RowRemapFailure)
                )
            }
            CheckKind::NvLink => matches!(signal, SignalKind::Xid(NvlinkError)),
            CheckKind::GpuDriver => {
                matches!(
                    signal,
                    SignalKind::Xid(GspTimeout) | SignalKind::Xid(Other(_))
                )
            }
            CheckKind::PcieLink => matches!(signal, SignalKind::PcieError),
            CheckKind::IbLink => matches!(signal, SignalKind::IbLinkError),
            CheckKind::EthLink => matches!(signal, SignalKind::EthLinkError),
            CheckKind::FsMount => matches!(signal, SignalKind::FsMountMissing),
            CheckKind::HostMemory => matches!(signal, SignalKind::MainMemoryError),
            CheckKind::BlockDevice => matches!(signal, SignalKind::BlockDeviceError),
            CheckKind::Services => matches!(signal, SignalKind::ServiceFailure),
            CheckKind::Ipmi => matches!(signal, SignalKind::IpmiCriticalInterrupt),
        }
    }

    /// Severity class of this check (paper §II-C's two-tier handling).
    pub fn severity(self) -> Severity {
        match self {
            CheckKind::GpuAccessible
            | CheckKind::GpuMemory
            | CheckKind::NvLink
            | CheckKind::PcieLink
            | CheckKind::IbLink
            | CheckKind::FsMount
            | CheckKind::HostMemory
            | CheckKind::BlockDevice => Severity::High,
            CheckKind::GpuDriver | CheckKind::EthLink | CheckKind::Services | CheckKind::Ipmi => {
                Severity::Low
            }
        }
    }

    /// The failure symptom a firing of this check most directly suggests
    /// (used as the *proximal* attribution before differential diagnosis).
    pub fn symptom(self) -> FailureSymptom {
        match self {
            CheckKind::GpuAccessible => FailureSymptom::GpuUnavailable,
            CheckKind::GpuMemory => FailureSymptom::GpuMemoryError,
            CheckKind::NvLink => FailureSymptom::GpuNvlinkError,
            CheckKind::GpuDriver => FailureSymptom::GpuDriverFirmwareError,
            CheckKind::PcieLink => FailureSymptom::PcieError,
            CheckKind::IbLink => FailureSymptom::InfinibandLink,
            CheckKind::EthLink => FailureSymptom::EthlinkError,
            CheckKind::FsMount => FailureSymptom::FilesystemMount,
            CheckKind::HostMemory => FailureSymptom::MainMemoryError,
            CheckKind::BlockDevice => FailureSymptom::FilesystemMount,
            CheckKind::Services => FailureSymptom::SystemService,
            CheckKind::Ipmi => FailureSymptom::PcieError,
        }
    }

    /// Short stable label for reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::GpuAccessible => "gpu_accessible",
            CheckKind::GpuMemory => "gpu_memory",
            CheckKind::NvLink => "nvlink",
            CheckKind::GpuDriver => "gpu_driver",
            CheckKind::PcieLink => "pcie_link",
            CheckKind::IbLink => "ib_link",
            CheckKind::EthLink => "eth_link",
            CheckKind::FsMount => "fs_mount",
            CheckKind::HostMemory => "host_memory",
            CheckKind::BlockDevice => "block_device",
            CheckKind::Services => "services",
            CheckKind::Ipmi => "ipmi",
        }
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::gpu::XidError;

    #[test]
    fn every_observable_signal_has_a_check() {
        let signals = [
            SignalKind::Xid(XidError::FallenOffBus),
            SignalKind::Xid(XidError::DoubleBitEcc),
            SignalKind::Xid(XidError::RowRemapFailure),
            SignalKind::Xid(XidError::NvlinkError),
            SignalKind::Xid(XidError::GspTimeout),
            SignalKind::PcieError,
            SignalKind::IpmiCriticalInterrupt,
            SignalKind::IbLinkError,
            SignalKind::EthLinkError,
            SignalKind::FsMountMissing,
            SignalKind::MainMemoryError,
            SignalKind::ServiceFailure,
            SignalKind::BlockDeviceError,
        ];
        for s in signals {
            assert!(
                CheckKind::ALL.iter().any(|c| c.detects(s)),
                "no check detects {s}"
            );
        }
    }

    #[test]
    fn unresponsive_is_caught_by_no_check() {
        // Only the scheduler NODE_FAIL heartbeat sees a hung node.
        for c in CheckKind::ALL {
            assert!(!c.detects(SignalKind::NodeUnresponsive), "{c}");
        }
    }

    #[test]
    fn paper_high_severity_set() {
        use rsc_failure::modes::Severity::*;
        // §II-C: GPU inaccessible, NVLink, uncorrectable ECC / row-remap,
        // PCI or IB link errors, block devices, missing mountpoints → High.
        assert_eq!(CheckKind::GpuAccessible.severity(), High);
        assert_eq!(CheckKind::NvLink.severity(), High);
        assert_eq!(CheckKind::GpuMemory.severity(), High);
        assert_eq!(CheckKind::PcieLink.severity(), High);
        assert_eq!(CheckKind::IbLink.severity(), High);
        assert_eq!(CheckKind::BlockDevice.severity(), High);
        assert_eq!(CheckKind::FsMount.severity(), High);
        assert_eq!(CheckKind::Services.severity(), Low);
        assert_eq!(CheckKind::Ipmi.severity(), Low);
    }

    #[test]
    fn overlapping_coverage_exists() {
        // A PCIe fault can raise signals caught by three different checks —
        // the paper's defense-in-depth property.
        let caught: Vec<CheckKind> = CheckKind::ALL
            .iter()
            .copied()
            .filter(|c| {
                c.detects(SignalKind::PcieError)
                    || c.detects(SignalKind::Xid(XidError::FallenOffBus))
                    || c.detects(SignalKind::IpmiCriticalInterrupt)
            })
            .collect();
        assert!(caught.len() >= 3, "{caught:?}");
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = CheckKind::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CheckKind::ALL.len());
    }
}
