//! Fallible node recovery: the remediation escalation ladder, probation
//! gating, and quarantine.
//!
//! The paper's recovery story (§II-E) assumes repairs succeed; real repair
//! shops work an *escalation ladder* — soft reset → reboot → firmware
//! reflash / GPU swap → vendor ticket — where each rung succeeds only with
//! some probability, retries back off, and a node that churns through its
//! budget is written off (quarantined). A node that does come back first
//! serves a probation window running health checks before re-admission;
//! failing probation sends it back down the ladder.
//!
//! [`NodeLifecycle`] is the per-node state machine; [`RemediationPolicy`]
//! parameterizes it. The driver in `rsc-sim` owns the clock and the event
//! queue — this module only decides *what happens next*, so the machine is
//! small enough to property-test exhaustively (no node is ever stuck,
//! backoff is monotone, quarantine is absorbing).

use serde::{Deserialize, Serialize};

use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimDuration;

/// One rung of the repair escalation ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RepairRung {
    /// Soft reset: driver reload / GPU reset, minutes.
    SoftReset,
    /// Full reboot and re-image, under an hour.
    Reboot,
    /// Firmware reflash or GPU swap by a datacenter tech, hours.
    HardwareSwap,
    /// Vendor RMA ticket, days.
    VendorTicket,
}

impl RepairRung {
    /// All rungs, cheapest first.
    pub const ALL: [RepairRung; 4] = [
        RepairRung::SoftReset,
        RepairRung::Reboot,
        RepairRung::HardwareSwap,
        RepairRung::VendorTicket,
    ];

    /// The next (more drastic) rung, or `None` at the top of the ladder.
    pub fn next(self) -> Option<RepairRung> {
        match self {
            RepairRung::SoftReset => Some(RepairRung::Reboot),
            RepairRung::Reboot => Some(RepairRung::HardwareSwap),
            RepairRung::HardwareSwap => Some(RepairRung::VendorTicket),
            RepairRung::VendorTicket => None,
        }
    }

    /// Index into per-rung policy tables.
    pub fn index(self) -> usize {
        match self {
            RepairRung::SoftReset => 0,
            RepairRung::Reboot => 1,
            RepairRung::HardwareSwap => 2,
            RepairRung::VendorTicket => 3,
        }
    }

    /// Short stable label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            RepairRung::SoftReset => "soft_reset",
            RepairRung::Reboot => "reboot",
            RepairRung::HardwareSwap => "hardware_swap",
            RepairRung::VendorTicket => "vendor_ticket",
        }
    }
}

/// Per-rung repair behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RungPolicy {
    /// Probability one attempt at this rung fixes the node.
    pub success_prob: f64,
    /// Median attempt duration (lognormal).
    pub median: SimDuration,
    /// Lognormal sigma for the attempt duration (0 = deterministic).
    pub sigma: f64,
    /// Attempts at this rung before escalating to the next.
    pub max_attempts: u32,
}

/// Probation gating for nodes returning from repair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbationPolicy {
    /// Whether returning nodes serve a probation window at all.
    pub enabled: bool,
    /// How long a returning node runs health checks before re-admission.
    pub window: SimDuration,
    /// Probability the probation health checks fail anyway (flaky return).
    pub fail_prob: f64,
}

impl ProbationPolicy {
    /// Probation turned off: repaired nodes re-admit immediately.
    pub fn disabled() -> Self {
        ProbationPolicy {
            enabled: false,
            window: SimDuration::ZERO,
            fail_prob: 0.0,
        }
    }
}

/// Who ordered a quarantine. Operator quarantines (the repair ladder's
/// budget exhaustion and the `rsc_default` write-off) are absorbing; only
/// a quarantine the *control plane* initiated may later be released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineOrigin {
    /// Budget exhaustion on the repair ladder (or any non-controller
    /// write-off). Absorbing forever.
    Operator,
    /// A closed-loop controller pulled the node preemptively. Eligible
    /// for controlled release under a [`ReleasePolicy`].
    Controller,
}

/// Controlled release of controller-initiated quarantines: after
/// `clean_windows` consecutive clean probation-style windows the node may
/// return to service. A dirty window (the node's symptoms recur with
/// probability `flunk_prob`) resets the streak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleasePolicy {
    /// Consecutive clean windows required before release.
    pub clean_windows: u32,
    /// Length of one observation window.
    pub window: SimDuration,
    /// Probability a window observes recurring symptoms (streak resets).
    pub flunk_prob: f64,
}

impl ReleasePolicy {
    /// Defaults: three clean 2-day windows, 10% of windows dirty.
    pub fn rsc_default() -> Self {
        ReleasePolicy {
            clean_windows: 3,
            window: SimDuration::from_days(2),
            flunk_prob: 0.10,
        }
    }
}

/// What resolving one controlled-release window did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// Enough consecutive clean windows: the node returns to service.
    Released,
    /// The window was clean but the streak is not yet long enough.
    Progress {
        /// Clean windows accumulated so far.
        completed: u32,
    },
    /// Symptoms recurred: the streak resets to zero.
    Reset,
    /// Not eligible: the node is not quarantined, or the quarantine is
    /// operator-initiated (absorbing). No RNG is drawn.
    Absorbing,
}

/// Full policy for the fallible remediation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemediationPolicy {
    /// Ladder rung policies, indexed by [`RepairRung::index`].
    pub rungs: [RungPolicy; 4],
    /// Exponential backoff base applied per prior failed attempt (≥ 1).
    pub backoff_base: f64,
    /// Ceiling on the backoff multiplier. Without a cap, late attempts at
    /// the vendor-ticket rung (days-long medians) would outlast any
    /// realistic measurement horizon and the budget could never exhaust.
    pub max_backoff: f64,
    /// Total failed attempts (including failed probations) across the
    /// whole ladder before the node is quarantined.
    pub max_total_attempts: u32,
    /// Probation gating for returning nodes.
    pub probation: ProbationPolicy,
}

impl RemediationPolicy {
    /// The legacy idealization: every repair succeeds on the first try and
    /// returning nodes re-admit immediately. With this policy the driver
    /// takes the exact pre-ladder code path, so simulated telemetry is
    /// byte-identical to runs that predate the lifecycle machinery.
    pub fn infallible() -> Self {
        let sure = |median: SimDuration| RungPolicy {
            success_prob: 1.0,
            median,
            sigma: 0.0,
            max_attempts: 1,
        };
        RemediationPolicy {
            rungs: [
                sure(SimDuration::from_mins(15)),
                sure(SimDuration::from_mins(45)),
                sure(SimDuration::from_hours(8)),
                sure(SimDuration::from_days(3)),
            ],
            backoff_base: 1.0,
            max_backoff: 1.0,
            max_total_attempts: u32::MAX,
            probation: ProbationPolicy::disabled(),
        }
    }

    /// The RSC-like fallible ladder: cheap rungs often fail (a soft reset
    /// rarely fixes real hardware), drastic rungs usually work; two tries
    /// per rung, 1.5× backoff capped at 4×, a budget of one full ladder
    /// walk (9 attempts), and a 6-hour probation window that ~5% of
    /// returning nodes flunk.
    pub fn rsc_default() -> Self {
        let rung = |p: f64, median: SimDuration, sigma: f64, tries: u32| RungPolicy {
            success_prob: p,
            median,
            sigma,
            max_attempts: tries,
        };
        RemediationPolicy {
            rungs: [
                rung(0.55, SimDuration::from_mins(15), 0.4, 2),
                rung(0.65, SimDuration::from_mins(45), 0.5, 2),
                rung(0.80, SimDuration::from_hours(8), 0.6, 2),
                rung(0.90, SimDuration::from_days(3), 0.7, 3),
            ],
            backoff_base: 1.5,
            max_backoff: 4.0,
            max_total_attempts: 9,
            probation: ProbationPolicy {
                enabled: true,
                window: SimDuration::from_hours(6),
                fail_prob: 0.05,
            },
        }
    }

    /// A copy with every rung's failure probability forced to `p` (i.e.
    /// success probability `1 - p`) — the single knob the
    /// `ablation_remediation` sweep turns.
    pub fn with_failure_prob(mut self, p: f64) -> Self {
        let success = (1.0 - p).clamp(0.0, 1.0);
        for rung in &mut self.rungs {
            rung.success_prob = success;
        }
        self
    }

    /// Whether this policy is the legacy idealization: first attempts
    /// always succeed and there is no probation. The driver uses this to
    /// take the byte-identical pre-ladder path.
    pub fn is_infallible(&self) -> bool {
        self.rungs.iter().all(|r| r.success_prob >= 1.0) && !self.probation.enabled
    }

    /// The rung policy for a rung.
    pub fn rung(&self, rung: RepairRung) -> &RungPolicy {
        &self.rungs[rung.index()]
    }
}

impl Default for RemediationPolicy {
    fn default() -> Self {
        RemediationPolicy::infallible()
    }
}

/// Where a node currently is in its recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleState {
    /// Healthy and schedulable.
    InService,
    /// Out of service; a repair attempt at `rung` is underway.
    InRepair {
        /// Current ladder rung.
        rung: RepairRung,
        /// Failed attempts so far at this rung.
        attempt_in_rung: u32,
    },
    /// Repair reported success; the node is running probation checks.
    Probation {
        /// The rung whose repair claimed success.
        rung: RepairRung,
    },
    /// Written off after exhausting the attempt budget. Absorbing.
    Quarantined,
}

/// What a resolved repair attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The rung fixed the node. `probation` says whether it must now serve
    /// a probation window before re-admission.
    Succeeded {
        /// Rung that succeeded.
        rung: RepairRung,
        /// Whether probation gating applies.
        probation: bool,
    },
    /// The attempt failed; the machine stays in repair.
    Failed {
        /// Rung that failed.
        rung: RepairRung,
        /// `Some(next)` when the failure exhausted the rung's attempts and
        /// escalated the ladder.
        escalated_to: Option<RepairRung>,
    },
    /// The failure exhausted the total budget: the node is quarantined.
    Quarantined,
}

/// What resolving a probation window did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbationOutcome {
    /// Checks stayed green: the node re-admits to service.
    Passed,
    /// Checks failed: back down the ladder (escalated past the rung that
    /// claimed success).
    Failed {
        /// The rung the node re-enters repair at.
        rung: RepairRung,
    },
    /// The failed probation exhausted the budget: quarantined.
    Quarantined,
}

/// Per-node recovery state machine.
///
/// The driver owns time; this type only transitions on the driver's
/// resolve calls and reports what to do next. All randomness comes in via
/// the caller's [`SimRng`], keeping the machine deterministic and
/// replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLifecycle {
    state: LifecycleState,
    /// Failed attempts (repairs + probations) since entering repair.
    total_failures: u32,
    /// Who ordered the quarantine, once quarantined. Ladder-driven
    /// quarantines are always [`QuarantineOrigin::Operator`].
    quarantine_origin: QuarantineOrigin,
    /// Consecutive clean controlled-release windows while quarantined.
    clean_release_windows: u32,
}

impl NodeLifecycle {
    /// Enters repair: transient-looking faults start at the bottom of the
    /// ladder, known-permanent damage goes straight to the hardware rung.
    pub fn begin(permanent: bool) -> Self {
        let rung = if permanent {
            RepairRung::HardwareSwap
        } else {
            RepairRung::SoftReset
        };
        NodeLifecycle {
            state: LifecycleState::InRepair {
                rung,
                attempt_in_rung: 0,
            },
            total_failures: 0,
            quarantine_origin: QuarantineOrigin::Operator,
            clean_release_windows: 0,
        }
    }

    /// Enters quarantine directly, recording who ordered it. The control
    /// plane uses this for preemptive lemon quarantines; such nodes are
    /// eligible for [`Self::resolve_release_window`], while operator
    /// quarantines stay absorbing exactly as before.
    pub fn begin_quarantined(origin: QuarantineOrigin) -> Self {
        NodeLifecycle {
            state: LifecycleState::Quarantined,
            total_failures: 0,
            quarantine_origin: origin,
            clean_release_windows: 0,
        }
    }

    /// Who ordered the quarantine (meaningful only while quarantined).
    pub fn quarantine_origin(&self) -> QuarantineOrigin {
        self.quarantine_origin
    }

    /// Resolves one controlled-release observation window. Only a
    /// controller-initiated quarantine ever progresses: operator
    /// quarantines return [`ReleaseOutcome::Absorbing`] without drawing
    /// from the RNG, so the ladder's write-offs stay permanent.
    pub fn resolve_release_window(
        &mut self,
        policy: &ReleasePolicy,
        rng: &mut SimRng,
    ) -> ReleaseOutcome {
        if self.state != LifecycleState::Quarantined
            || self.quarantine_origin != QuarantineOrigin::Controller
        {
            return ReleaseOutcome::Absorbing;
        }
        if rng.chance(policy.flunk_prob) {
            self.clean_release_windows = 0;
            return ReleaseOutcome::Reset;
        }
        self.clean_release_windows += 1;
        if self.clean_release_windows >= policy.clean_windows.max(1) {
            self.state = LifecycleState::InService;
            self.clean_release_windows = 0;
            return ReleaseOutcome::Released;
        }
        ReleaseOutcome::Progress {
            completed: self.clean_release_windows,
        }
    }

    /// Current state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Failed attempts so far (repairs plus flunked probations).
    pub fn total_failures(&self) -> u32 {
        self.total_failures
    }

    /// Whether the node has been written off.
    pub fn is_quarantined(&self) -> bool {
        self.state == LifecycleState::Quarantined
    }

    /// Backoff multiplier for the *pending* attempt:
    /// `backoff_base ^ total_failures`, clamped to the policy's
    /// `max_backoff` ceiling. Monotone non-decreasing over a node's
    /// episode whenever `backoff_base ≥ 1` (clamping preserves
    /// monotonicity).
    pub fn backoff_multiplier(&self, policy: &RemediationPolicy) -> f64 {
        policy
            .backoff_base
            .max(1.0)
            .powi(self.total_failures as i32)
            .min(policy.max_backoff.max(1.0))
    }

    /// Samples the duration of the pending repair attempt: the rung's
    /// lognormal base duration scaled by the backoff multiplier. Returns
    /// zero when not in repair (quarantined or in service — the driver
    /// should not be scheduling attempts then).
    pub fn attempt_duration(&self, policy: &RemediationPolicy, rng: &mut SimRng) -> SimDuration {
        let LifecycleState::InRepair { rung, .. } = self.state else {
            return SimDuration::ZERO;
        };
        let rp = policy.rung(rung);
        let base = if rp.sigma == 0.0 {
            rp.median
        } else {
            let secs = rng.lognormal((rp.median.as_secs().max(1) as f64).ln(), rp.sigma);
            SimDuration::from_secs_f64(secs)
        };
        base.mul_f64(self.backoff_multiplier(policy))
    }

    /// Resolves the pending repair attempt: samples rung success and
    /// advances the machine. On a quarantined machine this is a no-op
    /// returning [`AttemptOutcome::Quarantined`] (quarantine is absorbing).
    pub fn resolve_attempt(
        &mut self,
        policy: &RemediationPolicy,
        rng: &mut SimRng,
    ) -> AttemptOutcome {
        let LifecycleState::InRepair {
            rung,
            attempt_in_rung,
        } = self.state
        else {
            return match self.state {
                LifecycleState::Quarantined => AttemptOutcome::Quarantined,
                _ => AttemptOutcome::Succeeded {
                    rung: RepairRung::SoftReset,
                    probation: false,
                },
            };
        };
        if rng.chance(policy.rung(rung).success_prob) {
            if policy.probation.enabled {
                self.state = LifecycleState::Probation { rung };
                AttemptOutcome::Succeeded {
                    rung,
                    probation: true,
                }
            } else {
                self.state = LifecycleState::InService;
                AttemptOutcome::Succeeded {
                    rung,
                    probation: false,
                }
            }
        } else {
            self.total_failures += 1;
            if self.total_failures >= policy.max_total_attempts {
                self.state = LifecycleState::Quarantined;
                return AttemptOutcome::Quarantined;
            }
            let tries = attempt_in_rung + 1;
            if tries >= policy.rung(rung).max_attempts {
                // Exhausted this rung: escalate, or keep hammering the top
                // rung until the budget quarantines the node.
                match rung.next() {
                    Some(next) => {
                        self.state = LifecycleState::InRepair {
                            rung: next,
                            attempt_in_rung: 0,
                        };
                        AttemptOutcome::Failed {
                            rung,
                            escalated_to: Some(next),
                        }
                    }
                    None => {
                        self.state = LifecycleState::InRepair {
                            rung,
                            attempt_in_rung: tries,
                        };
                        AttemptOutcome::Failed {
                            rung,
                            escalated_to: None,
                        }
                    }
                }
            } else {
                self.state = LifecycleState::InRepair {
                    rung,
                    attempt_in_rung: tries,
                };
                AttemptOutcome::Failed {
                    rung,
                    escalated_to: None,
                }
            }
        }
    }

    /// Resolves the probation window: the node either re-admits or goes
    /// back down the ladder (one rung past the repair that claimed
    /// success — it evidently didn't hold). No-op on a quarantined node.
    pub fn resolve_probation(
        &mut self,
        policy: &RemediationPolicy,
        rng: &mut SimRng,
    ) -> ProbationOutcome {
        let LifecycleState::Probation { rung } = self.state else {
            return match self.state {
                LifecycleState::Quarantined => ProbationOutcome::Quarantined,
                _ => ProbationOutcome::Passed,
            };
        };
        if rng.chance(policy.probation.fail_prob) {
            self.total_failures += 1;
            if self.total_failures >= policy.max_total_attempts {
                self.state = LifecycleState::Quarantined;
                return ProbationOutcome::Quarantined;
            }
            let next = rung.next().unwrap_or(RepairRung::VendorTicket);
            self.state = LifecycleState::InRepair {
                rung: next,
                attempt_in_rung: 0,
            };
            ProbationOutcome::Failed { rung: next }
        } else {
            self.state = LifecycleState::InService;
            ProbationOutcome::Passed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infallible_policy_succeeds_first_try_without_probation() {
        let policy = RemediationPolicy::infallible();
        assert!(policy.is_infallible());
        let mut rng = SimRng::seed_from(1);
        let mut lc = NodeLifecycle::begin(false);
        match lc.resolve_attempt(&policy, &mut rng) {
            AttemptOutcome::Succeeded { probation, .. } => assert!(!probation),
            other => panic!("expected success, got {other:?}"),
        }
        assert_eq!(lc.state(), LifecycleState::InService);
    }

    #[test]
    fn rsc_default_is_fallible() {
        assert!(!RemediationPolicy::rsc_default().is_infallible());
        // Zero failure probability alone is not infallible while probation
        // still gates re-admission.
        let p = RemediationPolicy::rsc_default().with_failure_prob(0.0);
        assert!(!p.is_infallible());
        assert!(p.rungs.iter().all(|r| r.success_prob >= 1.0));
    }

    #[test]
    fn permanent_faults_start_at_hardware_rung() {
        let lc = NodeLifecycle::begin(true);
        assert_eq!(
            lc.state(),
            LifecycleState::InRepair {
                rung: RepairRung::HardwareSwap,
                attempt_in_rung: 0
            }
        );
    }

    #[test]
    fn failures_escalate_up_the_ladder() {
        let policy = RemediationPolicy::rsc_default().with_failure_prob(1.0);
        let mut rng = SimRng::seed_from(3);
        let mut lc = NodeLifecycle::begin(false);
        let mut seen = Vec::new();
        loop {
            match lc.resolve_attempt(&policy, &mut rng) {
                AttemptOutcome::Failed {
                    escalated_to: Some(next),
                    ..
                } => seen.push(next),
                AttemptOutcome::Failed { .. } => {}
                AttemptOutcome::Quarantined => break,
                AttemptOutcome::Succeeded { .. } => panic!("cannot succeed at p=1"),
            }
        }
        assert_eq!(
            seen,
            vec![
                RepairRung::Reboot,
                RepairRung::HardwareSwap,
                RepairRung::VendorTicket
            ]
        );
        assert!(lc.is_quarantined());
    }

    #[test]
    fn budget_exhaustion_quarantines_and_is_absorbing() {
        let mut policy = RemediationPolicy::rsc_default().with_failure_prob(1.0);
        policy.max_total_attempts = 3;
        let mut rng = SimRng::seed_from(4);
        let mut lc = NodeLifecycle::begin(false);
        for _ in 0..2 {
            assert!(matches!(
                lc.resolve_attempt(&policy, &mut rng),
                AttemptOutcome::Failed { .. }
            ));
        }
        assert_eq!(
            lc.resolve_attempt(&policy, &mut rng),
            AttemptOutcome::Quarantined
        );
        // Absorbing: further resolutions change nothing.
        assert_eq!(
            lc.resolve_attempt(&policy, &mut rng),
            AttemptOutcome::Quarantined
        );
        assert_eq!(
            lc.resolve_probation(&policy, &mut rng),
            ProbationOutcome::Quarantined
        );
        assert!(lc.is_quarantined());
    }

    #[test]
    fn probation_pass_readmits_fail_goes_back_down_ladder() {
        let mut policy = RemediationPolicy::rsc_default().with_failure_prob(0.0);
        let mut rng = SimRng::seed_from(5);

        policy.probation.fail_prob = 0.0;
        let mut lc = NodeLifecycle::begin(false);
        assert!(matches!(
            lc.resolve_attempt(&policy, &mut rng),
            AttemptOutcome::Succeeded {
                probation: true,
                ..
            }
        ));
        assert_eq!(
            lc.resolve_probation(&policy, &mut rng),
            ProbationOutcome::Passed
        );
        assert_eq!(lc.state(), LifecycleState::InService);

        policy.probation.fail_prob = 1.0;
        let mut lc = NodeLifecycle::begin(false);
        lc.resolve_attempt(&policy, &mut rng);
        match lc.resolve_probation(&policy, &mut rng) {
            ProbationOutcome::Failed { rung } => assert_eq!(rung, RepairRung::Reboot),
            other => panic!("expected probation failure, got {other:?}"),
        }
        assert!(matches!(
            lc.state(),
            LifecycleState::InRepair {
                rung: RepairRung::Reboot,
                ..
            }
        ));
    }

    #[test]
    fn backoff_grows_with_failures() {
        let policy = RemediationPolicy::rsc_default().with_failure_prob(1.0);
        let mut rng = SimRng::seed_from(6);
        let mut lc = NodeLifecycle::begin(false);
        let mut last = 0.0f64;
        while !lc.is_quarantined() {
            let m = lc.backoff_multiplier(&policy);
            assert!(m >= last, "backoff shrank: {m} < {last}");
            last = m;
            lc.resolve_attempt(&policy, &mut rng);
        }
        assert!(last > 1.0);
    }

    #[test]
    fn controller_quarantine_releases_after_clean_windows() {
        let policy = ReleasePolicy {
            clean_windows: 3,
            window: SimDuration::from_days(2),
            flunk_prob: 0.0,
        };
        let mut rng = SimRng::seed_from(8);
        let mut lc = NodeLifecycle::begin_quarantined(QuarantineOrigin::Controller);
        assert!(lc.is_quarantined());
        assert_eq!(lc.quarantine_origin(), QuarantineOrigin::Controller);
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Progress { completed: 1 }
        );
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Progress { completed: 2 }
        );
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Released
        );
        assert_eq!(lc.state(), LifecycleState::InService);
    }

    #[test]
    fn dirty_release_window_resets_the_streak() {
        let mut policy = ReleasePolicy::rsc_default();
        policy.clean_windows = 2;
        policy.flunk_prob = 1.0;
        let mut rng = SimRng::seed_from(9);
        let mut lc = NodeLifecycle::begin_quarantined(QuarantineOrigin::Controller);
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Reset
        );
        assert!(lc.is_quarantined());
        policy.flunk_prob = 0.0;
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Progress { completed: 1 }
        );
        assert_eq!(
            lc.resolve_release_window(&policy, &mut rng),
            ReleaseOutcome::Released
        );
    }

    #[test]
    fn operator_quarantine_stays_absorbing_under_release_policy() {
        let policy = ReleasePolicy {
            clean_windows: 1,
            window: SimDuration::from_days(1),
            flunk_prob: 0.0,
        };
        let mut rng_a = SimRng::seed_from(10);
        let mut rng_b = SimRng::seed_from(10);

        // A ladder-driven quarantine never releases, no matter how many
        // windows resolve...
        let mut ladder = RemediationPolicy::rsc_default().with_failure_prob(1.0);
        ladder.max_total_attempts = 1;
        let mut lc = NodeLifecycle::begin(false);
        assert_eq!(
            lc.resolve_attempt(&ladder, &mut rng_a),
            AttemptOutcome::Quarantined
        );
        for _ in 0..5 {
            assert_eq!(
                lc.resolve_release_window(&policy, &mut rng_a),
                ReleaseOutcome::Absorbing
            );
        }
        assert!(lc.is_quarantined());

        // ...and absorbing resolutions draw nothing from the RNG.
        lc.resolve_attempt(&ladder, &mut rng_b);
        assert_eq!(rng_a.below(1 << 30), rng_b.below(1 << 30));
    }

    #[test]
    fn attempt_durations_scale_with_backoff() {
        let mut policy = RemediationPolicy::rsc_default().with_failure_prob(1.0);
        for rung in &mut policy.rungs {
            rung.sigma = 0.0; // deterministic durations isolate the backoff
        }
        let mut rng = SimRng::seed_from(7);
        let mut lc = NodeLifecycle::begin(false);
        let d0 = lc.attempt_duration(&policy, &mut rng);
        assert_eq!(d0, policy.rung(RepairRung::SoftReset).median);
        lc.resolve_attempt(&policy, &mut rng); // fail #1: same rung, backoff 1.5
        let d1 = lc.attempt_duration(&policy, &mut rng);
        assert_eq!(d1, policy.rung(RepairRung::SoftReset).median.mul_f64(1.5));
    }
}
