//! Deployed-check registry with rollout dates and detection quality.
//!
//! Fig. 5 of the paper annotates the dates new health checks were
//! introduced; before a check exists, its failure mode is invisible to the
//! infrastructure (jobs still die, but as unattributed NODE_FAILs). The
//! registry captures per-check rollout time, miss rate, and false-positive
//! rate (calibrated so <1% of successful jobs see a failed check).

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;

use crate::check::CheckKind;

/// Deployment configuration for one check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckConfig {
    /// The check.
    pub kind: CheckKind,
    /// When the check went live on the fleet.
    pub rollout: SimTime,
    /// Probability a relevant signal is missed by the check (flaky
    /// detection, race with the 5-minute sweep, etc.).
    pub miss_rate: f64,
    /// False-positive firings per node-day.
    pub false_positive_rate: f64,
}

/// The set of checks deployed on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckRegistry {
    configs: Vec<CheckConfig>,
    period: rsc_sim_core::time::SimDuration,
}

impl CheckRegistry {
    /// Builds a registry from explicit configs, checking ranges.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` / negative.
    pub fn new(configs: Vec<CheckConfig>) -> Self {
        for c in &configs {
            assert!(
                (0.0..=1.0).contains(&c.miss_rate),
                "bad miss rate for {}",
                c.kind
            );
            assert!(
                c.false_positive_rate >= 0.0 && c.false_positive_rate.is_finite(),
                "bad FP rate for {}",
                c.kind
            );
        }
        CheckRegistry {
            configs,
            period: rsc_sim_core::time::SimDuration::from_mins(5),
        }
    }

    /// The paper-era rollout schedule: most checks live from day 0, the
    /// GPU-driver (GSP) check added around day 45 in response to the driver
    /// regression, and the filesystem-mount check added around day 100
    /// ("after adding a new health check for mounts that were downing
    /// nodes, this became a key failure mode").
    pub fn rsc_default() -> Self {
        let day = |d: u64| SimTime::from_days(d);
        let mk = |kind, rollout| CheckConfig {
            kind,
            rollout,
            miss_rate: 0.05,
            false_positive_rate: 2.0e-4,
        };
        CheckRegistry::new(vec![
            mk(CheckKind::GpuAccessible, day(0)),
            mk(CheckKind::GpuMemory, day(0)),
            mk(CheckKind::NvLink, day(0)),
            mk(CheckKind::GpuDriver, day(45)),
            mk(CheckKind::PcieLink, day(0)),
            mk(CheckKind::IbLink, day(0)),
            mk(CheckKind::EthLink, day(20)),
            mk(CheckKind::FsMount, day(100)),
            mk(CheckKind::HostMemory, day(0)),
            mk(CheckKind::BlockDevice, day(0)),
            mk(CheckKind::Services, day(0)),
            mk(CheckKind::Ipmi, day(60)),
        ])
    }

    /// A registry where every check is live from day 0 with perfect
    /// detection — useful for ablations isolating scheduler effects.
    pub fn ideal() -> Self {
        CheckRegistry::new(
            CheckKind::ALL
                .iter()
                .map(|&kind| CheckConfig {
                    kind,
                    rollout: SimTime::ZERO,
                    miss_rate: 0.0,
                    false_positive_rate: 0.0,
                })
                .collect(),
        )
    }

    /// The 5-minute sweep period.
    pub fn period(&self) -> rsc_sim_core::time::SimDuration {
        self.period
    }

    /// Returns the registry with a different sweep period (for ablations
    /// of the paper's 5-minute default).
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn with_period(mut self, period: rsc_sim_core::time::SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        self.period = period;
        self
    }

    /// All deployed check configs.
    pub fn configs(&self) -> &[CheckConfig] {
        &self.configs
    }

    /// Config for a specific check, if deployed.
    pub fn config(&self, kind: CheckKind) -> Option<&CheckConfig> {
        self.configs.iter().find(|c| c.kind == kind)
    }

    /// Checks that are live at `now`.
    pub fn live_checks(&self, now: SimTime) -> impl Iterator<Item = &CheckConfig> {
        self.configs.iter().filter(move |c| c.rollout <= now)
    }

    /// Rollout annotations for Fig. 5: `(check, rollout time)` for checks
    /// introduced after day 0.
    pub fn rollout_annotations(&self) -> Vec<(CheckKind, SimTime)> {
        let mut anns: Vec<(CheckKind, SimTime)> = self
            .configs
            .iter()
            .filter(|c| c.rollout > SimTime::ZERO)
            .map(|c| (c.kind, c.rollout))
            .collect();
        anns.sort_by_key(|&(_, t)| t);
        anns
    }

    /// Total false-positive rate per node-day across live checks at `now`.
    pub fn total_false_positive_rate(&self, now: SimTime) -> f64 {
        self.live_checks(now).map(|c| c.false_positive_rate).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_registry_has_all_checks() {
        let reg = CheckRegistry::rsc_default();
        assert_eq!(reg.configs().len(), CheckKind::ALL.len());
    }

    #[test]
    fn fs_mount_not_live_early() {
        let reg = CheckRegistry::rsc_default();
        let live_day10: Vec<CheckKind> = reg
            .live_checks(SimTime::from_days(10))
            .map(|c| c.kind)
            .collect();
        assert!(!live_day10.contains(&CheckKind::FsMount));
        assert!(live_day10.contains(&CheckKind::IbLink));
        let live_day200: Vec<CheckKind> = reg
            .live_checks(SimTime::from_days(200))
            .map(|c| c.kind)
            .collect();
        assert!(live_day200.contains(&CheckKind::FsMount));
    }

    #[test]
    fn rollout_annotations_sorted() {
        let reg = CheckRegistry::rsc_default();
        let anns = reg.rollout_annotations();
        assert!(!anns.is_empty());
        for w in anns.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ideal_registry_is_perfect() {
        let reg = CheckRegistry::ideal();
        for c in reg.configs() {
            assert_eq!(c.miss_rate, 0.0);
            assert_eq!(c.false_positive_rate, 0.0);
            assert_eq!(c.rollout, SimTime::ZERO);
        }
        assert_eq!(reg.total_false_positive_rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn fp_rate_grows_with_rollouts() {
        let reg = CheckRegistry::rsc_default();
        let early = reg.total_false_positive_rate(SimTime::from_days(1));
        let late = reg.total_false_positive_rate(SimTime::from_days(200));
        assert!(late > early);
    }

    #[test]
    #[should_panic(expected = "bad miss rate")]
    fn rejects_bad_miss_rate() {
        let _ = CheckRegistry::new(vec![CheckConfig {
            kind: CheckKind::IbLink,
            rollout: SimTime::ZERO,
            miss_rate: 1.5,
            false_positive_rate: 0.0,
        }]);
    }
}
