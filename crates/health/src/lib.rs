#![warn(missing_docs)]

//! Health checks and remediation for the `rsc-reliability` workspace.
//!
//! Implements the paper's first-line defense (§II-C): periodic node health
//! checks with two severity tiers, a rollout timeline that makes new
//! failure modes visible over the measurement year (Fig. 5), calibrated
//! miss and false-positive rates, and repair workflows that hold nodes in
//! remediation until they pass all checks again.
//!
//! # Example
//!
//! ```
//! use rsc_cluster::ids::NodeId;
//! use rsc_failure::signals::{NodeSignal, SignalKind};
//! use rsc_health::monitor::HealthMonitor;
//! use rsc_health::registry::CheckRegistry;
//! use rsc_sim_core::rng::SimRng;
//! use rsc_sim_core::time::SimTime;
//!
//! let mut monitor = HealthMonitor::new(CheckRegistry::ideal(), SimRng::seed_from(1));
//! let signal = NodeSignal {
//!     node: NodeId::new(5),
//!     kind: SignalKind::IbLinkError,
//!     at: SimTime::from_secs(100),
//! };
//! let events = monitor.observe_signal(&signal);
//! assert_eq!(events.len(), 1); // the IB-link check fires at the next sweep
//! ```

pub mod check;
pub mod lifecycle;
pub mod monitor;
pub mod registry;
pub mod remediation;

pub use check::CheckKind;
pub use lifecycle::{
    AttemptOutcome, LifecycleState, NodeLifecycle, ProbationOutcome, ProbationPolicy,
    RemediationPolicy, RepairRung, RungPolicy,
};
pub use monitor::{HealthEvent, HealthMonitor};
pub use registry::{CheckConfig, CheckRegistry};
pub use remediation::RepairPolicy;
