//! Event-driven health monitoring.
//!
//! Conceptually the checks sweep every node every five minutes; simulating
//! that literally would cost `nodes × sweeps` work. Since checks only fire
//! when a signal exists (or spuriously, at a calibrated false-positive
//! rate), we instead process the signal stream directly and round detection
//! times up to the next sweep boundary — observationally equivalent and
//! orders of magnitude cheaper.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_failure::modes::Severity;
use rsc_failure::signals::{NodeSignal, SignalKind};
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::check::CheckKind;
use crate::registry::CheckRegistry;

/// A health-check firing: the unit of evidence in failure attribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthEvent {
    /// Detection time (the sweep boundary at/after the raw signal).
    pub at: SimTime,
    /// The node the check fired on.
    pub node: NodeId,
    /// Which check fired.
    pub check: CheckKind,
    /// The check's severity.
    pub severity: Severity,
    /// The raw signal that triggered the check, if any (false positives
    /// have none).
    pub signal: Option<SignalKind>,
    /// Ground truth: whether this firing was spurious.
    pub false_positive: bool,
}

/// The fleet health monitor.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    registry: CheckRegistry,
    rng: SimRng,
}

impl HealthMonitor {
    /// Creates a monitor with the given deployed checks.
    pub fn new(registry: CheckRegistry, rng: SimRng) -> Self {
        HealthMonitor { registry, rng }
    }

    /// The deployed-check registry.
    pub fn registry(&self) -> &CheckRegistry {
        &self.registry
    }

    /// Processes one raw node signal, returning every check firing it
    /// produces (possibly several — checks deliberately overlap).
    ///
    /// Returns an empty vector when the relevant checks are not yet rolled
    /// out or the detection was missed — the failure then surfaces only
    /// through the scheduler's NODE_FAIL heartbeat, unattributed.
    pub fn observe_signal(&mut self, signal: &NodeSignal) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        self.observe_signal_into(signal, &mut events);
        events
    }

    /// [`Self::observe_signal`] into a caller-owned buffer, so a hot loop
    /// can reuse one allocation across signals. Draws the RNG in exactly
    /// the order `observe_signal` does; the buffer is appended to, not
    /// cleared.
    pub fn observe_signal_into(&mut self, signal: &NodeSignal, out: &mut Vec<HealthEvent>) {
        if signal.kind == SignalKind::NodeUnresponsive {
            // Only the scheduler heartbeat catches a hung node.
            return;
        }
        let detection_at = ceil_to_period(signal.at, self.registry.period());
        // Collect matching live checks first to keep RNG draws ordered.
        let matching: Vec<(CheckKind, f64)> = self
            .registry
            .live_checks(signal.at)
            .filter(|c| c.kind.detects(signal.kind))
            .map(|c| (c.kind, c.miss_rate))
            .collect();
        for (kind, miss_rate) in matching {
            if !self.rng.chance(miss_rate) {
                out.push(HealthEvent {
                    at: detection_at,
                    node: signal.node,
                    check: kind,
                    severity: kind.severity(),
                    signal: Some(signal.kind),
                    false_positive: false,
                });
            }
        }
    }

    /// Samples spurious check firings over `[from, to)` for a fleet of
    /// `num_nodes` nodes, per the registry's calibrated false-positive
    /// rates. Returned events are time-sorted.
    pub fn false_positives_between(
        &mut self,
        from: SimTime,
        to: SimTime,
        num_nodes: u32,
    ) -> Vec<HealthEvent> {
        if to <= from {
            return Vec::new();
        }
        let days = (to - from).as_days();
        // Use the FP rate of checks live at the window start; rollouts are
        // sparse enough that this approximation is invisible in aggregate.
        let live: Vec<CheckKind> = self
            .registry
            .live_checks(from)
            .filter(|c| c.false_positive_rate > 0.0)
            .map(|c| c.kind)
            .collect();
        if live.is_empty() {
            return Vec::new();
        }
        let rate = self.registry.total_false_positive_rate(from);
        let expected = rate * num_nodes as f64 * days;
        let count = self.rng.poisson(expected);
        let mut events: Vec<HealthEvent> = (0..count)
            .map(|_| {
                let offset =
                    SimDuration::from_secs_f64(self.rng.uniform() * (to - from).as_secs() as f64);
                let at = ceil_to_period(from + offset, self.registry.period());
                let node = NodeId::new(self.rng.below(num_nodes as u64) as u32);
                let check = live[self.rng.below(live.len() as u64) as usize];
                HealthEvent {
                    at,
                    node,
                    check,
                    severity: check.severity(),
                    signal: None,
                    false_positive: true,
                }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        events
    }
}

/// Rounds a time up to the next multiple of `period`.
fn ceil_to_period(t: SimTime, period: SimDuration) -> SimTime {
    let p = period.as_secs().max(1);
    let secs = t.as_secs();
    SimTime::from_secs(secs.div_ceil(p) * p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::gpu::XidError;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(CheckRegistry::rsc_default(), SimRng::seed_from(1))
    }

    fn signal(kind: SignalKind, at_secs: u64) -> NodeSignal {
        NodeSignal {
            node: NodeId::new(3),
            kind,
            at: SimTime::from_secs(at_secs),
        }
    }

    #[test]
    fn detection_rounds_up_to_sweep() {
        let mut m = HealthMonitor::new(CheckRegistry::ideal(), SimRng::seed_from(2));
        let events = m.observe_signal(&signal(SignalKind::IbLinkError, 301));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, SimTime::from_secs(600));
        assert_eq!(events[0].check, CheckKind::IbLink);
        assert!(!events[0].false_positive);
    }

    #[test]
    fn signal_on_boundary_detected_same_sweep() {
        let mut m = HealthMonitor::new(CheckRegistry::ideal(), SimRng::seed_from(2));
        let events = m.observe_signal(&signal(SignalKind::PcieError, 600));
        assert_eq!(events[0].at, SimTime::from_secs(600));
    }

    #[test]
    fn pre_rollout_signals_are_invisible() {
        let mut m = monitor();
        // FS mount check rolls out at day 100.
        let early = m.observe_signal(&signal(SignalKind::FsMountMissing, 86_400));
        assert!(early.is_empty());
        let late = NodeSignal {
            node: NodeId::new(0),
            kind: SignalKind::FsMountMissing,
            at: SimTime::from_days(150),
        };
        // With 5% miss rate a single trial can miss; try a few.
        let mut caught = false;
        for _ in 0..20 {
            if !m.observe_signal(&late).is_empty() {
                caught = true;
                break;
            }
        }
        assert!(caught);
    }

    #[test]
    fn unresponsive_node_is_never_detected() {
        let mut m = HealthMonitor::new(CheckRegistry::ideal(), SimRng::seed_from(3));
        let events = m.observe_signal(&signal(SignalKind::NodeUnresponsive, 1000));
        assert!(events.is_empty());
    }

    #[test]
    fn miss_rate_skips_roughly_expected_fraction() {
        let mut m = monitor(); // 5% miss rate
        let mut detected = 0;
        let n = 5_000;
        for i in 0..n {
            let s = signal(SignalKind::Xid(XidError::DoubleBitEcc), 600 + i);
            if !m.observe_signal(&s).is_empty() {
                detected += 1;
            }
        }
        let frac = detected as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn false_positives_scale_with_fleet_and_time() {
        let mut m = monitor();
        let small = m
            .false_positives_between(SimTime::from_days(200), SimTime::from_days(210), 100)
            .len();
        let mut m2 = monitor();
        let large = m2
            .false_positives_between(SimTime::from_days(200), SimTime::from_days(210), 4000)
            .len();
        assert!(large > small * 10, "small={small} large={large}");
        // Events sorted and flagged.
        let evs = m.false_positives_between(SimTime::from_days(10), SimTime::from_days(20), 2000);
        for w in evs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(evs.iter().all(|e| e.false_positive && e.signal.is_none()));
    }

    #[test]
    fn empty_window_yields_nothing() {
        let mut m = monitor();
        let evs = m.false_positives_between(SimTime::from_days(5), SimTime::from_days(5), 100);
        assert!(evs.is_empty());
    }
}
