//! Property-based tests of the remediation state machine's invariants.
//!
//! Three invariants must hold for any policy the config layer can express:
//! no node is ever stuck (every lifecycle reaches `InService` or
//! `Quarantined` within a bound derived from the retry budget), backoff is
//! monotone non-decreasing across failed attempts, and quarantine is an
//! absorbing state.

use proptest::prelude::*;

use rsc_health::lifecycle::{
    AttemptOutcome, LifecycleState, NodeLifecycle, ProbationOutcome, ProbationPolicy,
    RemediationPolicy,
};
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimDuration;

/// A policy with every knob driven from small integer inputs, so proptest
/// explores the corners (0%, 100%) as well as the middle.
fn policy_from(
    success_pct: u32,
    probation_fail_pct: u32,
    probation_on: bool,
    budget: u32,
    backoff_centi: u32,
) -> RemediationPolicy {
    let mut policy = RemediationPolicy::rsc_default();
    for rung in &mut policy.rungs {
        rung.success_prob = success_pct as f64 / 100.0;
        rung.sigma = 0.0;
    }
    policy.max_total_attempts = budget;
    policy.backoff_base = backoff_centi as f64 / 100.0;
    policy.probation = ProbationPolicy {
        enabled: probation_on,
        window: SimDuration::from_hours(6),
        fail_prob: probation_fail_pct as f64 / 100.0,
    };
    policy
}

/// Drives one lifecycle to a terminal state, returning the number of
/// resolution steps taken (or `None` if it never terminated).
fn drive(
    lc: &mut NodeLifecycle,
    policy: &RemediationPolicy,
    rng: &mut SimRng,
    max_steps: u32,
) -> Option<u32> {
    for step in 0..max_steps {
        match lc.state() {
            LifecycleState::InService | LifecycleState::Quarantined => return Some(step),
            LifecycleState::InRepair { .. } => {
                lc.resolve_attempt(policy, rng);
            }
            LifecycleState::Probation { .. } => {
                lc.resolve_probation(policy, rng);
            }
        }
    }
    matches!(
        lc.state(),
        LifecycleState::InService | LifecycleState::Quarantined
    )
    .then_some(max_steps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No node is ever stuck: whatever the rung probabilities, probation
    /// policy, budget, and RNG stream, the machine reaches `InService` or
    /// `Quarantined` within a step bound derived from the retry budget.
    /// Every failed attempt and flunked probation consumes budget, and a
    /// success inserts at most one probation step before re-admission, so
    /// `2 × budget + 4` steps always suffice.
    #[test]
    fn lifecycle_always_terminates(
        seed in 0u64..1_000_000,
        success_pct in 0u32..=100,
        probation_fail_pct in 0u32..=100,
        probation_on in any::<bool>(),
        permanent in any::<bool>(),
        budget in 1u32..=24,
        backoff_centi in 100u32..=300,
    ) {
        let policy = policy_from(
            success_pct,
            probation_fail_pct,
            probation_on,
            budget,
            backoff_centi,
        );
        let mut rng = SimRng::seed_from(seed);
        let mut lc = NodeLifecycle::begin(permanent);
        let bound = 2 * budget + 4;
        let steps = drive(&mut lc, &policy, &mut rng, bound);
        prop_assert!(
            steps.is_some(),
            "lifecycle stuck after {bound} steps in {:?}",
            lc.state()
        );
        prop_assert!(matches!(
            lc.state(),
            LifecycleState::InService | LifecycleState::Quarantined
        ));
    }

    /// Backoff is monotone: across consecutive failed attempts both the
    /// backoff multiplier and the (sigma = 0) attempt duration never
    /// decrease — retries always wait at least as long as the last try.
    #[test]
    fn backoff_is_monotone_nondecreasing(
        seed in 0u64..1_000_000,
        permanent in any::<bool>(),
        budget in 2u32..=24,
        backoff_centi in 100u32..=300,
    ) {
        // success 0%: every attempt fails, walking the whole ladder.
        let policy = policy_from(0, 0, false, budget, backoff_centi);
        let mut rng = SimRng::seed_from(seed);
        let mut lc = NodeLifecycle::begin(permanent);
        let mut last_multiplier = 0.0f64;
        let mut last_duration = SimDuration::ZERO;
        while matches!(lc.state(), LifecycleState::InRepair { .. }) {
            let multiplier = lc.backoff_multiplier(&policy);
            let duration = lc.attempt_duration(&policy, &mut rng);
            prop_assert!(
                multiplier >= last_multiplier,
                "multiplier shrank: {last_multiplier} -> {multiplier}"
            );
            prop_assert!(
                duration >= last_duration,
                "duration shrank: {last_duration} -> {duration}"
            );
            last_multiplier = multiplier;
            last_duration = duration;
            lc.resolve_attempt(&policy, &mut rng);
        }
        // All-failing attempts must exhaust the budget into quarantine.
        prop_assert_eq!(lc.state(), LifecycleState::Quarantined);
    }

    /// Quarantine is absorbing: once quarantined, no sequence of further
    /// resolutions changes the state or the failure count, and both
    /// resolvers report `Quarantined`.
    #[test]
    fn quarantine_is_absorbing(
        seed in 0u64..1_000_000,
        extra_steps in 1u32..16,
        success_pct in 0u32..=100,
    ) {
        // Budget 1, success 0%: quarantined on the first failed attempt.
        let quarantine_policy = policy_from(0, 0, false, 1, 150);
        let mut rng = SimRng::seed_from(seed);
        let mut lc = NodeLifecycle::begin(false);
        lc.resolve_attempt(&quarantine_policy, &mut rng);
        prop_assert!(lc.is_quarantined());
        let failures = lc.total_failures();
        // Even under a generous policy, the machine must not revive.
        let lenient = policy_from(success_pct, 0, true, 24, 150);
        for _ in 0..extra_steps {
            let a = lc.resolve_attempt(&lenient, &mut rng);
            prop_assert_eq!(a, AttemptOutcome::Quarantined);
            let p = lc.resolve_probation(&lenient, &mut rng);
            prop_assert_eq!(p, ProbationOutcome::Quarantined);
            prop_assert!(lc.is_quarantined());
            prop_assert_eq!(lc.total_failures(), failures);
        }
    }
}
