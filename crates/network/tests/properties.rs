//! Property-based tests of fabric routing and bandwidth computation.

use proptest::prelude::*;

use rsc_cluster::ids::NodeId;
use rsc_cluster::spec::ClusterSpec;
use rsc_network::collective::{evaluate_collectives, AllReduce};
use rsc_network::fabric::{Fabric, LinkId, ACCESS_GBPS, SPINE_PLANES};
use rsc_network::routing::{flow_bandwidths, route_flows, Flow, RoutingPolicy};

fn policy_from(adaptive: bool) -> RoutingPolicy {
    if adaptive {
        RoutingPolicy::Adaptive
    } else {
        RoutingPolicy::Static {
            shield_threshold: 0.95,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routed flows are structurally valid: access links at both ends,
    /// uplinks only for cross-pod traffic, and uplinks belong to the
    /// correct pods and rail.
    #[test]
    fn routes_are_structurally_valid(
        pairs in prop::collection::vec((0u32..80, 0u32..80, 0u8..8), 1..40),
        adaptive in any::<bool>(),
    ) {
        let spec = ClusterSpec::new("p", 80);
        let fabric = Fabric::new(&spec);
        let flows: Vec<Flow> = pairs
            .iter()
            .map(|&(s, d, rail)| Flow {
                src: NodeId::new(s),
                dst: NodeId::new(d),
                rail,
            })
            .collect();
        let routed = route_flows(&fabric, &flows, policy_from(adaptive));
        prop_assert_eq!(routed.len(), flows.len());
        let topo = fabric.topology();
        for rf in &routed {
            if rf.flow.src == rf.flow.dst {
                prop_assert!(rf.links.is_empty());
                continue;
            }
            let same_pod = topo.pod_of(rf.flow.src) == topo.pod_of(rf.flow.dst);
            prop_assert_eq!(rf.links.len(), if same_pod { 2 } else { 4 });
            for l in &rf.links {
                match *l {
                    LinkId::Access { node, rail } => {
                        prop_assert!(node == rf.flow.src || node == rf.flow.dst);
                        prop_assert_eq!(rail, rf.flow.rail);
                    }
                    LinkId::Uplink { pod, rail, plane } => {
                        prop_assert!(
                            pod == topo.pod_of(rf.flow.src).index()
                                || pod == topo.pod_of(rf.flow.dst).index()
                        );
                        prop_assert_eq!(rail, rf.flow.rail);
                        prop_assert!((plane as usize) < SPINE_PLANES);
                    }
                }
            }
        }
    }

    /// Per-flow bandwidth never exceeds any traversed link's capacity and
    /// is non-negative.
    #[test]
    fn bandwidths_respect_capacity(
        pairs in prop::collection::vec((0u32..40, 0u32..40, 0u8..8), 1..30),
        degrade in prop::collection::vec((0u32..2, 0u8..8, 0u8..4, 0.0f64..1.0), 0..10),
        adaptive in any::<bool>(),
    ) {
        let spec = ClusterSpec::new("p", 40);
        let mut fabric = Fabric::new(&spec);
        for (pod, rail, plane, err) in degrade {
            fabric.inject_error_rate(LinkId::Uplink { pod, rail, plane }, err);
        }
        let flows: Vec<Flow> = pairs
            .iter()
            .map(|&(s, d, rail)| Flow {
                src: NodeId::new(s),
                dst: NodeId::new(d),
                rail,
            })
            .collect();
        let routed = route_flows(&fabric, &flows, policy_from(adaptive));
        let bws = flow_bandwidths(&fabric, &routed);
        for (bw, rf) in bws.iter().zip(&routed) {
            prop_assert!(*bw >= 0.0);
            if !rf.links.is_empty() {
                prop_assert!(*bw <= ACCESS_GBPS + 1e-9);
                for l in &rf.links {
                    prop_assert!(*bw <= fabric.effective_capacity(*l) + 1e-9);
                }
            }
        }
    }

    /// Collective bandwidth is positive on a healthy fabric and never
    /// exceeds the rail-parallel access bound.
    #[test]
    fn collective_bandwidth_bounded(nodes in 2usize..32, adaptive in any::<bool>()) {
        let spec = ClusterSpec::new("p", 64);
        let fabric = Fabric::new(&spec);
        let ar = AllReduce::new((0..nodes as u32).map(NodeId::new).collect());
        let result = evaluate_collectives(&fabric, std::slice::from_ref(&ar), policy_from(adaptive));
        let bw = result.busbw_gbps[0];
        prop_assert!(bw > 0.0);
        prop_assert!(bw <= 8.0 * ACCESS_GBPS + 1e-9);
    }

    /// Degrading links never increases adaptive-routing bandwidth.
    #[test]
    fn degradation_is_monotone_for_adaptive(err in 0.0f64..1.0) {
        let spec = ClusterSpec::new("p", 40);
        let ar = AllReduce::new(vec![
            NodeId::new(0),
            NodeId::new(10),
            NodeId::new(25),
            NodeId::new(35),
        ]);
        let healthy = {
            let fabric = Fabric::new(&spec);
            evaluate_collectives(&fabric, std::slice::from_ref(&ar), RoutingPolicy::Adaptive)
                .busbw_gbps[0]
        };
        let mut fabric = Fabric::new(&spec);
        for pod in 0..2 {
            for rail in 0..8 {
                for plane in 0..SPINE_PLANES as u8 {
                    fabric.inject_error_rate(LinkId::Uplink { pod, rail, plane }, err);
                }
            }
        }
        let degraded =
            evaluate_collectives(&fabric, std::slice::from_ref(&ar), RoutingPolicy::Adaptive)
                .busbw_gbps[0];
        prop_assert!(degraded <= healthy + 1e-9);
    }
}
