//! Ring all-reduce bandwidth model (the NCCL-Tests stand-in).
//!
//! NCCL's rail-optimized ring sends each shard around a ring of GPUs; the
//! collective's bus bandwidth is gated by the slowest inter-node hop. We
//! build the same rail-parallel rings NCCL would (one ring per local GPU
//! rank) and evaluate their bandwidth over the routed fabric.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_cluster::node::GPUS_PER_NODE;

use crate::fabric::Fabric;
use crate::routing::{flow_bandwidths, route_flows, Flow, RoutedFlow, RoutingPolicy};

/// An all-reduce job: the participating servers (all 8 GPUs of each).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllReduce {
    nodes: Vec<NodeId>,
}

impl AllReduce {
    /// Creates an all-reduce across the given servers.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes participate.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(nodes.len() >= 2, "all-reduce needs at least two nodes");
        AllReduce { nodes }
    }

    /// Participating servers.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of GPUs involved.
    pub fn gpus(&self) -> usize {
        self.nodes.len() * GPUS_PER_NODE
    }

    /// The inter-node ring flows: one ring per rail, each node sending to
    /// the next node in the ring on the same rail (rail-optimized NCCL).
    pub fn ring_flows(&self) -> Vec<Flow> {
        let n = self.nodes.len();
        let mut flows = Vec::with_capacity(n * GPUS_PER_NODE);
        for rail in 0..GPUS_PER_NODE as u8 {
            for i in 0..n {
                flows.push(Flow {
                    src: self.nodes[i],
                    dst: self.nodes[(i + 1) % n],
                    rail,
                });
            }
        }
        flows
    }
}

/// Result of evaluating one or more concurrent all-reduces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveBandwidth {
    /// Per-collective bus bandwidth, Gb/s (the min over its ring flows,
    /// times the rail parallelism).
    pub busbw_gbps: Vec<f64>,
}

impl CollectiveBandwidth {
    /// Mean bus bandwidth across the collectives.
    pub fn mean(&self) -> f64 {
        if self.busbw_gbps.is_empty() {
            return 0.0;
        }
        self.busbw_gbps.iter().sum::<f64>() / self.busbw_gbps.len() as f64
    }

    /// Coefficient of variation (std/mean) — the paper's Fig. 12b shows AR
    /// lowering variance under contention.
    pub fn coefficient_of_variation(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.busbw_gbps.len() < 2 {
            return 0.0;
        }
        let var = self
            .busbw_gbps
            .iter()
            .map(|b| (b - mean).powi(2))
            .sum::<f64>()
            / (self.busbw_gbps.len() - 1) as f64;
        var.sqrt() / mean
    }

    /// Minimum per-collective bandwidth.
    pub fn min(&self) -> f64 {
        self.busbw_gbps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Evaluates concurrent all-reduces on a fabric under a routing policy.
///
/// Each collective's bus bandwidth is the slowest of its ring flows
/// multiplied by the number of parallel rails (flows on different rails
/// progress independently; the ring stalls at its slowest hop).
pub fn evaluate_collectives(
    fabric: &Fabric,
    collectives: &[AllReduce],
    policy: RoutingPolicy,
) -> CollectiveBandwidth {
    // Route all flows together so concurrent collectives contend.
    let mut all_flows: Vec<Flow> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    for (i, c) in collectives.iter().enumerate() {
        for f in c.ring_flows() {
            all_flows.push(f);
            owners.push(i);
        }
    }
    let routed: Vec<RoutedFlow> = route_flows(fabric, &all_flows, policy);
    let bws = flow_bandwidths(fabric, &routed);

    let busbw = collectives
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let slowest = bws
                .iter()
                .zip(&owners)
                .filter(|(_, &o)| o == i)
                .map(|(&b, _)| b)
                .fold(f64::INFINITY, f64::min);
            // Eight rails progress in parallel.
            slowest * GPUS_PER_NODE as f64
        })
        .collect();
    CollectiveBandwidth { busbw_gbps: busbw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::spec::ClusterSpec;

    fn fabric() -> Fabric {
        Fabric::new(&ClusterSpec::new("t", 80))
    }

    #[test]
    fn ring_flows_cover_all_rails() {
        let ar = AllReduce::new((0..4).map(NodeId::new).collect());
        let flows = ar.ring_flows();
        assert_eq!(flows.len(), 4 * 8);
        assert_eq!(ar.gpus(), 32);
        // Each node sends exactly once per rail.
        for rail in 0..8u8 {
            let srcs: Vec<_> = flows
                .iter()
                .filter(|f| f.rail == rail)
                .map(|f| f.src)
                .collect();
            assert_eq!(srcs.len(), 4);
        }
    }

    #[test]
    fn healthy_fabric_delivers_full_rail_bandwidth() {
        let f = fabric();
        let ar = AllReduce::new((0..8).map(NodeId::new).collect());
        let result = evaluate_collectives(&f, &[ar], RoutingPolicy::Adaptive);
        // Each access link carries one outbound ring flow at 200 Gb/s...
        // but src and dst access links are distinct directions in reality;
        // our undirected model shares them between in+out flows → 100 Gb/s
        // per flow × 8 rails = 800 Gb/s.
        assert!((result.busbw_gbps[0] - 800.0).abs() < 1e-6, "{result:?}");
    }

    #[test]
    fn degraded_links_hurt_static_more_than_adaptive() {
        let mut f = fabric();
        // Degrade half the uplink planes everywhere by 80%.
        for pod in 0..4 {
            for rail in 0..8 {
                for plane in 0..2u8 {
                    f.inject_error_rate(crate::fabric::LinkId::Uplink { pod, rail, plane }, 0.8);
                }
            }
        }
        // Ring spanning two pods (nodes 0..40 crosses pods 0 and 1).
        let ar = AllReduce::new(vec![
            NodeId::new(0),
            NodeId::new(10),
            NodeId::new(25),
            NodeId::new(35),
        ]);
        let st = evaluate_collectives(
            &f,
            std::slice::from_ref(&ar),
            RoutingPolicy::Static {
                shield_threshold: 1.1,
            },
        );
        let ad = evaluate_collectives(&f, &[ar], RoutingPolicy::Adaptive);
        assert!(
            ad.busbw_gbps[0] > st.busbw_gbps[0],
            "adaptive {ad:?} vs static {st:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_allreduce_rejected() {
        let _ = AllReduce::new(vec![NodeId::new(0)]);
    }
}
