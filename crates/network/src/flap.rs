//! Link flapping: links that transition between up and down states.
//!
//! §IV-B lists "flapping behavior that transitions between up and down
//! states" among the link pathologies adaptive routing must tolerate.
//! This module gives links a two-state Markov process and evaluates
//! collective bandwidth over a flapping trajectory.

use serde::{Deserialize, Serialize};

use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::collective::{evaluate_collectives, AllReduce};
use crate::fabric::{Fabric, LinkId, SPINE_PLANES};
use crate::routing::RoutingPolicy;

/// Two-state Markov flap model for a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapModel {
    /// Mean time between a healthy link going down.
    pub mean_up_time: SimDuration,
    /// Mean outage length once down.
    pub mean_down_time: SimDuration,
}

impl FlapModel {
    /// A badly flapping optic: up for ~30 minutes, down for ~2.
    pub fn bad_optic() -> Self {
        FlapModel {
            mean_up_time: SimDuration::from_mins(30),
            mean_down_time: SimDuration::from_mins(2),
        }
    }

    /// Long-run fraction of time the link is down.
    pub fn down_fraction(&self) -> f64 {
        let up = self.mean_up_time.as_secs() as f64;
        let down = self.mean_down_time.as_secs() as f64;
        down / (up + down).max(1.0)
    }

    /// Samples the down intervals within `[0, horizon)` for one link.
    pub fn sample_outages(
        &self,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<(SimTime, SimTime)> {
        let mut outages = Vec::new();
        let up_rate = 1.0 / self.mean_up_time.as_secs().max(1) as f64;
        let down_rate = 1.0 / self.mean_down_time.as_secs().max(1) as f64;
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        loop {
            let up_for = SimDuration::from_secs_f64(rng.exponential(up_rate));
            t += up_for;
            if t >= end {
                break;
            }
            let down_for = SimDuration::from_secs_f64(rng.exponential(down_rate));
            let down_end = (t + down_for).min(end);
            outages.push((t, down_end));
            t = down_end;
            if t >= end {
                break;
            }
        }
        outages
    }
}

/// One sampled instant of the flap experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapSample {
    /// Sample time.
    pub at: SimTime,
    /// Links down at this instant.
    pub links_down: usize,
    /// Bus bandwidth with adaptive routing, Gb/s.
    pub with_ar_gbps: f64,
    /// Bus bandwidth with static + SHIELD routing, Gb/s.
    pub without_ar_gbps: f64,
}

/// Evaluates a 256-GPU all-reduce over `horizon` while `flapping_links`
/// uplinks flap per `model`, sampling bandwidth every `sample_every`.
pub fn flapping_experiment(
    model: FlapModel,
    flapping_links: usize,
    horizon: SimDuration,
    sample_every: SimDuration,
    seed: u64,
) -> Vec<FlapSample> {
    let spec = rsc_cluster::spec::ClusterSpec::new("flap", 32); // 256 GPUs
    let nodes: Vec<_> = (0..32).map(rsc_cluster::ids::NodeId::new).collect();
    let job = AllReduce::new(nodes);
    let mut rng = SimRng::seed_from(seed);

    // Pick distinct uplinks to flap and sample each one's outage schedule.
    let mut links: Vec<LinkId> = Vec::new();
    while links.len() < flapping_links {
        let link = LinkId::Uplink {
            pod: rng.below(spec.num_pods() as u64) as u32,
            rail: rng.below(8) as u8,
            plane: rng.below(SPINE_PLANES as u64) as u8,
        };
        if !links.contains(&link) {
            links.push(link);
        }
    }
    let outages: Vec<Vec<(SimTime, SimTime)>> = links
        .iter()
        .map(|_| model.sample_outages(horizon, &mut rng))
        .collect();

    let mut samples = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + horizon;
    while t < end {
        let mut fabric = Fabric::new(&spec);
        let mut down = 0;
        for (link, schedule) in links.iter().zip(&outages) {
            let is_down = schedule.iter().any(|&(from, until)| t >= from && t < until);
            if is_down {
                fabric.set_link_up(*link, false);
                down += 1;
            }
        }
        let ar = evaluate_collectives(&fabric, std::slice::from_ref(&job), RoutingPolicy::Adaptive);
        let st = evaluate_collectives(
            &fabric,
            std::slice::from_ref(&job),
            RoutingPolicy::Static {
                shield_threshold: 0.95,
            },
        );
        samples.push(FlapSample {
            at: t,
            links_down: down,
            with_ar_gbps: ar.busbw_gbps[0],
            without_ar_gbps: st.busbw_gbps[0],
        });
        t += sample_every;
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_fraction_matches_rates() {
        let m = FlapModel::bad_optic();
        assert!((m.down_fraction() - 2.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn outages_cover_expected_fraction() {
        let m = FlapModel::bad_optic();
        let mut rng = SimRng::seed_from(1);
        let horizon = SimDuration::from_days(20);
        let mut total_down = 0u64;
        for _ in 0..20 {
            for (from, until) in m.sample_outages(horizon, &mut rng) {
                total_down += until.saturating_since(from).as_secs();
            }
        }
        let frac = total_down as f64 / (20.0 * horizon.as_secs() as f64);
        assert!((frac - m.down_fraction()).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn outages_are_ordered_and_within_horizon() {
        let m = FlapModel::bad_optic();
        let mut rng = SimRng::seed_from(2);
        let horizon = SimDuration::from_days(1);
        let outages = m.sample_outages(horizon, &mut rng);
        let end = SimTime::ZERO + horizon;
        for w in outages.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        for (from, until) in outages {
            assert!(from < until);
            assert!(until <= end);
        }
    }

    #[test]
    fn ar_dominates_static_under_flaps() {
        let samples = flapping_experiment(
            FlapModel::bad_optic(),
            24,
            SimDuration::from_hours(4),
            SimDuration::from_mins(15),
            3,
        );
        assert!(!samples.is_empty());
        assert!(
            samples.iter().any(|s| s.links_down > 0),
            "flaps should occur"
        );
        for s in &samples {
            assert!(
                s.with_ar_gbps >= s.without_ar_gbps - 1e-9,
                "AR should never lose to static: {s:?}"
            );
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let run = || {
            flapping_experiment(
                FlapModel::bad_optic(),
                8,
                SimDuration::from_hours(2),
                SimDuration::from_mins(30),
                9,
            )
        };
        assert_eq!(run(), run());
    }
}
