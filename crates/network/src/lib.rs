#![warn(missing_docs)]

//! Rail-optimized InfiniBand fabric model for the `rsc-reliability`
//! workspace.
//!
//! Implements the paper's backend network (§II-B) and the adaptive-routing
//! resilience experiments of §IV-B: a pod/rail/spine fabric with per-link
//! error-rate and up/down state, static (hash + SHIELD) and adaptive
//! routing policies, a ring all-reduce bandwidth model standing in for
//! NCCL-Tests, and the two Fig. 12 experiment harnesses.
//!
//! # Example
//!
//! ```
//! use rsc_network::experiments::contention_experiment;
//!
//! let result = contention_experiment(16, 1);
//! let (cv_with_ar, cv_without_ar) = result.cvs();
//! assert!(cv_with_ar <= cv_without_ar); // AR lowers variance
//! ```

pub mod collective;
pub mod experiments;
pub mod fabric;
pub mod flap;
pub mod routing;

pub use collective::{evaluate_collectives, AllReduce, CollectiveBandwidth};
pub use experiments::{
    ber_injection_experiment, contention_experiment, BerIterationResult, ContentionResult,
};
pub use fabric::{Fabric, LinkId, LinkState};
pub use flap::{flapping_experiment, FlapModel, FlapSample};
pub use routing::{flow_bandwidths, route_flows, Flow, RoutedFlow, RoutingPolicy};
