//! The rail-optimized InfiniBand fabric model (paper §II-B, Fig. 2).
//!
//! Each pod has eight *rail switches*, one per local GPU index; a server's
//! GPU `r` connects to rail switch `r` of its pod through an access link.
//! Rail switches reach other pods through uplinks to a set of spine planes.
//! Links carry an error rate (fraction of bandwidth lost to
//! retransmissions) and an up/down state — the knobs the paper turns with
//! `mlxreg` in the Fig. 12 experiments.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_cluster::spec::ClusterSpec;
use rsc_cluster::topology::Topology;

/// Number of spine planes each rail switch can uplink through.
pub const SPINE_PLANES: usize = 4;

/// Access-link capacity (node HCA → rail switch), Gb/s.
pub const ACCESS_GBPS: f64 = 200.0;

/// Uplink capacity (rail switch → spine plane), Gb/s.
pub const UPLINK_GBPS: f64 = 200.0;

/// A directed segment of the fabric a flow can traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkId {
    /// Node `node`'s rail-`rail` HCA to its pod's rail switch.
    Access {
        /// The server.
        node: NodeId,
        /// GPU/rail index, 0–7.
        rail: u8,
    },
    /// Pod `pod`'s rail-`rail` switch to spine plane `plane`.
    Uplink {
        /// Pod index.
        pod: u32,
        /// Rail index, 0–7.
        rail: u8,
        /// Spine plane index.
        plane: u8,
    },
}

/// Mutable state of one link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Fraction of bandwidth lost to bit errors / retransmissions, `[0, 1]`.
    pub error_rate: f64,
    /// Whether the link is administratively/physically up.
    pub up: bool,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            error_rate: 0.0,
            up: true,
        }
    }
}

impl LinkState {
    /// Effective capacity of the link given nominal capacity.
    pub fn effective_capacity(&self, nominal_gbps: f64) -> f64 {
        if !self.up {
            0.0
        } else {
            nominal_gbps * (1.0 - self.error_rate.clamp(0.0, 1.0))
        }
    }
}

/// The fabric: topology plus per-link state.
#[derive(Debug, Clone)]
pub struct Fabric {
    topology: Topology,
    /// Sparse override map; untouched links are healthy.
    overrides: std::collections::HashMap<LinkId, LinkState>,
}

impl Fabric {
    /// Builds a healthy fabric for a cluster spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        Fabric {
            topology: Topology::new(spec),
            overrides: std::collections::HashMap::new(),
        }
    }

    /// The underlying placement topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current state of a link.
    pub fn link_state(&self, link: LinkId) -> LinkState {
        self.overrides.get(&link).copied().unwrap_or_default()
    }

    /// Nominal capacity of a link, Gb/s.
    pub fn nominal_capacity(&self, link: LinkId) -> f64 {
        match link {
            LinkId::Access { .. } => ACCESS_GBPS,
            LinkId::Uplink { .. } => UPLINK_GBPS,
        }
    }

    /// Effective capacity of a link, Gb/s.
    pub fn effective_capacity(&self, link: LinkId) -> f64 {
        self.link_state(link)
            .effective_capacity(self.nominal_capacity(link))
    }

    /// Writes a link's error rate — the simulated `mlxreg` port-register
    /// interface used in the paper's Fig. 12a BER-injection experiment.
    pub fn inject_error_rate(&mut self, link: LinkId, error_rate: f64) {
        let entry = self.overrides.entry(link).or_default();
        entry.error_rate = error_rate.clamp(0.0, 1.0);
    }

    /// Takes a link administratively down (or back up).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        let entry = self.overrides.entry(link).or_default();
        entry.up = up;
    }

    /// Clears all injected state.
    pub fn heal_all(&mut self) {
        self.overrides.clear();
    }

    /// All uplinks of a pod's rail switch.
    pub fn uplinks(&self, pod: u32, rail: u8) -> impl Iterator<Item = LinkId> + '_ {
        (0..SPINE_PLANES as u8).map(move |plane| LinkId::Uplink { pod, rail, plane })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_links_run_at_nominal() {
        let f = Fabric::new(&ClusterSpec::small_test());
        let link = LinkId::Access {
            node: NodeId::new(0),
            rail: 3,
        };
        assert_eq!(f.effective_capacity(link), ACCESS_GBPS);
    }

    #[test]
    fn error_injection_cuts_capacity() {
        let mut f = Fabric::new(&ClusterSpec::small_test());
        let link = LinkId::Uplink {
            pod: 0,
            rail: 1,
            plane: 2,
        };
        f.inject_error_rate(link, 0.6);
        assert!((f.effective_capacity(link) - 80.0).abs() < 1e-9);
        f.heal_all();
        assert_eq!(f.effective_capacity(link), UPLINK_GBPS);
    }

    #[test]
    fn down_link_has_zero_capacity() {
        let mut f = Fabric::new(&ClusterSpec::small_test());
        let link = LinkId::Uplink {
            pod: 0,
            rail: 0,
            plane: 0,
        };
        f.set_link_up(link, false);
        assert_eq!(f.effective_capacity(link), 0.0);
    }

    #[test]
    fn uplink_enumeration() {
        let f = Fabric::new(&ClusterSpec::small_test());
        assert_eq!(f.uplinks(0, 5).count(), SPINE_PLANES);
    }

    #[test]
    fn error_rate_clamped() {
        let mut f = Fabric::new(&ClusterSpec::small_test());
        let link = LinkId::Access {
            node: NodeId::new(1),
            rail: 0,
        };
        f.inject_error_rate(link, 5.0);
        assert_eq!(f.effective_capacity(link), 0.0);
    }
}
