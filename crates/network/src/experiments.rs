//! The paper's Fig. 12 network experiments, as a reusable harness.
//!
//! - **Fig. 12a**: a 512-GPU NCCL All-Reduce run for five iterations while
//!   bit errors are injected into fabric port registers; bandwidth with AR
//!   stays high, without AR it collapses (the paper saw 50–75% loss).
//! - **Fig. 12b**: sixty-four 16-GPU (2-node) All-Reduce groups flood the
//!   fabric concurrently; AR both raises mean bandwidth and cuts variance.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_cluster::spec::ClusterSpec;
use rsc_sim_core::rng::SimRng;

use crate::collective::{evaluate_collectives, AllReduce};
use crate::fabric::{Fabric, LinkId, SPINE_PLANES};
use crate::routing::RoutingPolicy;

/// One iteration's result in the BER experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerIterationResult {
    /// Iteration index (fresh error pattern each time).
    pub iteration: u32,
    /// Bus bandwidth with adaptive routing, Gb/s.
    pub with_ar_gbps: f64,
    /// Bus bandwidth with static routing (SHIELD only), Gb/s.
    pub without_ar_gbps: f64,
}

/// Fig. 12a: repeated 512-GPU all-reduce under injected bit errors.
///
/// Each iteration injects a fresh random error pattern: `degraded_fraction`
/// of all uplinks get an error rate of `error_rate`, then the same
/// collective is evaluated with and without AR.
pub fn ber_injection_experiment(
    iterations: u32,
    degraded_fraction: f64,
    error_rate: f64,
    seed: u64,
) -> Vec<BerIterationResult> {
    let spec = ClusterSpec::new("fig12a", 64); // 512 GPUs
    let nodes: Vec<NodeId> = (0..64).map(NodeId::new).collect();
    let ar_job = AllReduce::new(nodes);
    let mut rng = SimRng::seed_from(seed);
    let mut out = Vec::with_capacity(iterations as usize);
    for iteration in 0..iterations {
        let mut fabric = Fabric::new(&spec);
        for pod in 0..spec.num_pods() {
            for rail in 0..8u8 {
                for plane in 0..SPINE_PLANES as u8 {
                    if rng.chance(degraded_fraction) {
                        fabric.inject_error_rate(LinkId::Uplink { pod, rail, plane }, error_rate);
                    }
                }
            }
        }
        let with_ar = evaluate_collectives(
            &fabric,
            std::slice::from_ref(&ar_job),
            RoutingPolicy::Adaptive,
        );
        let without_ar = evaluate_collectives(
            &fabric,
            std::slice::from_ref(&ar_job),
            RoutingPolicy::Static {
                // SHIELD's conservative threshold: only near-dead links are
                // routed around.
                shield_threshold: 0.95,
            },
        );
        out.push(BerIterationResult {
            iteration,
            with_ar_gbps: with_ar.busbw_gbps[0],
            without_ar_gbps: without_ar.busbw_gbps[0],
        });
    }
    out
}

/// Result of the contention experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionResult {
    /// Per-group bandwidth with AR, Gb/s.
    pub with_ar_gbps: Vec<f64>,
    /// Per-group bandwidth without AR, Gb/s.
    pub without_ar_gbps: Vec<f64>,
}

impl ContentionResult {
    /// Mean bandwidth (with AR, without AR).
    pub fn means(&self) -> (f64, f64) {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (mean(&self.with_ar_gbps), mean(&self.without_ar_gbps))
    }

    /// Coefficient of variation (with AR, without AR).
    pub fn cvs(&self) -> (f64, f64) {
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
            if m == 0.0 || v.len() < 2 {
                return 0.0;
            }
            let var = v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
            var.sqrt() / m
        };
        (cv(&self.with_ar_gbps), cv(&self.without_ar_gbps))
    }
}

/// Fig. 12b: `groups` concurrent 2-node (16-GPU) all-reduces flooding the
/// fabric, evaluated with and without AR.
///
/// Group pairs are spread across pods so their rings contend on uplinks.
pub fn contention_experiment(groups: usize, seed: u64) -> ContentionResult {
    let num_nodes = (groups * 2) as u32;
    let spec = ClusterSpec::new("fig12b", num_nodes);
    let mut rng = SimRng::seed_from(seed);
    // Pair nodes across the node range so most rings cross pods.
    let mut ids: Vec<u32> = (0..num_nodes).collect();
    // Deterministic shuffle.
    for i in (1..ids.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        ids.swap(i, j);
    }
    let collectives: Vec<AllReduce> = ids
        .chunks(2)
        .map(|pair| AllReduce::new(vec![NodeId::new(pair[0]), NodeId::new(pair[1])]))
        .collect();

    let fabric = Fabric::new(&spec);
    let with_ar = evaluate_collectives(&fabric, &collectives, RoutingPolicy::Adaptive);
    let without_ar = evaluate_collectives(
        &fabric,
        &collectives,
        RoutingPolicy::Static {
            shield_threshold: 0.95,
        },
    );
    ContentionResult {
        with_ar_gbps: with_ar.busbw_gbps,
        without_ar_gbps: without_ar.busbw_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ar_maintains_bandwidth_under_bit_errors() {
        // Paper Obs. 12: without resilience, >50% of bandwidth can be lost.
        let results = ber_injection_experiment(5, 0.5, 0.8, 7);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.with_ar_gbps >= r.without_ar_gbps,
                "AR should never be worse: {r:?}"
            );
        }
        let mean_with: f64 = results.iter().map(|r| r.with_ar_gbps).sum::<f64>() / 5.0;
        let mean_without: f64 = results.iter().map(|r| r.without_ar_gbps).sum::<f64>() / 5.0;
        assert!(
            mean_with > 1.5 * mean_without,
            "with={mean_with} without={mean_without}"
        );
    }

    #[test]
    fn static_loses_half_or_more_bandwidth() {
        let healthy = ber_injection_experiment(1, 0.0, 0.0, 1)[0].without_ar_gbps;
        let degraded = ber_injection_experiment(5, 0.5, 0.8, 2);
        let mean_degraded: f64 = degraded.iter().map(|r| r.without_ar_gbps).sum::<f64>() / 5.0;
        let loss = 1.0 - mean_degraded / healthy;
        assert!(
            (0.4..=0.85).contains(&loss),
            "bandwidth loss {loss} outside the paper's 50–75% band"
        );
    }

    #[test]
    fn ar_reduces_variance_under_contention() {
        let result = contention_experiment(64, 3);
        assert_eq!(result.with_ar_gbps.len(), 64);
        let (mean_ar, mean_static) = result.means();
        let (cv_ar, cv_static) = result.cvs();
        assert!(mean_ar >= mean_static, "ar={mean_ar} static={mean_static}");
        assert!(cv_ar <= cv_static, "cv_ar={cv_ar} cv_static={cv_static}");
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = ber_injection_experiment(3, 0.4, 0.7, 11);
        let b = ber_injection_experiment(3, 0.4, 0.7, 11);
        assert_eq!(a, b);
    }
}
