//! Flow routing over the fabric: static (hash) vs adaptive routing.
//!
//! Adaptive Routing (paper §IV-B) picks output ports by load and health;
//! static routing hashes each flow onto a fixed spine plane, so unlucky
//! flows pile onto degraded or congested uplinks. SHIELD-style self-healing
//! is modelled as a threshold that takes badly-degraded links out of the
//! static route set (with its conservative threshold, mildly degraded
//! links stay in service — exactly the gap AR closes).

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;

use crate::fabric::{Fabric, LinkId, SPINE_PLANES};

/// How flows choose spine planes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Deterministic hash per flow; a SHIELD error-rate threshold above
    /// which links count as down (1.0 disables SHIELD entirely).
    Static {
        /// Links with `error_rate >= shield_threshold` are avoided.
        shield_threshold: f64,
    },
    /// Adaptive routing: per-flow choice of the least-loaded healthy
    /// uplink, weighted by effective capacity.
    Adaptive,
}

/// One unidirectional flow between two GPUs on the same rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Rail (local GPU index) the flow travels on.
    pub rail: u8,
}

/// A routed flow: the fabric links it occupies (empty for intra-node
/// traffic, which rides the NVSwitch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedFlow {
    /// The flow.
    pub flow: Flow,
    /// Fabric links traversed.
    pub links: Vec<LinkId>,
}

/// Routes a set of flows under a policy, returning link assignments.
///
/// Adaptive routing processes flows in order, greedily placing each on the
/// uplink with the most remaining headroom (effective capacity divided by
/// flows already assigned) — a static approximation of per-packet
/// adaptivity that captures its load-balancing and failure-avoidance.
pub fn route_flows(fabric: &Fabric, flows: &[Flow], policy: RoutingPolicy) -> Vec<RoutedFlow> {
    let mut load: std::collections::HashMap<LinkId, u32> = std::collections::HashMap::new();
    let topo = fabric.topology();
    flows
        .iter()
        .map(|&flow| {
            let mut links = Vec::new();
            if flow.src == flow.dst {
                // NVSwitch-local; no fabric links.
                return RoutedFlow { flow, links };
            }
            let src_pod = topo.pod_of(flow.src).index();
            let dst_pod = topo.pod_of(flow.dst).index();
            links.push(LinkId::Access {
                node: flow.src,
                rail: flow.rail,
            });
            if src_pod != dst_pod {
                let up = choose_uplink(fabric, &load, src_pod, flow.rail, &flow, policy);
                let down = choose_uplink(fabric, &load, dst_pod, flow.rail, &flow, policy);
                links.push(up);
                links.push(down);
            }
            links.push(LinkId::Access {
                node: flow.dst,
                rail: flow.rail,
            });
            for &l in &links {
                *load.entry(l).or_insert(0) += 1;
            }
            RoutedFlow { flow, links }
        })
        .collect()
}

fn choose_uplink(
    fabric: &Fabric,
    load: &std::collections::HashMap<LinkId, u32>,
    pod: u32,
    rail: u8,
    flow: &Flow,
    policy: RoutingPolicy,
) -> LinkId {
    match policy {
        RoutingPolicy::Static { shield_threshold } => {
            // Deterministic hash of the flow onto a plane; SHIELD skips
            // planes whose links look dead, scanning forward.
            let base = (flow.src.index() as usize
                + flow.dst.index() as usize * 31
                + flow.rail as usize * 7)
                % SPINE_PLANES;
            for probe in 0..SPINE_PLANES {
                let plane = ((base + probe) % SPINE_PLANES) as u8;
                let link = LinkId::Uplink { pod, rail, plane };
                let state = fabric.link_state(link);
                if state.up && state.error_rate < shield_threshold {
                    return link;
                }
            }
            // Everything looks down; stick with the hash choice.
            LinkId::Uplink {
                pod,
                rail,
                plane: base as u8,
            }
        }
        RoutingPolicy::Adaptive => {
            // Max headroom: effective capacity / (1 + current flows).
            fabric
                .uplinks(pod, rail)
                .max_by(|&a, &b| {
                    let ha =
                        fabric.effective_capacity(a) / (1.0 + *load.get(&a).unwrap_or(&0) as f64);
                    let hb =
                        fabric.effective_capacity(b) / (1.0 + *load.get(&b).unwrap_or(&0) as f64);
                    ha.partial_cmp(&hb).expect("capacities are finite")
                })
                .expect("at least one uplink plane")
        }
    }
}

/// Max–min fair bandwidth per flow, Gb/s: each link's effective capacity is
/// shared equally among the flows crossing it; a flow gets the minimum of
/// its links' shares. Intra-node flows get the NVSwitch's effective
/// bandwidth (never the bottleneck in these experiments).
pub fn flow_bandwidths(fabric: &Fabric, routed: &[RoutedFlow]) -> Vec<f64> {
    const NVSWITCH_GBPS: f64 = 4800.0;
    let mut counts: std::collections::HashMap<LinkId, u32> = std::collections::HashMap::new();
    for rf in routed {
        for &l in &rf.links {
            *counts.entry(l).or_insert(0) += 1;
        }
    }
    routed
        .iter()
        .map(|rf| {
            if rf.links.is_empty() {
                return NVSWITCH_GBPS;
            }
            rf.links
                .iter()
                .map(|&l| fabric.effective_capacity(l) / counts[&l] as f64)
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::spec::ClusterSpec;

    fn fabric() -> Fabric {
        Fabric::new(&ClusterSpec::new("t", 80)) // 4 pods of 20 nodes
    }

    fn cross_pod_flow(rail: u8) -> Flow {
        Flow {
            src: NodeId::new(0),
            dst: NodeId::new(25), // pod 1
            rail,
        }
    }

    #[test]
    fn same_node_flows_use_nvswitch() {
        let f = fabric();
        let flows = [Flow {
            src: NodeId::new(0),
            dst: NodeId::new(0),
            rail: 0,
        }];
        let routed = route_flows(&f, &flows, RoutingPolicy::Adaptive);
        assert!(routed[0].links.is_empty());
        let bw = flow_bandwidths(&f, &routed);
        assert!(bw[0] > 1000.0);
    }

    #[test]
    fn same_pod_flows_skip_spines() {
        let f = fabric();
        let flows = [Flow {
            src: NodeId::new(0),
            dst: NodeId::new(5),
            rail: 2,
        }];
        let routed = route_flows(&f, &flows, RoutingPolicy::Adaptive);
        assert_eq!(routed[0].links.len(), 2); // two access links only
    }

    #[test]
    fn cross_pod_flows_take_uplinks() {
        let f = fabric();
        let routed = route_flows(&f, &[cross_pod_flow(0)], RoutingPolicy::Adaptive);
        assert_eq!(routed[0].links.len(), 4);
        assert!(matches!(routed[0].links[1], LinkId::Uplink { .. }));
    }

    #[test]
    fn adaptive_avoids_degraded_uplinks() {
        let mut f = fabric();
        // Degrade three of the four planes on the source pod's rail 0.
        for plane in 0..3u8 {
            f.inject_error_rate(
                LinkId::Uplink {
                    pod: 0,
                    rail: 0,
                    plane,
                },
                0.9,
            );
        }
        let routed = route_flows(&f, &[cross_pod_flow(0)], RoutingPolicy::Adaptive);
        let up = routed[0].links[1];
        assert_eq!(
            up,
            LinkId::Uplink {
                pod: 0,
                rail: 0,
                plane: 3
            }
        );
    }

    #[test]
    fn static_routing_hits_degraded_links_sometimes() {
        let mut f = fabric();
        for plane in 0..SPINE_PLANES as u8 {
            f.inject_error_rate(
                LinkId::Uplink {
                    pod: 0,
                    rail: 0,
                    plane,
                },
                if plane == 0 { 0.8 } else { 0.0 },
            );
        }
        // SHIELD threshold 1.0 = disabled → the hash may land on plane 0.
        let flows: Vec<Flow> = (0..SPINE_PLANES as u32)
            .map(|i| Flow {
                src: NodeId::new(0),
                dst: NodeId::new(20 + i),
                rail: 0,
            })
            .collect();
        let routed = route_flows(
            &f,
            &flows,
            RoutingPolicy::Static {
                shield_threshold: 1.1,
            },
        );
        let hits_bad = routed.iter().any(|rf| {
            rf.links.contains(&LinkId::Uplink {
                pod: 0,
                rail: 0,
                plane: 0,
            })
        });
        assert!(hits_bad, "hash routing should land on the degraded plane");
        // With SHIELD at 0.5, the degraded plane is avoided.
        let shielded = route_flows(
            &f,
            &flows,
            RoutingPolicy::Static {
                shield_threshold: 0.5,
            },
        );
        assert!(shielded.iter().all(|rf| {
            !rf.links.contains(&LinkId::Uplink {
                pod: 0,
                rail: 0,
                plane: 0,
            })
        }));
    }

    #[test]
    fn bandwidth_shares_on_contention() {
        let f = fabric();
        // Two flows from the same source GPU share its access link.
        let flows = [
            Flow {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                rail: 0,
            },
            Flow {
                src: NodeId::new(0),
                dst: NodeId::new(2),
                rail: 0,
            },
        ];
        let routed = route_flows(&f, &flows, RoutingPolicy::Adaptive);
        let bw = flow_bandwidths(&f, &routed);
        assert!((bw[0] - 100.0).abs() < 1e-9, "{bw:?}");
    }
}
