//! Corruption-injection suite for the version-3 snapshot codec.
//!
//! The v3 format chains every stream from [`GENESIS`] with per-frame
//! checkpoints plus a combined trailing head, so any byte-level tampering
//! must surface as a typed [`SnapshotError`] — never a panic, and never a
//! silently-different view. Each property here injects one class of damage
//! the chain was designed to catch: single bit flips, truncation, frame
//! reordering, and cross-snapshot frame/chain splices.
//!
//! [`GENESIS`]: rsc_telemetry::GENESIS

use proptest::prelude::*;

use rsc_cluster::ids::NodeId;
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::{ModeId, Severity};
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_health::monitor::HealthEvent;
use rsc_sim_core::time::SimTime;
use rsc_telemetry::snapshot::{read_snapshot, write_snapshot_with_frame_rows, SnapshotError};
use rsc_telemetry::store::TelemetryStore;
use rsc_telemetry::view::TelemetryView;

/// A view whose records are all distinct (strictly increasing timestamps
/// offset by `base`), so no two frames can ever hold identical bytes and a
/// reorder is always a real change.
fn build_view(base: u64, health: usize, failures: usize) -> TelemetryView {
    let mut store = TelemetryStore::new("corrupt-me", 64);
    for i in 0..health {
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(base + 7 * i as u64),
            node: NodeId::new((i % 64) as u32),
            check: CheckKind::ALL[i % CheckKind::ALL.len()],
            severity: if i % 3 == 0 {
                Severity::High
            } else {
                Severity::Low
            },
            signal: None,
            false_positive: i % 2 == 0,
        });
    }
    for i in 0..failures {
        store.push_ground_truth(FailureEvent {
            at: SimTime::from_secs(base + 11 * i as u64),
            node: NodeId::new((i % 64) as u32),
            mode: ModeId(i % 5),
            symptom: FailureSymptom::ALL[i % FailureSymptom::ALL.len()],
            permanent: i % 2 == 1,
        });
    }
    store.set_horizon(SimTime::from_secs(base + 1_000_000));
    store.seal()
}

fn snapshot_bytes(view: &TelemetryView, frame_rows: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_snapshot_with_frame_rows(&mut bytes, view, frame_rows).expect("in-memory write");
    bytes
}

/// The `health` section's frame blocks as `(first_line, line_count)` spans
/// over `lines` — each span covers one `frame` line plus its rows.
fn health_frame_blocks(lines: &[String]) -> Vec<(usize, usize)> {
    let header = lines
        .iter()
        .position(|l| l.starts_with("health "))
        .expect("health section header");
    let mut blocks = Vec::new();
    let mut i = header + 1;
    while i < lines.len() && lines[i].starts_with("frame ") {
        let rows: usize = lines[i]
            .split(' ')
            .nth(1)
            .expect("frame line has a row count")
            .parse()
            .expect("frame row count parses");
        blocks.push((i, rows + 1));
        i += rows + 1;
    }
    blocks
}

fn to_lines(bytes: &[u8]) -> Vec<String> {
    String::from_utf8(bytes.to_vec())
        .expect("snapshot is utf-8")
        .split('\n')
        .map(str::to_string)
        .collect()
}

fn from_lines(lines: &[String]) -> Vec<u8> {
    lines.join("\n").into_bytes()
}

proptest! {
    /// Flipping any single bit anywhere in a v3 snapshot yields a typed
    /// error: header bytes feed the combined chain, rows feed their frame
    /// checkpoint, and digest/keyword lines fail to parse. Never a panic,
    /// never a silently-accepted view.
    #[test]
    fn any_single_bit_flip_is_rejected(
        health in 1usize..40,
        failures in 0usize..20,
        frame_rows in 1usize..5,
        raw_pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let view = build_view(1_000, health, failures);
        let mut bytes = snapshot_bytes(&view, frame_rows);
        let pos = raw_pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        match read_snapshot(bytes.as_slice()) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(_) => prop_assert!(
                false,
                "bit {bit} of byte {pos} flipped without being detected"
            ),
        }
    }

    /// Any truncation that loses part of the snapshot (everything short of
    /// dropping only the final newline) is rejected.
    #[test]
    fn truncation_is_rejected(
        health in 1usize..40,
        failures in 0usize..20,
        frame_rows in 1usize..5,
        raw_pos in any::<usize>(),
    ) {
        let view = build_view(1_000, health, failures);
        let mut bytes = snapshot_bytes(&view, frame_rows);
        // `len - 1` keeps `end` intact with only the newline gone, which
        // still reads; everything shorter must fail.
        bytes.truncate(raw_pos % (bytes.len() - 1));
        prop_assert!(read_snapshot(bytes.as_slice()).is_err());
    }

    /// Swapping two frames of a stream breaks the running chain at the
    /// first swapped checkpoint: the digest stored with a frame covers the
    /// whole stream prefix, so frames are position-locked.
    #[test]
    fn frame_reorder_is_a_chain_error(
        frame_rows in 1usize..5,
        extra in 0usize..4,
        failures in 0usize..10,
    ) {
        let view = build_view(1_000, frame_rows * 2 + extra, failures);
        let lines = to_lines(&snapshot_bytes(&view, frame_rows));
        let blocks = health_frame_blocks(&lines);
        prop_assert!(blocks.len() >= 2);
        let (a_start, a_len) = blocks[0];
        let (b_start, b_len) = blocks[1];
        let mut reordered: Vec<String> = lines[..a_start].to_vec();
        reordered.extend_from_slice(&lines[b_start..b_start + b_len]);
        reordered.extend_from_slice(&lines[a_start..a_start + a_len]);
        reordered.extend_from_slice(&lines[b_start + b_len..]);
        let bytes = from_lines(&reordered);
        match read_snapshot(bytes.as_slice()) {
            Err(SnapshotError::Chain { stream, .. }) => prop_assert_eq!(stream, "health"),
            other => prop_assert!(false, "reorder not caught as a chain error: {:?}", other.err()),
        }
    }

    /// Splicing a frame from another (internally consistent) snapshot into
    /// this one is caught: mid-stream the next checkpoint mismatches, and a
    /// spliced first-and-only frame shifts the stream head so the combined
    /// chain line fails instead.
    #[test]
    fn cross_snapshot_frame_splice_is_a_chain_error(
        frame_rows in 1usize..5,
        nframes in 1usize..3,
        splice_idx in any::<usize>(),
    ) {
        let count = frame_rows * nframes;
        let ours = to_lines(&snapshot_bytes(&build_view(1_000, count, 0), frame_rows));
        let theirs = to_lines(&snapshot_bytes(&build_view(500_000, count, 0), frame_rows));
        let our_blocks = health_frame_blocks(&ours);
        let their_blocks = health_frame_blocks(&theirs);
        prop_assert_eq!(our_blocks.len(), their_blocks.len());
        let k = splice_idx % our_blocks.len();
        let (o_start, o_len) = our_blocks[k];
        let (t_start, t_len) = their_blocks[k];
        let mut spliced: Vec<String> = ours[..o_start].to_vec();
        spliced.extend_from_slice(&theirs[t_start..t_start + t_len]);
        spliced.extend_from_slice(&ours[o_start + o_len..]);
        let bytes = from_lines(&spliced);
        match read_snapshot(bytes.as_slice()) {
            Err(SnapshotError::Chain { .. }) => {}
            other => prop_assert!(false, "splice not caught as a chain error: {:?}", other.err()),
        }
    }
}

/// Grafting the trailing `chain` line from another snapshot fails with a
/// combined-chain error even when every stream section is untouched.
#[test]
fn spliced_combined_chain_line_is_rejected() {
    let mut ours = to_lines(&snapshot_bytes(&build_view(1_000, 10, 5), 4));
    let theirs = to_lines(&snapshot_bytes(&build_view(500_000, 10, 5), 4));
    let chain_at = ours
        .iter()
        .position(|l| l.starts_with("chain "))
        .expect("chain line");
    let their_chain = theirs
        .iter()
        .find(|l| l.starts_with("chain "))
        .expect("chain line")
        .clone();
    assert_ne!(ours[chain_at], their_chain);
    ours[chain_at] = their_chain;
    match read_snapshot(from_lines(&ours).as_slice()) {
        Err(SnapshotError::Chain { stream, .. }) => assert_eq!(stream, "combined"),
        other => panic!("spliced chain line not caught: {:?}", other.err()),
    }
}
