//! Back-compat regression against the checked-in v1/v2 snapshot fixtures.
//!
//! The fixtures under `tests/fixtures/` at the workspace root are frozen
//! artifacts of the legacy encodings: older runs archived snapshots in
//! those formats, and the v3 codec must keep reading them forever. Each
//! test decodes a fixture, pins a sample of its content, proves the legacy
//! writer still reproduces the exact bytes, and re-encodes through v3 to
//! show legacy data survives a format upgrade byte-reproducibly.

use rsc_cluster::ids::NodeId;
use rsc_failure::modes::Severity;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::snapshot::{read_snapshot, write_snapshot, write_snapshot_legacy};
use rsc_telemetry::view::TelemetryView;

const V1_BYTES: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/snapshot_v1.snap"
));
const V2_BYTES: &[u8] = include_bytes!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/snapshot_v2.snap"
));

fn decode(bytes: &[u8]) -> TelemetryView {
    read_snapshot(bytes).expect("checked-in fixture decodes")
}

/// Content shared by both fixtures (v2 only appends to it).
fn assert_common_content(view: &TelemetryView) {
    assert_eq!(view.cluster_name(), "RSC-FIX");
    assert_eq!(view.num_nodes(), 32);
    assert_eq!(view.horizon(), SimTime::from_secs(259_200));
    assert_eq!(view.gpu_swaps(), 7);

    let jobs = view.jobs();
    assert_eq!(jobs.len(), 40);
    assert_eq!(jobs[5].gpus, 16);
    assert_eq!(jobs[5].enqueued_at, SimTime::from_secs(500));
    assert_eq!(
        jobs[5].nodes,
        vec![NodeId::new(5), NodeId::new(6)],
        "job 5 spans two nodes starting at its own index"
    );

    let health = view.health_events();
    assert_eq!(health.len(), 60);
    assert_eq!(health[0].at, SimTime::from_secs(50));
    assert_eq!(health[0].check, CheckKind::GpuAccessible);
    assert_eq!(health[0].severity, Severity::High);
    assert!(health[0].false_positive);
    assert_eq!(health[13].check, CheckKind::GpuMemory);
    assert_eq!(health[13].severity, Severity::Low);
    assert!(!health[13].false_positive);

    assert_eq!(view.exclusions().len(), 8);
    assert_eq!(view.exclusions()[3].at, SimTime::from_secs(939));

    let failures = view.ground_truth_failures();
    assert_eq!(failures.len(), 12);
    assert_eq!(failures[0].symptom, FailureSymptom::Oom);
    assert_eq!(failures[11].symptom, FailureSymptom::NcclTimeout);
    assert!(failures[0].permanent);
    assert!(!failures[11].permanent);
}

fn legacy_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut out = Vec::new();
    write_snapshot_legacy(&mut out, view).expect("in-memory write");
    out
}

fn v3_bytes(view: &TelemetryView) -> Vec<u8> {
    let mut out = Vec::new();
    write_snapshot(&mut out, view).expect("in-memory write");
    out
}

#[test]
fn v1_fixture_decodes_with_pinned_content() {
    let view = decode(V1_BYTES);
    assert_common_content(&view);
    // v1 predates the remediation-lifecycle kinds and checkpoint
    // fallbacks: only the three original node-event kinds appear.
    assert_eq!(view.node_events().len(), 10);
    assert!(view.ckpt_fallbacks().is_empty());
}

#[test]
fn v2_fixture_decodes_with_pinned_content() {
    let view = decode(V2_BYTES);
    assert_common_content(&view);
    assert_eq!(view.node_events().len(), 16);
    let fallbacks = view.ckpt_fallbacks();
    assert_eq!(fallbacks.len(), 5);
    assert_eq!(fallbacks[4].at, SimTime::from_secs(2664));
    assert_eq!(fallbacks[4].lost, SimDuration::from_secs(9000));
}

#[test]
fn legacy_writer_reproduces_fixture_bytes() {
    // The legacy writer chooses v1 when no v2 content is present and v2
    // otherwise, so a decode → re-encode cycle must reproduce each fixture
    // exactly: proof the legacy surface has not drifted.
    assert_eq!(legacy_bytes(&decode(V1_BYTES)), V1_BYTES);
    assert_eq!(legacy_bytes(&decode(V2_BYTES)), V2_BYTES);
}

#[test]
fn fixtures_upgrade_to_v3_byte_reproducibly() {
    for fixture in [V1_BYTES, V2_BYTES] {
        let view = decode(fixture);
        let upgraded = v3_bytes(&view);
        assert!(upgraded.starts_with(b"rsc-telemetry-snapshot v3"));
        let reread = read_snapshot(upgraded.as_slice()).expect("v3 re-encode reads back");
        // Byte-reproducible: encoding the re-read view again is identical,
        // and downgrading it reproduces the original fixture.
        assert_eq!(v3_bytes(&reread), upgraded);
        assert_eq!(legacy_bytes(&reread), fixture);
    }
}
