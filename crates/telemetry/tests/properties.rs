//! Property-based tests for telemetry: trace and snapshot roundtrips and
//! rolling rates.

use proptest::prelude::*;

use rsc_cluster::gpu::XidError;
use rsc_cluster::ids::{JobId, JobRunId, NodeId};
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::{ModeId, Severity};
use rsc_failure::signals::SignalKind;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::rolling::{bin_counts, rolling_rate};
use rsc_telemetry::snapshot::{read_snapshot, write_snapshot};
use rsc_telemetry::store::{ExclusionEvent, NodeEvent, NodeEventKind, TelemetryStore};
use rsc_telemetry::trace::{export_jobs, import_jobs};

fn arb_status(idx: u8) -> JobStatus {
    JobStatus::ALL[idx as usize % JobStatus::ALL.len()]
}

fn arb_qos(idx: u8) -> QosClass {
    match idx % 3 {
        0 => QosClass::Low,
        1 => QosClass::Normal,
        _ => QosClass::High,
    }
}

prop_compose! {
    fn arb_record()(
        job in 1u64..1_000_000,
        attempt in 0u32..50,
        run in prop::option::of(1u64..1000),
        gpus in 1u32..4096,
        qos_idx in 0u8..3,
        node_count in 0usize..8,
        enq in 0u64..1_000_000,
        start_offset in prop::option::of(0u64..100_000),
        runtime in 0u64..1_000_000,
        status_idx in 0u8..8,
        preempted_by in prop::option::of(1u64..1000),
        instigator in prop::option::of(1u64..1000),
    ) -> JobRecord {
        let started_at = start_offset.map(|o| SimTime::from_secs(enq + o));
        let ended_at = match started_at {
            Some(s) => s + SimDuration::from_secs(runtime),
            None => SimTime::from_secs(enq + runtime),
        };
        JobRecord {
            job: JobId::new(job),
            attempt,
            run: run.map(JobRunId::new),
            gpus,
            qos: arb_qos(qos_idx),
            nodes: (0..node_count as u32).map(NodeId::new).collect(),
            enqueued_at: SimTime::from_secs(enq),
            started_at,
            ended_at,
            status: arb_status(status_idx),
            preempted_by: preempted_by.map(JobId::new),
            instigator: instigator.map(JobId::new),
        }
    }
}

proptest! {
    /// Any set of records survives a CSV export/import roundtrip exactly.
    #[test]
    fn trace_roundtrip(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut buf = Vec::new();
        export_jobs(&mut buf, &records).expect("in-memory write");
        let back = import_jobs(std::io::BufReader::new(buf.as_slice())).expect("parse");
        prop_assert_eq!(back, records);
    }

    /// Rolling rates are non-negative and conserve events against the
    /// direct bin counts.
    #[test]
    fn rolling_rate_consistency(
        times_raw in prop::collection::vec(0u64..100u64, 0..200),
        window_days in 1u64..30,
        nodes in 1u32..100,
    ) {
        let mut times: Vec<SimTime> = times_raw.iter().map(|&d| SimTime::from_days(d)).collect();
        times.sort();
        let horizon = SimTime::from_days(100);
        let series = rolling_rate(
            &times,
            horizon,
            SimDuration::from_days(window_days),
            SimDuration::from_days(1),
            nodes,
        );
        for p in &series {
            prop_assert!(p.value >= 0.0);
            // A window can never hold more than every event.
            prop_assert!(
                p.value <= times.len() as f64 / (window_days as f64 * nodes as f64) + 1e-9
            );
        }
        let counts = bin_counts(&times, horizon, SimDuration::from_days(1));
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, times.len());
    }
}

fn arb_signal(idx: u8, code: u16) -> SignalKind {
    const NAMED: [XidError; 6] = [
        XidError::DoubleBitEcc,
        XidError::RowRemapFailure,
        XidError::NvlinkError,
        XidError::FallenOffBus,
        XidError::GspTimeout,
        XidError::MemoryPageFault,
    ];
    match idx % 13 {
        0 => SignalKind::Xid(NAMED[code as usize % NAMED.len()]),
        1 => SignalKind::Xid(XidError::Other(code)),
        2 => SignalKind::PcieError,
        3 => SignalKind::IpmiCriticalInterrupt,
        4 => SignalKind::IbLinkError,
        5 => SignalKind::EthLinkError,
        6 => SignalKind::FsMountMissing,
        7 => SignalKind::MainMemoryError,
        8 => SignalKind::ServiceFailure,
        9 => SignalKind::BlockDeviceError,
        10 => SignalKind::NodeUnresponsive,
        11 => SignalKind::PowerFault,
        _ => SignalKind::ThermalWarning,
    }
}

prop_compose! {
    fn arb_health()(
        at in 0u64..10_000_000,
        node in 0u32..4096,
        check_idx in 0usize..CheckKind::ALL.len(),
        high in any::<bool>(),
        signal in prop::option::of((0u8..13, 0u16..200)),
        false_positive in any::<bool>(),
    ) -> HealthEvent {
        HealthEvent {
            at: SimTime::from_secs(at),
            node: NodeId::new(node),
            check: CheckKind::ALL[check_idx],
            severity: if high { Severity::High } else { Severity::Low },
            signal: signal.map(|(idx, code)| arb_signal(idx, code)),
            false_positive,
        }
    }
}

prop_compose! {
    fn arb_node_event()(
        at in 0u64..10_000_000,
        node in 0u32..4096,
        kind_idx in 0u8..3,
    ) -> NodeEvent {
        NodeEvent {
            node: NodeId::new(node),
            at: SimTime::from_secs(at),
            kind: match kind_idx {
                0 => NodeEventKind::Drain,
                1 => NodeEventKind::EnterRemediation,
                _ => NodeEventKind::ExitRemediation,
            },
        }
    }
}

prop_compose! {
    fn arb_exclusion()(
        at in 0u64..10_000_000,
        node in 0u32..4096,
        job in 1u64..1_000_000,
    ) -> ExclusionEvent {
        ExclusionEvent {
            node: NodeId::new(node),
            job: JobId::new(job),
            at: SimTime::from_secs(at),
        }
    }
}

prop_compose! {
    fn arb_failure()(
        at in 0u64..10_000_000,
        node in 0u32..4096,
        mode in 0usize..40,
        symptom_idx in 0usize..FailureSymptom::ALL.len(),
        permanent in any::<bool>(),
    ) -> FailureEvent {
        FailureEvent {
            at: SimTime::from_secs(at),
            node: NodeId::new(node),
            mode: ModeId(mode),
            symptom: FailureSymptom::ALL[symptom_idx],
            permanent,
        }
    }
}

proptest! {
    /// Any telemetry content — all five streams plus the scalars —
    /// survives a snapshot write/read roundtrip exactly, and the
    /// serialization is canonical (write → read → write is byte-stable).
    #[test]
    fn snapshot_roundtrip_all_streams(
        name in "[a-zA-Z0-9_/.-]{0,24}",
        num_nodes in 1u32..5000,
        horizon in 0u64..100_000_000,
        gpu_swaps in 0u64..10_000,
        jobs in prop::collection::vec(arb_record(), 0..20),
        health in prop::collection::vec(arb_health(), 0..30),
        node_events in prop::collection::vec(arb_node_event(), 0..20),
        exclusions in prop::collection::vec(arb_exclusion(), 0..20),
        failures in prop::collection::vec(arb_failure(), 0..20),
    ) {
        let mut store = TelemetryStore::new(&name, num_nodes);
        store.extend_jobs(jobs);
        for e in health { store.push_health_event(e); }
        for e in node_events { store.push_node_event(e); }
        for e in exclusions { store.push_exclusion(e); }
        for e in failures { store.push_ground_truth(e); }
        store.set_horizon(SimTime::from_secs(horizon));
        store.set_gpu_swaps(gpu_swaps);
        let view = store.seal();

        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &view).expect("in-memory write");
        let back = read_snapshot(bytes.as_slice()).expect("parse own output");

        prop_assert_eq!(back.cluster_name(), view.cluster_name());
        prop_assert_eq!(back.num_nodes(), view.num_nodes());
        prop_assert_eq!(back.horizon(), view.horizon());
        prop_assert_eq!(back.gpu_swaps(), view.gpu_swaps());
        prop_assert_eq!(back.jobs(), view.jobs());
        prop_assert_eq!(back.health_events(), view.health_events());
        prop_assert_eq!(back.node_events(), view.node_events());
        prop_assert_eq!(back.exclusions(), view.exclusions());
        prop_assert_eq!(back.ground_truth_failures(), view.ground_truth_failures());

        let mut again = Vec::new();
        write_snapshot(&mut again, &back).expect("rewrite");
        prop_assert_eq!(again, bytes);
    }

    /// Arbitrary garbage — including mutated valid snapshots — must parse
    /// to a clean error or a view, never panic.
    #[test]
    fn snapshot_reader_never_panics(
        prefix_len in 0usize..400,
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut store = TelemetryStore::new("fuzz", 8);
        store.set_horizon(SimTime::from_days(1));
        let view = store.seal();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &view).expect("in-memory write");
        bytes.truncate(prefix_len.min(bytes.len()));
        bytes.extend_from_slice(&garbage);
        let _ = read_snapshot(bytes.as_slice());
    }
}
