//! Property-based tests for telemetry: trace roundtrip and rolling rates.

use proptest::prelude::*;

use rsc_cluster::ids::{JobId, JobRunId, NodeId};
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::rolling::{bin_counts, rolling_rate};
use rsc_telemetry::trace::{export_jobs, import_jobs};

fn arb_status(idx: u8) -> JobStatus {
    JobStatus::ALL[idx as usize % JobStatus::ALL.len()]
}

fn arb_qos(idx: u8) -> QosClass {
    match idx % 3 {
        0 => QosClass::Low,
        1 => QosClass::Normal,
        _ => QosClass::High,
    }
}

prop_compose! {
    fn arb_record()(
        job in 1u64..1_000_000,
        attempt in 0u32..50,
        run in prop::option::of(1u64..1000),
        gpus in 1u32..4096,
        qos_idx in 0u8..3,
        node_count in 0usize..8,
        enq in 0u64..1_000_000,
        start_offset in prop::option::of(0u64..100_000),
        runtime in 0u64..1_000_000,
        status_idx in 0u8..8,
        preempted_by in prop::option::of(1u64..1000),
        instigator in prop::option::of(1u64..1000),
    ) -> JobRecord {
        let started_at = start_offset.map(|o| SimTime::from_secs(enq + o));
        let ended_at = match started_at {
            Some(s) => s + SimDuration::from_secs(runtime),
            None => SimTime::from_secs(enq + runtime),
        };
        JobRecord {
            job: JobId::new(job),
            attempt,
            run: run.map(JobRunId::new),
            gpus,
            qos: arb_qos(qos_idx),
            nodes: (0..node_count as u32).map(NodeId::new).collect(),
            enqueued_at: SimTime::from_secs(enq),
            started_at,
            ended_at,
            status: arb_status(status_idx),
            preempted_by: preempted_by.map(JobId::new),
            instigator: instigator.map(JobId::new),
        }
    }
}

proptest! {
    /// Any set of records survives a CSV export/import roundtrip exactly.
    #[test]
    fn trace_roundtrip(records in prop::collection::vec(arb_record(), 0..50)) {
        let mut buf = Vec::new();
        export_jobs(&mut buf, &records).expect("in-memory write");
        let back = import_jobs(std::io::BufReader::new(buf.as_slice())).expect("parse");
        prop_assert_eq!(back, records);
    }

    /// Rolling rates are non-negative and conserve events against the
    /// direct bin counts.
    #[test]
    fn rolling_rate_consistency(
        times_raw in prop::collection::vec(0u64..100u64, 0..200),
        window_days in 1u64..30,
        nodes in 1u32..100,
    ) {
        let mut times: Vec<SimTime> = times_raw.iter().map(|&d| SimTime::from_days(d)).collect();
        times.sort();
        let horizon = SimTime::from_days(100);
        let series = rolling_rate(
            &times,
            horizon,
            SimDuration::from_days(window_days),
            SimDuration::from_days(1),
            nodes,
        );
        for p in &series {
            prop_assert!(p.value >= 0.0);
            // A window can never hold more than every event.
            prop_assert!(
                p.value <= times.len() as f64 / (window_days as f64 * nodes as f64) + 1e-9
            );
        }
        let counts = bin_counts(&times, horizon, SimDuration::from_days(1));
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, times.len());
    }
}
