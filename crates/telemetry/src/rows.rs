//! Row-level text codecs for telemetry records.
//!
//! One encoder/decoder pair per stream, shared by every place a record
//! crosses a byte boundary: the versioned snapshot ([`crate::snapshot`],
//! all three format versions) and the background spill files the
//! segmented store writes ([`crate::store`]). Keeping them in one module
//! is what guarantees a spilled segment reloads to exactly the records
//! that were hashed into its seal.
//!
//! Decoders return a plain `String` message; callers attach location
//! context (snapshot line numbers, spill file paths).

use rsc_cluster::gpu::XidError;
use rsc_cluster::ids::{JobId, NodeId};
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::{ModeId, Severity};
use rsc_failure::signals::SignalKind;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::store::{
    CheckpointFallbackEvent, ControlActionEvent, ControlActionKind, ControlTrigger, ExclusionEvent,
    NodeEvent, NodeEventKind,
};
use crate::trace::{format_job_row, parse_job_row};

pub(crate) fn severity_label(s: Severity) -> &'static str {
    match s {
        Severity::High => "high",
        Severity::Low => "low",
    }
}

fn parse_severity(s: &str) -> Option<Severity> {
    match s {
        "high" => Some(Severity::High),
        "low" => Some(Severity::Low),
        _ => None,
    }
}

/// Lossless signal tag. Named XID variants encode as `xid<code>`; the
/// catch-all [`XidError::Other`] encodes as `xido<code>` so that e.g.
/// `Other(48)` and `DoubleBitEcc` (also code 48) stay distinct.
pub(crate) fn signal_tag(s: SignalKind) -> String {
    match s {
        SignalKind::Xid(XidError::Other(code)) => format!("xido{code}"),
        SignalKind::Xid(x) => format!("xid{}", x.code()),
        other => other.label(),
    }
}

pub(crate) fn parse_signal(s: &str) -> Option<SignalKind> {
    match s {
        "pcie_err" => return Some(SignalKind::PcieError),
        "ipmi_critical" => return Some(SignalKind::IpmiCriticalInterrupt),
        "ib_link_err" => return Some(SignalKind::IbLinkError),
        "eth_link_err" => return Some(SignalKind::EthLinkError),
        "fs_mount_missing" => return Some(SignalKind::FsMountMissing),
        "dram_ue" => return Some(SignalKind::MainMemoryError),
        "service_down" => return Some(SignalKind::ServiceFailure),
        "blockdev_err" => return Some(SignalKind::BlockDeviceError),
        "unresponsive" => return Some(SignalKind::NodeUnresponsive),
        "power_fault" => return Some(SignalKind::PowerFault),
        "thermal_warn" => return Some(SignalKind::ThermalWarning),
        _ => {}
    }
    if let Some(code) = s.strip_prefix("xido") {
        return code
            .parse::<u16>()
            .ok()
            .map(|c| SignalKind::Xid(XidError::Other(c)));
    }
    if let Some(code) = s.strip_prefix("xid") {
        let xid = match code.parse::<u16>().ok()? {
            48 => XidError::DoubleBitEcc,
            64 => XidError::RowRemapFailure,
            74 => XidError::NvlinkError,
            79 => XidError::FallenOffBus,
            119 => XidError::GspTimeout,
            31 => XidError::MemoryPageFault,
            _ => return None,
        };
        return Some(SignalKind::Xid(xid));
    }
    None
}

fn parse_check(s: &str) -> Option<CheckKind> {
    CheckKind::ALL.iter().copied().find(|c| c.label() == s)
}

fn parse_symptom(s: &str) -> Option<FailureSymptom> {
    FailureSymptom::ALL.iter().copied().find(|x| x.label() == s)
}

pub(crate) fn node_event_kind_label(k: NodeEventKind) -> &'static str {
    match k {
        NodeEventKind::Drain => "drain",
        NodeEventKind::EnterRemediation => "enter_remediation",
        NodeEventKind::ExitRemediation => "exit_remediation",
        NodeEventKind::RepairAttemptFailed => "repair_attempt_failed",
        NodeEventKind::RepairEscalated => "repair_escalated",
        NodeEventKind::EnterProbation => "enter_probation",
        NodeEventKind::ProbationPassed => "probation_passed",
        NodeEventKind::ProbationFailed => "probation_failed",
        NodeEventKind::Quarantined => "quarantined",
    }
}

/// Version-gated kind parser: the v1 vocabulary rejects lifecycle kinds.
/// Versions ≥ 2 (and the spill files, which always use the current
/// vocabulary) accept everything.
pub(crate) fn parse_node_event_kind(s: &str, version: u32) -> Option<NodeEventKind> {
    match s {
        "drain" => Some(NodeEventKind::Drain),
        "enter_remediation" => Some(NodeEventKind::EnterRemediation),
        "exit_remediation" => Some(NodeEventKind::ExitRemediation),
        _ if version < 2 => None,
        "repair_attempt_failed" => Some(NodeEventKind::RepairAttemptFailed),
        "repair_escalated" => Some(NodeEventKind::RepairEscalated),
        "enter_probation" => Some(NodeEventKind::EnterProbation),
        "probation_passed" => Some(NodeEventKind::ProbationPassed),
        "probation_failed" => Some(NodeEventKind::ProbationFailed),
        "quarantined" => Some(NodeEventKind::Quarantined),
        _ => None,
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("bad {what}: {s:?}"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad bool: {s:?}")),
    }
}

fn split_fields<'a>(row: &'a str, n: usize, what: &str) -> Result<Vec<&'a str>, String> {
    let fields: Vec<&str> = row.split(',').collect();
    if fields.len() != n {
        return Err(format!("{what} row needs {n} fields, got {}", fields.len()));
    }
    Ok(fields)
}

pub(crate) fn encode_job(r: &JobRecord) -> String {
    format_job_row(r)
}

pub(crate) fn decode_job(row: &str) -> Result<JobRecord, String> {
    parse_job_row(row, 0).map_err(|e| format!("bad job row: {}", e.message))
}

pub(crate) fn encode_health(e: &HealthEvent) -> String {
    format!(
        "{},{},{},{},{},{}",
        e.at.as_secs(),
        e.node.index(),
        e.check.label(),
        severity_label(e.severity),
        e.signal.map(signal_tag).unwrap_or_default(),
        u8::from(e.false_positive),
    )
}

pub(crate) fn decode_health(row: &str) -> Result<HealthEvent, String> {
    let fields = split_fields(row, 6, "health")?;
    let signal = if fields[4].is_empty() {
        None
    } else {
        Some(parse_signal(fields[4]).ok_or_else(|| format!("bad signal: {:?}", fields[4]))?)
    };
    Ok(HealthEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        node: NodeId::new(parse_u64(fields[1], "node")? as u32),
        check: parse_check(fields[2]).ok_or_else(|| format!("bad check: {:?}", fields[2]))?,
        severity: parse_severity(fields[3])
            .ok_or_else(|| format!("bad severity: {:?}", fields[3]))?,
        signal,
        false_positive: parse_bool(fields[5])?,
    })
}

pub(crate) fn encode_node_event(e: &NodeEvent) -> String {
    format!(
        "{},{},{}",
        e.at.as_secs(),
        e.node.index(),
        node_event_kind_label(e.kind),
    )
}

pub(crate) fn decode_node_event(row: &str, version: u32) -> Result<NodeEvent, String> {
    let fields = split_fields(row, 3, "node_event")?;
    Ok(NodeEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        node: NodeId::new(parse_u64(fields[1], "node")? as u32),
        kind: parse_node_event_kind(fields[2], version)
            .ok_or_else(|| format!("bad node event kind: {:?}", fields[2]))?,
    })
}

pub(crate) fn encode_exclusion(e: &ExclusionEvent) -> String {
    format!("{},{},{}", e.at.as_secs(), e.node.index(), e.job.raw())
}

pub(crate) fn decode_exclusion(row: &str) -> Result<ExclusionEvent, String> {
    let fields = split_fields(row, 3, "exclusion")?;
    Ok(ExclusionEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        node: NodeId::new(parse_u64(fields[1], "node")? as u32),
        job: JobId::new(parse_u64(fields[2], "job")?),
    })
}

pub(crate) fn encode_failure(e: &FailureEvent) -> String {
    format!(
        "{},{},{},{},{}",
        e.at.as_secs(),
        e.node.index(),
        e.mode.0,
        e.symptom.label(),
        u8::from(e.permanent),
    )
}

pub(crate) fn decode_failure(row: &str) -> Result<FailureEvent, String> {
    let fields = split_fields(row, 5, "failure")?;
    Ok(FailureEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        node: NodeId::new(parse_u64(fields[1], "node")? as u32),
        mode: ModeId(parse_u64(fields[2], "mode")? as usize),
        symptom: parse_symptom(fields[3]).ok_or_else(|| format!("bad symptom: {:?}", fields[3]))?,
        permanent: parse_bool(fields[4])?,
    })
}

pub(crate) fn encode_ckpt_fallback(e: &CheckpointFallbackEvent) -> String {
    format!(
        "{},{},{},{},{}",
        e.at.as_secs(),
        e.job.raw(),
        e.gpus,
        e.intervals,
        e.lost.as_secs(),
    )
}

pub(crate) fn decode_ckpt_fallback(row: &str) -> Result<CheckpointFallbackEvent, String> {
    let fields = split_fields(row, 5, "ckpt_fallback")?;
    Ok(CheckpointFallbackEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        job: JobId::new(parse_u64(fields[1], "job")?),
        gpus: parse_u64(fields[2], "gpus")? as u32,
        intervals: parse_u64(fields[3], "intervals")? as u32,
        lost: SimDuration::from_secs(parse_u64(fields[4], "lost")?),
    })
}

fn parse_control_action_kind(s: &str) -> Option<ControlActionKind> {
    match s {
        "remediate_node" => Some(ControlActionKind::RemediateNode),
        "quarantine_node" => Some(ControlActionKind::QuarantineNode),
        "release_node" => Some(ControlActionKind::ReleaseNode),
        "adaptive_routing" => Some(ControlActionKind::AdaptiveRouting),
        "restore_routing" => Some(ControlActionKind::RestoreRouting),
        "retune_checkpoint" => Some(ControlActionKind::RetuneCheckpoint),
        _ => None,
    }
}

fn parse_control_trigger(s: &str) -> Option<ControlTrigger> {
    match s {
        "lemon_suspect" => Some(ControlTrigger::LemonSuspect),
        "mttf_regression" => Some(ControlTrigger::MttfRegression),
        "quarantine_surge" => Some(ControlTrigger::QuarantineSurge),
        "controller" => Some(ControlTrigger::Controller),
        _ => None,
    }
}

pub(crate) fn encode_control_action(e: &ControlActionEvent) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        e.at.as_secs(),
        e.kind.label(),
        e.trigger.label(),
        e.node.map(|n| n.index().to_string()).unwrap_or_default(),
        e.job.map(|j| j.raw().to_string()).unwrap_or_default(),
        u8::from(e.accepted),
        e.value,
    )
}

pub(crate) fn decode_control_action(row: &str) -> Result<ControlActionEvent, String> {
    let fields = split_fields(row, 7, "control_action")?;
    let node = if fields[3].is_empty() {
        None
    } else {
        Some(NodeId::new(parse_u64(fields[3], "node")? as u32))
    };
    let job = if fields[4].is_empty() {
        None
    } else {
        Some(JobId::new(parse_u64(fields[4], "job")?))
    };
    Ok(ControlActionEvent {
        at: SimTime::from_secs(parse_u64(fields[0], "time")?),
        kind: parse_control_action_kind(fields[1])
            .ok_or_else(|| format!("bad control action kind: {:?}", fields[1]))?,
        trigger: parse_control_trigger(fields[2])
            .ok_or_else(|| format!("bad control trigger: {:?}", fields[2]))?,
        node,
        job,
        accepted: parse_bool(fields[5])?,
        value: parse_u64(fields[6], "value")?,
    })
}
