//! Rolling-window rate series (paper Fig. 5: 30-day rolling average of the
//! per-node-day failure rate, by failure mode).

use rsc_sim_core::time::{SimDuration, SimTime};

/// A `(day, value)` time series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Day index of the evaluation point.
    pub day: f64,
    /// Value at that day (e.g. failures per node-day).
    pub value: f64,
}

/// Computes a rolling-average *event rate* over time.
///
/// For each step `t` in `[window, horizon]`, the value is
/// `count(events in (t - window, t]) / (window_days × num_nodes)` — i.e.
/// events per node-day, matching the paper's normalization.
///
/// `times` must be sorted ascending.
///
/// # Panics
///
/// Panics if `window` or `step` is zero, or `num_nodes` is zero.
pub fn rolling_rate(
    times: &[SimTime],
    horizon: SimTime,
    window: SimDuration,
    step: SimDuration,
    num_nodes: u32,
) -> Vec<SeriesPoint> {
    assert!(
        !window.is_zero() && !step.is_zero(),
        "window and step must be positive"
    );
    assert!(num_nodes > 0, "num_nodes must be positive");
    debug_assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "times must be sorted"
    );

    let denom = window.as_days() * num_nodes as f64;
    let mut out = Vec::new();
    let mut t = SimTime::ZERO + window;
    let mut lo = 0usize; // first event index with time > t - window
    let mut hi = 0usize; // first event index with time > t
    while t <= horizon {
        let from = t - window;
        while lo < times.len() && times[lo] <= from {
            lo += 1;
        }
        while hi < times.len() && times[hi] <= t {
            hi += 1;
        }
        out.push(SeriesPoint {
            day: t.as_days(),
            value: (hi - lo) as f64 / denom,
        });
        t += step;
    }
    out
}

/// Buckets event times into fixed-width bins, returning counts per bin —
/// the building block for per-mode stacked series.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn bin_counts(times: &[SimTime], horizon: SimTime, bin: SimDuration) -> Vec<u64> {
    assert!(!bin.is_zero(), "bin must be positive");
    let nbins = horizon.as_secs().div_ceil(bin.as_secs()).max(1) as usize;
    let mut counts = vec![0u64; nbins];
    for &t in times {
        if t > horizon {
            continue;
        }
        let idx = ((t.as_secs() / bin.as_secs()) as usize).min(nbins - 1);
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_yields_flat_series() {
        // One event per node-day on 10 nodes → 10 events/day for 100 days.
        let times: Vec<SimTime> = (0..1000)
            .map(|i| SimTime::from_secs(i * 8640 + 1))
            .collect();
        let series = rolling_rate(
            &times,
            SimTime::from_days(100),
            SimDuration::from_days(30),
            SimDuration::from_days(1),
            10,
        );
        assert!(!series.is_empty());
        for p in &series {
            assert!(
                (p.value - 1.0).abs() < 0.05,
                "day={} value={}",
                p.day,
                p.value
            );
        }
    }

    #[test]
    fn spike_appears_and_decays() {
        // Background zero, burst of 300 events on day 50, 10 nodes,
        // 30-day window → window containing the burst reads 1/node-day.
        let times: Vec<SimTime> = (0..300)
            .map(|i| SimTime::from_secs(50 * 86_400 + i))
            .collect();
        let series = rolling_rate(
            &times,
            SimTime::from_days(100),
            SimDuration::from_days(30),
            SimDuration::from_days(1),
            10,
        );
        let at = |day: f64| {
            series
                .iter()
                .find(|p| (p.day - day).abs() < 0.5)
                .unwrap()
                .value
        };
        assert_eq!(at(45.0), 0.0);
        assert!((at(60.0) - 1.0).abs() < 1e-9);
        assert_eq!(at(85.0), 0.0); // window slid past the burst
    }

    #[test]
    fn bin_counts_cover_horizon() {
        let times = vec![
            SimTime::from_days(0),
            SimTime::from_days(1),
            SimTime::from_secs(86_400 + 1),
            SimTime::from_days(9),
        ];
        let counts = bin_counts(&times, SimTime::from_days(10), SimDuration::from_days(1));
        assert_eq!(counts.len(), 10);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
        assert_eq!(counts.iter().sum::<u64>(), 4);
    }

    #[test]
    fn events_beyond_horizon_ignored() {
        let times = vec![SimTime::from_days(20)];
        let counts = bin_counts(&times, SimTime::from_days(10), SimDuration::from_days(1));
        assert_eq!(counts.iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "window and step")]
    fn zero_window_rejected() {
        let _ = rolling_rate(
            &[],
            SimTime::from_days(1),
            SimDuration::ZERO,
            SimDuration::from_days(1),
            1,
        );
    }
}
