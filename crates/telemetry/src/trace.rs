//! Job-trace export/import in a `sacct`-like CSV schema.
//!
//! The analysis crates only need [`JobRecord`]s, so operators can run the
//! paper's pipeline on *real* accounting data by converting it to this
//! schema — or export simulated telemetry for external tooling.
//!
//! Columns: `job,attempt,run,gpus,qos,nodes,enqueued_at,started_at,
//! ended_at,status,preempted_by,instigator` with times in integer seconds,
//! `nodes` as `;`-separated indices, and empty fields for `None`.

use std::fmt;
use std::io::{self, BufRead, Write};

use rsc_cluster::ids::{JobId, JobRunId, NodeId};
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::SimTime;

use crate::csv::format_row;

/// Error from parsing a job-trace CSV.
#[derive(Debug)]
pub struct ParseTraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// The CSV header row.
pub const TRACE_HEADER: [&str; 12] = [
    "job",
    "attempt",
    "run",
    "gpus",
    "qos",
    "nodes",
    "enqueued_at",
    "started_at",
    "ended_at",
    "status",
    "preempted_by",
    "instigator",
];

fn status_label(status: JobStatus) -> &'static str {
    status.label()
}

fn parse_status(s: &str) -> Option<JobStatus> {
    JobStatus::ALL.iter().copied().find(|st| st.label() == s)
}

fn qos_label(qos: QosClass) -> &'static str {
    match qos {
        QosClass::Low => "low",
        QosClass::Normal => "normal",
        QosClass::High => "high",
    }
}

fn parse_qos(s: &str) -> Option<QosClass> {
    match s {
        "low" => Some(QosClass::Low),
        "normal" => Some(QosClass::Normal),
        "high" => Some(QosClass::High),
        _ => None,
    }
}

/// Formats one record as a trace CSV row (no trailing newline).
///
/// Shared by [`export_jobs`] and the snapshot codec
/// ([`crate::snapshot`]) so both serialize jobs byte-identically.
pub fn format_job_row(r: &JobRecord) -> String {
    let nodes = r
        .nodes
        .iter()
        .map(|n| n.index().to_string())
        .collect::<Vec<_>>()
        .join(";");
    let row = [
        r.job.raw().to_string(),
        r.attempt.to_string(),
        r.run.map(|x| x.raw().to_string()).unwrap_or_default(),
        r.gpus.to_string(),
        qos_label(r.qos).to_string(),
        nodes,
        r.enqueued_at.as_secs().to_string(),
        r.started_at
            .map(|t| t.as_secs().to_string())
            .unwrap_or_default(),
        r.ended_at.as_secs().to_string(),
        status_label(r.status).to_string(),
        r.preempted_by
            .map(|x| x.raw().to_string())
            .unwrap_or_default(),
        r.instigator
            .map(|x| x.raw().to_string())
            .unwrap_or_default(),
    ];
    format_row(row.iter().map(|s| s.as_str()))
}

/// Writes job records as a trace CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn export_jobs<W: Write>(w: &mut W, records: &[JobRecord]) -> io::Result<()> {
    writeln!(w, "{}", format_row(TRACE_HEADER.iter().copied()))?;
    for r in records {
        writeln!(w, "{}", format_job_row(r))?;
    }
    Ok(())
}

/// Parses one trace CSV row into a record; `line_no` is the 1-based line
/// number reported in errors.
///
/// # Errors
///
/// Returns [`ParseTraceError`] when the row is malformed.
pub fn parse_job_row(line: &str, line_no: usize) -> Result<JobRecord, ParseTraceError> {
    let fields: Vec<&str> = line.split(',').collect();
    let err = |message: &str| ParseTraceError {
        line: line_no,
        message: message.to_string(),
    };
    if fields.len() != TRACE_HEADER.len() {
        return Err(err(&format!(
            "expected {} fields, got {}",
            TRACE_HEADER.len(),
            fields.len()
        )));
    }
    let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
        s.parse::<u64>()
            .map_err(|_| err(&format!("bad {what}: {s:?}")))
    };
    let opt_u64 = |s: &str, what: &str| -> Result<Option<u64>, ParseTraceError> {
        if s.is_empty() {
            Ok(None)
        } else {
            parse_u64(s, what).map(Some)
        }
    };
    let nodes = if fields[5].is_empty() {
        Vec::new()
    } else {
        fields[5]
            .split(';')
            .map(|s| parse_u64(s, "node id").map(|v| NodeId::new(v as u32)))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(JobRecord {
        job: JobId::new(parse_u64(fields[0], "job id")?),
        attempt: parse_u64(fields[1], "attempt")? as u32,
        run: opt_u64(fields[2], "run id")?.map(JobRunId::new),
        gpus: parse_u64(fields[3], "gpus")? as u32,
        qos: parse_qos(fields[4]).ok_or_else(|| err(&format!("bad qos: {:?}", fields[4])))?,
        nodes,
        enqueued_at: SimTime::from_secs(parse_u64(fields[6], "enqueued_at")?),
        started_at: opt_u64(fields[7], "started_at")?.map(SimTime::from_secs),
        ended_at: SimTime::from_secs(parse_u64(fields[8], "ended_at")?),
        status: parse_status(fields[9])
            .ok_or_else(|| err(&format!("bad status: {:?}", fields[9])))?,
        preempted_by: opt_u64(fields[10], "preempted_by")?.map(JobId::new),
        instigator: opt_u64(fields[11], "instigator")?.map(JobId::new),
    })
}

/// Reads job records from a trace CSV (header row required).
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed rows; I/O errors surface as a
/// parse error carrying the underlying message.
pub fn import_jobs<R: BufRead>(r: R) -> Result<Vec<JobRecord>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: i + 1,
            message: e.to_string(),
        })?;
        if i == 0 {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_job_row(&line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn record(id: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            job: JobId::new(id),
            attempt: 2,
            run: Some(JobRunId::new(7)),
            gpus: 16,
            qos: QosClass::High,
            nodes: vec![NodeId::new(3), NodeId::new(4)],
            enqueued_at: SimTime::from_secs(100),
            started_at: Some(SimTime::from_secs(160)),
            ended_at: SimTime::from_secs(4000),
            status,
            preempted_by: None,
            instigator: Some(JobId::new(99)),
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = vec![
            record(1, JobStatus::Completed),
            record(2, JobStatus::NodeFail),
            JobRecord {
                run: None,
                started_at: None,
                nodes: Vec::new(),
                instigator: None,
                ..record(3, JobStatus::Cancelled)
            },
        ];
        let mut buf = Vec::new();
        export_jobs(&mut buf, &records).unwrap();
        let back = import_jobs(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        let text = "job,attempt,run,gpus,qos,nodes,enqueued_at,started_at,ended_at,status,preempted_by,instigator\n1,0,,8,weird,0,0,0,10,COMPLETED,,\n";
        let e = import_jobs(BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bad qos"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "h\n1,2,3\n";
        let e = import_jobs(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(e.message.contains("expected 12 fields"));
    }

    #[test]
    fn all_statuses_roundtrip() {
        for status in JobStatus::ALL {
            assert_eq!(parse_status(status.label()), Some(status));
        }
    }
}
