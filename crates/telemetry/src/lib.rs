#![warn(missing_docs)]

//! Telemetry collection and querying for the `rsc-reliability` workspace.
//!
//! A [`store::TelemetryStore`] gathers everything a simulated cluster run
//! logs — job accounting records, health-check events, node lifecycle
//! transitions, user node exclusions, and the ground-truth failure stream —
//! and offers the time-window queries the analyses in `rsc-core` are built
//! on. [`rolling`] provides the 30-day rolling failure-rate series behind
//! the paper's Fig. 5, [`csv`] a dependency-free CSV exporter, and
//! [`trace`] a `sacct`-like job-trace schema so the analyses can run over
//! real accounting data.
//!
//! # Example
//!
//! ```
//! use rsc_telemetry::rolling::rolling_rate;
//! use rsc_sim_core::time::{SimDuration, SimTime};
//!
//! let failures = vec![SimTime::from_days(10), SimTime::from_days(12)];
//! let series = rolling_rate(
//!     &failures,
//!     SimTime::from_days(60),
//!     SimDuration::from_days(30),
//!     SimDuration::from_days(5),
//!     100,
//! );
//! assert!(!series.is_empty());
//! ```

pub mod csv;
pub mod rolling;
pub mod store;
pub mod trace;

pub use store::{ExclusionEvent, NodeEvent, NodeEventKind, TelemetryStore};
