#![warn(missing_docs)]

//! Telemetry collection and querying for the `rsc-reliability` workspace.
//!
//! A [`store::TelemetryStore`] gathers everything a simulated cluster run
//! logs — job accounting records, health-check events, node lifecycle
//! transitions, user node exclusions, and the ground-truth failure stream —
//! and seals into an immutable [`view::TelemetryView`] with the per-node,
//! time-sorted indexes the analyses in `rsc-core` are built on — window
//! queries on a sealed view are `&self` binary searches, so one run can be
//! shared across analyses and threads. [`snapshot`] persists a sealed view
//! to disk in a versioned, hand-rolled text format (the scenario cache's
//! artifact), [`rolling`] provides the 30-day rolling failure-rate series
//! behind the paper's Fig. 5, [`csv`] a dependency-free CSV exporter, and
//! [`trace`] a `sacct`-like job-trace schema so the analyses can run over
//! real accounting data.
//!
//! # Example
//!
//! ```
//! use rsc_telemetry::rolling::rolling_rate;
//! use rsc_sim_core::time::{SimDuration, SimTime};
//!
//! let failures = vec![SimTime::from_days(10), SimTime::from_days(12)];
//! let series = rolling_rate(
//!     &failures,
//!     SimTime::from_days(60),
//!     SimDuration::from_days(30),
//!     SimDuration::from_days(5),
//!     100,
//! );
//! assert!(!series.is_empty());
//! ```

pub mod chain;
pub mod csv;
pub mod rolling;
mod rows;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod trace;
pub mod view;

pub use chain::{ChainHasher, ChainRecord, GENESIS};
pub use segment::{Cursor, SegmentSeal, SegmentedLog, DEFAULT_SEGMENT_CAPACITY};
pub use store::{
    CheckpointFallbackEvent, ControlActionEvent, ControlActionKind, ControlTrigger, ExclusionEvent,
    NodeEvent, NodeEventKind, SegmentStats, TelemetryStore, MIN_BUDGET_CAPACITY,
};
pub use view::TelemetryView;
