//! Fixed-capacity, hash-chained segments for one telemetry stream.
//!
//! A [`SegmentedLog`] keeps its records in one contiguous `Vec` and makes
//! the segments *logical*: every `capacity` appends the log *rotates* —
//! the newest `capacity` records are folded into the stream's running
//! [`ChainHasher`] in one batch and a [`SegmentSeal`] checkpoints the
//! chain. Hashing in batch at rotation (rather than per append) keeps the
//! simulation hot path free of hashing while producing digests identical
//! to per-record hashing, because [`ChainHasher::digest`] is
//! non-destructive. Because segmentation is only bookkeeping over a flat
//! `Vec`, sealing a never-spilled log hands the storage over without
//! copying a record.
//!
//! Segments become *physical* only under spilling: the owner takes each
//! sealed segment's records off the front of the log
//! ([`Self::take_segment`]), bounding peak resident telemetry by the
//! segment capacity. The seal retains the full hasher state at segment
//! start so a reloaded segment can be re-verified against its checkpoint.
//!
//! [`Self::take_segment`]: SegmentedLog::take_segment

use std::time::Instant;

use crate::chain::{ChainHasher, ChainRecord, GENESIS};

/// Default records per segment (per stream) used by the telemetry store.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 65_536;

/// Seal of one rotated segment: a checkpoint of the stream chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSeal {
    /// Ordinal of the segment within its stream (0-based).
    pub index: u64,
    /// Number of records in the segment.
    pub records: u64,
    /// Stream chain digest before the segment's records.
    pub prev: u64,
    /// Stream chain digest after the segment's records.
    pub hash: u64,
    /// Full hasher state at segment start, so a reloaded segment can be
    /// re-hashed and checked against `hash` without replaying the stream.
    start: ChainHasher,
}

impl SegmentSeal {
    /// Re-hashes `records` from the sealed start state and checks the
    /// result against this seal's checkpoint digest.
    pub fn verify<T: ChainRecord>(&self, records: &[T]) -> bool {
        if records.len() as u64 != self.records {
            return false;
        }
        let mut h = self.start;
        for r in records {
            r.chain(&mut h);
        }
        h.digest() == self.hash
    }
}

/// An append-only log of one record type with hash-chained segment
/// checkpoints over contiguous storage.
#[derive(Debug, Clone)]
pub struct SegmentedLog<T> {
    capacity: usize,
    /// Resident records: the stream suffix starting at global index
    /// `spilled_len` (the whole stream when nothing has spilled).
    records: Vec<T>,
    /// Seals of rotated segments, in stream order. Each covers exactly
    /// `capacity` records (rotation fires exactly at the boundary).
    seals: Vec<SegmentSeal>,
    /// Records covered by seals (`seals.len() * capacity`).
    sealed_len: usize,
    /// Records handed off for spilling — always a whole-segment prefix of
    /// the stream.
    spilled_len: usize,
    hasher: ChainHasher,
    rotate_nanos: u64,
}

impl<T: ChainRecord> SegmentedLog<T> {
    /// Creates an empty log rotating every `capacity` records.
    ///
    /// `usize::MAX` gives a monolithic log that never rotates (the twin
    /// configuration the lockstep tests compare against).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "segment capacity must be positive");
        SegmentedLog {
            capacity,
            records: Vec::new(),
            seals: Vec::new(),
            sealed_len: 0,
            spilled_len: 0,
            hasher: ChainHasher::new(GENESIS),
            rotate_nanos: 0,
        }
    }

    /// Total records appended so far.
    pub fn len(&self) -> usize {
        self.spilled_len + self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rotation capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently resident in memory (the stream suffix that has
    /// not been handed to a spill writer).
    pub fn resident_records(&self) -> usize {
        self.records.len()
    }

    /// How many segments have rotated (excludes the active tail).
    pub fn rotations(&self) -> u64 {
        self.seals.len() as u64
    }

    /// Wall time spent batch-hashing at rotations, in seconds.
    pub fn rotate_seconds(&self) -> f64 {
        self.rotate_nanos as f64 / 1e9
    }

    /// Current digest of the stream chain *over rotated segments only*
    /// (the active tail is folded in by [`Self::into_contiguous`]).
    pub fn chain_checkpoint(&self) -> u64 {
        self.hasher.digest()
    }

    /// Appends a record; returns the index of a segment sealed by this
    /// append, if it caused a rotation.
    #[inline]
    pub fn push(&mut self, record: T) -> Option<u64> {
        self.records.push(record);
        if self.len() - self.sealed_len >= self.capacity {
            Some(self.rotate())
        } else {
            None
        }
    }

    /// Appends many records; returns the indexes of segments sealed along
    /// the way (empty for the common no-rotation case — no allocation).
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, records: I) -> Vec<u64> {
        let mut rotated = Vec::new();
        for r in records {
            if let Some(idx) = self.push(r) {
                rotated.push(idx);
            }
        }
        rotated
    }

    /// Seals the active tail (exactly `capacity` records) into the chain.
    /// Pure bookkeeping over the flat storage: no records move.
    fn rotate(&mut self) -> u64 {
        let t0 = Instant::now();
        let prev = self.hasher.digest();
        let start = self.hasher;
        let tail = &self.records[self.sealed_len - self.spilled_len..];
        for r in tail {
            r.chain(&mut self.hasher);
        }
        let seal = SegmentSeal {
            index: self.seals.len() as u64,
            records: tail.len() as u64,
            prev,
            hash: self.hasher.digest(),
            start,
        };
        self.sealed_len += tail.len();
        self.seals.push(seal);
        self.rotate_nanos += t0.elapsed().as_nanos() as u64;
        seal.index
    }

    /// The oldest sealed segment whose records are still resident, if any
    /// (what a newly-enabled spill should flush first).
    pub fn next_unspilled_segment(&self) -> Option<u64> {
        let spilled_segments = self.spilled_len / self.capacity;
        (spilled_segments < self.seals.len()).then_some(spilled_segments as u64)
    }

    /// Takes a sealed segment's records off the front of the log for
    /// spilling; the seal stays behind so the segment can be reloaded and
    /// re-verified at seal time. Segments must be taken in stream order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not the oldest still-resident sealed segment.
    pub fn take_segment(&mut self, index: u64) -> (SegmentSeal, Vec<T>) {
        assert_eq!(
            Some(index),
            self.next_unspilled_segment(),
            "spill must take sealed segments in stream order",
        );
        let seal = self.seals[index as usize];
        // In steady-state spilling the tail is empty at rotation, so this
        // hands the whole `Vec` over; mid-run enable pays one shift per
        // already-resident segment.
        let rest = self.records.split_off(seal.records as usize);
        let records = std::mem::replace(&mut self.records, rest);
        self.spilled_len += records.len();
        if self.capacity != usize::MAX {
            self.records.reserve(self.capacity);
        }
        (seal, records)
    }

    /// Whether any sealed segment has been handed off via
    /// [`Self::take_segment`].
    pub fn has_spilled(&self) -> bool {
        self.spilled_len > 0
    }

    /// Random access by global record index.
    ///
    /// # Panics
    ///
    /// Panics if the record lives in a spilled segment.
    pub fn get(&self, index: usize) -> &T {
        assert!(
            index >= self.spilled_len,
            "cannot index into a spilled segment"
        );
        &self.records[index - self.spilled_len]
    }

    /// A streaming cursor over all records.
    ///
    /// # Panics
    ///
    /// Panics if any segment has been spilled.
    pub fn cursor(&self) -> Cursor<'_, T> {
        assert!(
            self.spilled_len == 0,
            "cannot cursor a log with spilled segments; seal the store first"
        );
        Cursor {
            inner: self.records.iter(),
        }
    }

    /// Folds the active tail into the chain and hands the log's records
    /// over as one contiguous `Vec`, loading spilled segments through
    /// `load` and re-verifying each loaded segment against its seal. A
    /// never-spilled log moves its storage — no copy.
    ///
    /// Returns the records and the stream's chain head (the digest over
    /// every record ever appended, independent of segment capacity).
    ///
    /// # Panics
    ///
    /// Panics if a loaded segment fails chain verification — a spill file
    /// was corrupted or mixed up between runs.
    pub fn into_contiguous<F>(mut self, mut load: F) -> (Vec<T>, u64)
    where
        F: FnMut(&SegmentSeal) -> Vec<T>,
    {
        for r in &self.records[self.sealed_len - self.spilled_len..] {
            r.chain(&mut self.hasher);
        }
        let head = self.hasher.digest();
        if self.spilled_len == 0 {
            return (self.records, head);
        }
        let mut out: Vec<T> = Vec::with_capacity(self.len());
        for seal in &self.seals[..self.spilled_len / self.capacity] {
            let v = load(seal);
            assert!(
                seal.verify(&v),
                "spilled segment {} failed chain verification on reload \
                 (expected {:016x})",
                seal.index,
                seal.hash,
            );
            out.extend(v);
        }
        out.extend(self.records);
        (out, head)
    }
}

/// Streaming iterator over a [`SegmentedLog`]'s records — a thin wrapper
/// over a slice iterator, since the log stores records contiguously.
#[derive(Debug)]
pub struct Cursor<'a, T> {
    inner: std::slice::Iter<'a, T>,
}

/// Manual impl: a cursor only borrows the log, so no `T: Clone` bound.
impl<T> Clone for Cursor<'_, T> {
    fn clone(&self) -> Self {
        Cursor {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Cursor<'_, T> {
    /// Records remaining ahead of the cursor (inherent, so callers need
    /// not import `ExactSizeIterator`).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no records remain.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

impl<T: ChainRecord + Clone> Cursor<'_, T> {
    /// Collects the remaining records into an owned, contiguous `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.clone().cloned().collect()
    }
}

impl<'a, T: ChainRecord> Iterator for Cursor<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<T: ChainRecord> ExactSizeIterator for Cursor<'_, T> {}

/// Two cursors are equal when the record sequences ahead of them are —
/// segment boundaries are invisible, so a segmented and a monolithic log
/// holding the same records compare equal.
impl<T: ChainRecord + PartialEq> PartialEq for Cursor<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && Iterator::eq(self.clone(), other.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{NodeEvent, NodeEventKind};
    use rsc_cluster::ids::NodeId;
    use rsc_sim_core::time::SimTime;

    fn ev(at: u64) -> NodeEvent {
        NodeEvent {
            node: NodeId::new((at % 16) as u32),
            at: SimTime::from_secs(at),
            kind: NodeEventKind::Drain,
        }
    }

    fn filled(capacity: usize, n: u64) -> SegmentedLog<NodeEvent> {
        let mut log = SegmentedLog::new(capacity);
        for i in 0..n {
            log.push(ev(i));
        }
        log
    }

    #[test]
    fn rotation_happens_exactly_at_capacity() {
        let mut log = SegmentedLog::new(4);
        for i in 0..3 {
            assert_eq!(log.push(ev(i)), None);
        }
        assert_eq!(log.push(ev(3)), Some(0));
        assert_eq!(log.rotations(), 1);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn chain_head_is_capacity_invariant() {
        let heads: Vec<u64> = [3usize, 7, 100, usize::MAX]
            .into_iter()
            .map(|cap| filled(cap, 50).into_contiguous(|_| unreachable!()).1)
            .collect();
        assert!(heads.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn contiguous_preserves_order() {
        let (records, _) = filled(4, 11).into_contiguous(|_| unreachable!());
        assert_eq!(records.len(), 11);
        assert!(records
            .iter()
            .enumerate()
            .all(|(i, r)| r.at == SimTime::from_secs(i as u64)));
    }

    #[test]
    fn cursor_walks_segment_boundaries_in_order() {
        let log = filled(4, 11);
        let seen: Vec<u64> = log.cursor().map(|r| r.at.as_secs()).collect();
        assert_eq!(seen, (0..11).collect::<Vec<_>>());
        assert_eq!(log.cursor().len(), 11);
    }

    #[test]
    fn get_spans_sealed_and_active() {
        let log = filled(4, 11);
        for i in 0..11 {
            assert_eq!(log.get(i).at, SimTime::from_secs(i as u64));
        }
    }

    #[test]
    fn spilled_segment_reloads_and_verifies() {
        let mut log = filled(4, 11);
        let (seal, records) = log.take_segment(0);
        assert!(log.has_spilled());
        assert!(seal.verify(&records));
        let stash = records.clone();
        let (all, head) = log.into_contiguous(|s| {
            assert_eq!(s.index, 0);
            stash.clone()
        });
        assert_eq!(all.len(), 11);
        assert_eq!(head, filled(4, 11).into_contiguous(|_| unreachable!()).1);
    }

    #[test]
    fn take_out_of_order_panics() {
        let mut log = filled(4, 11);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            log.take_segment(1);
        }));
        assert!(result.is_err(), "taking segment 1 before 0 must panic");
    }

    #[test]
    fn mid_run_enable_takes_resident_segments_in_order() {
        // Three sealed segments resident plus a tail, as after enabling
        // spill mid-run; takes must walk them front-to-back and leave the
        // tail intact.
        let mut log = filled(4, 14);
        for want in 0..3u64 {
            assert_eq!(log.next_unspilled_segment(), Some(want));
            let (seal, records) = log.take_segment(want);
            assert_eq!(records.len(), 4);
            assert!(seal.verify(&records));
            assert_eq!(records[0].at, SimTime::from_secs(want * 4));
        }
        assert_eq!(log.next_unspilled_segment(), None);
        assert_eq!(log.len(), 14);
        assert_eq!(log.get(13).at, SimTime::from_secs(13));
    }

    #[test]
    fn tampered_reload_fails_verification() {
        let mut log = filled(4, 11);
        let (seal, mut records) = log.take_segment(0);
        records[2].at = SimTime::from_secs(999);
        assert!(!seal.verify(&records));
    }

    #[test]
    #[should_panic(expected = "chain verification")]
    fn corrupt_spill_panics_at_seal() {
        let mut log = filled(4, 11);
        let (_, mut records) = log.take_segment(0);
        records[0].at = SimTime::from_secs(777);
        let _ = log.into_contiguous(move |_| records.clone());
    }
}
