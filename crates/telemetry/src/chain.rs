//! Content hashing for the segmented telemetry log.
//!
//! Every telemetry stream carries a *running* content hash: records are
//! folded into a [`ChainHasher`] in append order, and each sealed segment
//! stores a checkpoint of the running digest ([`crate::segment`]). Because
//! the hash is a function of the record stream alone — not of where the
//! segment boundaries fall — the chain head for a stream is identical no
//! matter what segment capacity the run used, which is what lets the
//! version-3 snapshot pin one canonical framing and still verify stores
//! sealed at any capacity.
//!
//! The hash is a non-cryptographic 128-bit-state / 64-bit-digest mix
//! (two multiply–xor–rotate lanes plus a length counter, finalized with a
//! splitmix64-style avalanche). It exists to catch corruption — bit flips,
//! truncation, reordering, splicing — not adversaries.

use rsc_cluster::ids::{JobId, JobRunId};
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::Severity;
use rsc_failure::signals::SignalKind;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sched::job::{JobStatus, QosClass};
use rsc_sim_core::time::SimTime;

use crate::store::{
    CheckpointFallbackEvent, ControlActionEvent, ControlActionKind, ControlTrigger, ExclusionEvent,
    NodeEvent, NodeEventKind,
};

/// Seed digest every stream chain starts from ("rsc_log1").
pub const GENESIS: u64 = 0x7273_635f_6c6f_6731;

const LANE_A_MUL: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / golden ratio
const LANE_B_MUL: u64 = 0xc2b2_ae3d_27d4_eb4f; // xxhash64 prime 2

fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Running content hash over a record stream.
///
/// Cheap enough to fold millions of records per second; [`digest`] is
/// non-destructive, so checkpoints can be taken mid-stream and hashing
/// resumed (how segment seals work).
///
/// [`digest`]: ChainHasher::digest
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainHasher {
    lane_a: u64,
    lane_b: u64,
    words: u64,
}

impl ChainHasher {
    /// Starts a hasher chained to a predecessor digest (use [`GENESIS`]
    /// for the first segment of a stream).
    pub fn new(prev: u64) -> Self {
        ChainHasher {
            lane_a: splitmix(prev ^ LANE_A_MUL),
            lane_b: splitmix(prev ^ LANE_B_MUL),
            words: 0,
        }
    }

    /// Folds one word into the chain.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.lane_a = (self.lane_a ^ w).wrapping_mul(LANE_A_MUL).rotate_left(29);
        self.lane_b = (self.lane_b.rotate_left(31) ^ w).wrapping_mul(LANE_B_MUL);
        self.words = self.words.wrapping_add(1);
    }

    /// Folds raw bytes (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Current digest. Non-destructive: hashing may continue afterwards.
    #[inline]
    pub fn digest(&self) -> u64 {
        splitmix(self.lane_a ^ self.lane_b.rotate_left(17) ^ self.words)
    }
}

#[inline]
fn write_opt(h: &mut ChainHasher, v: Option<u64>) {
    match v {
        None => h.write_u64(0),
        Some(v) => {
            h.write_u64(1);
            h.write_u64(v);
        }
    }
}

/// A record that can be folded into a stream chain.
///
/// The encodings below — field order and the numeric ordinals assigned to
/// enum variants — are part of the on-disk version-3 snapshot format
/// (frame checkpoints are digests over them); changing any of them is a
/// format break and requires a version bump. See `DESIGN.md` §11.
pub trait ChainRecord {
    /// Folds this record's content into `h`.
    fn chain(&self, h: &mut ChainHasher);
}

/// Stable ordinal for a raw signal (part of the v3 format).
fn signal_ordinal(kind: SignalKind) -> (u64, u64) {
    match kind {
        SignalKind::Xid(x) => (0, u64::from(x.code())),
        SignalKind::PcieError => (1, 0),
        SignalKind::IpmiCriticalInterrupt => (2, 0),
        SignalKind::IbLinkError => (3, 0),
        SignalKind::EthLinkError => (4, 0),
        SignalKind::FsMountMissing => (5, 0),
        SignalKind::MainMemoryError => (6, 0),
        SignalKind::ServiceFailure => (7, 0),
        SignalKind::BlockDeviceError => (8, 0),
        SignalKind::NodeUnresponsive => (9, 0),
        SignalKind::PowerFault => (10, 0),
        SignalKind::ThermalWarning => (11, 0),
    }
}

/// Stable ordinal for a health check (part of the v3 format).
fn check_ordinal(check: CheckKind) -> u64 {
    match check {
        CheckKind::GpuAccessible => 0,
        CheckKind::GpuMemory => 1,
        CheckKind::NvLink => 2,
        CheckKind::GpuDriver => 3,
        CheckKind::PcieLink => 4,
        CheckKind::IbLink => 5,
        CheckKind::EthLink => 6,
        CheckKind::FsMount => 7,
        CheckKind::HostMemory => 8,
        CheckKind::BlockDevice => 9,
        CheckKind::Services => 10,
        CheckKind::Ipmi => 11,
    }
}

/// Stable ordinal for a failure symptom (part of the v3 format).
fn symptom_ordinal(symptom: FailureSymptom) -> u64 {
    match symptom {
        FailureSymptom::Oom => 0,
        FailureSymptom::GpuUnavailable => 1,
        FailureSymptom::GpuMemoryError => 2,
        FailureSymptom::GpuDriverFirmwareError => 3,
        FailureSymptom::GspTimeout => 4,
        FailureSymptom::GpuNvlinkError => 5,
        FailureSymptom::InfinibandLink => 6,
        FailureSymptom::FilesystemMount => 7,
        FailureSymptom::MainMemoryError => 8,
        FailureSymptom::EthlinkError => 9,
        FailureSymptom::PcieError => 10,
        FailureSymptom::NcclTimeout => 11,
        FailureSymptom::SystemService => 12,
    }
}

/// Stable ordinal for a job status (part of the v3 format).
fn status_ordinal(status: JobStatus) -> u64 {
    match status {
        JobStatus::Completed => 0,
        JobStatus::Failed => 1,
        JobStatus::NodeFail => 2,
        JobStatus::Cancelled => 3,
        JobStatus::OutOfMemory => 4,
        JobStatus::Preempted => 5,
        JobStatus::Requeued => 6,
        JobStatus::Timeout => 7,
    }
}

/// Stable ordinal for a QoS tier (part of the v3 format).
fn qos_ordinal(qos: QosClass) -> u64 {
    match qos {
        QosClass::Low => 0,
        QosClass::Normal => 1,
        QosClass::High => 2,
    }
}

/// Stable ordinal for a node lifecycle kind (part of the v3 format).
fn node_event_ordinal(kind: NodeEventKind) -> u64 {
    match kind {
        NodeEventKind::Drain => 0,
        NodeEventKind::EnterRemediation => 1,
        NodeEventKind::ExitRemediation => 2,
        NodeEventKind::RepairAttemptFailed => 3,
        NodeEventKind::RepairEscalated => 4,
        NodeEventKind::EnterProbation => 5,
        NodeEventKind::ProbationPassed => 6,
        NodeEventKind::ProbationFailed => 7,
        NodeEventKind::Quarantined => 8,
    }
}

/// Stable ordinal for a control action kind (part of the v4 format).
fn control_action_ordinal(kind: ControlActionKind) -> u64 {
    match kind {
        ControlActionKind::RemediateNode => 0,
        ControlActionKind::QuarantineNode => 1,
        ControlActionKind::ReleaseNode => 2,
        ControlActionKind::AdaptiveRouting => 3,
        ControlActionKind::RestoreRouting => 4,
        ControlActionKind::RetuneCheckpoint => 5,
    }
}

/// Stable ordinal for a control trigger (part of the v4 format).
fn control_trigger_ordinal(trigger: ControlTrigger) -> u64 {
    match trigger {
        ControlTrigger::LemonSuspect => 0,
        ControlTrigger::MttfRegression => 1,
        ControlTrigger::QuarantineSurge => 2,
        ControlTrigger::Controller => 3,
    }
}

fn severity_ordinal(severity: Severity) -> u64 {
    match severity {
        Severity::High => 0,
        Severity::Low => 1,
    }
}

impl ChainRecord for JobRecord {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.job.raw());
        h.write_u64(u64::from(self.attempt));
        write_opt(h, self.run.map(JobRunId::raw));
        h.write_u64(u64::from(self.gpus));
        h.write_u64(qos_ordinal(self.qos));
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.write_u64(u64::from(n.index()));
        }
        h.write_u64(self.enqueued_at.as_secs());
        write_opt(h, self.started_at.map(SimTime::as_secs));
        h.write_u64(self.ended_at.as_secs());
        h.write_u64(status_ordinal(self.status));
        write_opt(h, self.preempted_by.map(JobId::raw));
        write_opt(h, self.instigator.map(JobId::raw));
    }
}

impl ChainRecord for HealthEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(u64::from(self.node.index()));
        h.write_u64(check_ordinal(self.check));
        h.write_u64(severity_ordinal(self.severity));
        match self.signal {
            None => h.write_u64(0),
            Some(kind) => {
                let (tag, arg) = signal_ordinal(kind);
                h.write_u64(1);
                h.write_u64(tag);
                h.write_u64(arg);
            }
        }
        h.write_u64(u64::from(self.false_positive));
    }
}

impl ChainRecord for NodeEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(u64::from(self.node.index()));
        h.write_u64(node_event_ordinal(self.kind));
    }
}

impl ChainRecord for ExclusionEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(u64::from(self.node.index()));
        h.write_u64(self.job.raw());
    }
}

impl ChainRecord for FailureEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(u64::from(self.node.index()));
        h.write_u64(self.mode.0 as u64);
        h.write_u64(symptom_ordinal(self.symptom));
        h.write_u64(u64::from(self.permanent));
    }
}

impl ChainRecord for CheckpointFallbackEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(self.job.raw());
        h.write_u64(u64::from(self.gpus));
        h.write_u64(u64::from(self.intervals));
        h.write_u64(self.lost.as_secs());
    }
}

impl ChainRecord for ControlActionEvent {
    fn chain(&self, h: &mut ChainHasher) {
        h.write_u64(self.at.as_secs());
        h.write_u64(control_action_ordinal(self.kind));
        h.write_u64(control_trigger_ordinal(self.trigger));
        write_opt(h, self.node.map(|n| u64::from(n.index())));
        write_opt(h, self.job.map(JobId::raw));
        h.write_u64(u64::from(self.accepted));
        h.write_u64(self.value);
    }
}

/// Folds a whole record slice and returns the resulting digest, starting
/// the chain from `prev`. Convenience used by verification paths.
pub fn chain_digest<T: ChainRecord>(prev: u64, records: &[T]) -> u64 {
    let mut h = ChainHasher::new(prev);
    for r in records {
        r.chain(&mut h);
    }
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_non_destructive() {
        let mut h = ChainHasher::new(GENESIS);
        h.write_u64(42);
        let d1 = h.digest();
        assert_eq!(d1, h.digest());
        h.write_u64(43);
        assert_ne!(d1, h.digest());
    }

    #[test]
    fn word_boundaries_matter() {
        let mut a = ChainHasher::new(GENESIS);
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = ChainHasher::new(GENESIS);
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn chain_head_is_independent_of_checkpoint_positions() {
        // The running digest after N records must not depend on where
        // intermediate digests were taken — the capacity-invariance
        // property the v3 snapshot relies on.
        let ev = |at: u64| NodeEvent {
            node: rsc_cluster::ids::NodeId::new(3),
            at: SimTime::from_secs(at),
            kind: NodeEventKind::Drain,
        };
        let records: Vec<NodeEvent> = (0..100).map(|i| ev(i * 7)).collect();
        let mut h = ChainHasher::new(GENESIS);
        for r in &records {
            r.chain(&mut h);
            let _ = h.digest(); // checkpoint after every record
        }
        assert_eq!(h.digest(), chain_digest(GENESIS, &records));
    }

    #[test]
    fn different_prev_gives_different_digest() {
        let ev = FailureEvent {
            at: SimTime::from_secs(5),
            node: rsc_cluster::ids::NodeId::new(1),
            mode: rsc_failure::modes::ModeId(2),
            symptom: FailureSymptom::PcieError,
            permanent: false,
        };
        assert_ne!(chain_digest(GENESIS, &[ev]), chain_digest(1, &[ev]));
    }
}
