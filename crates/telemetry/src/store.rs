//! The telemetry store: every log stream a simulation produces, with the
//! time-window queries the analyses need.
//!
//! This is the simulated stand-in for the paper's production data sources:
//! Slurm accounting (`sacct`), fleet health-check events, node lifecycle
//! transitions, user node-exclusion lists, and — unavailable in production
//! but invaluable for validation — the ground-truth failure injections.
//!
//! Since the segmented-log refactor each stream is a
//! [`SegmentedLog`](crate::segment::SegmentedLog) rather than a
//! grow-forever `Vec`: appends land in a fixed-capacity active segment,
//! full segments rotate and are sealed with a hash-chain checkpoint, and —
//! when [`TelemetryStore::enable_spill`] is on — rotated segments are
//! handed to a background writer so peak resident telemetry is bounded by
//! the segment capacity. [`TelemetryStore::seal`] stitches the segments
//! back into the contiguous, fully-indexed
//! [`TelemetryView`](crate::view::TelemetryView) the analyses consume,
//! re-verifying every spilled segment against its chain checkpoint.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::{JobId, NodeId};
use rsc_failure::injector::FailureEvent;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::rows;
use crate::segment::{Cursor, SegmentSeal, SegmentedLog, DEFAULT_SEGMENT_CAPACITY};

/// A node lifecycle transition.
///
/// The first three variants are the version-1 snapshot vocabulary; the
/// rest were added with the fallible-remediation lifecycle and force the
/// version-2 snapshot format when present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeEventKind {
    /// Node marked draining (low-severity check).
    Drain,
    /// Node pulled into remediation.
    EnterRemediation,
    /// Node repaired and returned to service.
    ExitRemediation,
    /// A repair attempt on the escalation ladder failed.
    RepairAttemptFailed,
    /// Repeated failures escalated the repair to a more drastic rung.
    RepairEscalated,
    /// A repaired node began its probation window.
    EnterProbation,
    /// The node passed probation (an `ExitRemediation` follows).
    ProbationPassed,
    /// The node flunked probation and went back down the ladder.
    ProbationFailed,
    /// The node exhausted its repair budget and was written off.
    Quarantined,
}

impl NodeEventKind {
    /// Whether this kind exists in the version-1 snapshot vocabulary.
    pub fn is_v1(self) -> bool {
        matches!(
            self,
            NodeEventKind::Drain | NodeEventKind::EnterRemediation | NodeEventKind::ExitRemediation
        )
    }
}

/// A job attempt restarting from an older checkpoint because newer ones
/// were unreadable (fallible recovery on the storage side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointFallbackEvent {
    /// When the fallback happened (at attempt start).
    pub at: SimTime,
    /// The restarting job.
    pub job: JobId,
    /// GPUs the job holds (so the lost work prices without a job lookup).
    pub gpus: u32,
    /// How many checkpoint intervals the attempt fell back.
    pub intervals: u32,
    /// Productive work discarded and re-done.
    pub lost: SimDuration,
}

/// What a reliability-controller action did (or tried to do).
///
/// The variants and their textual labels are part of the version-4
/// snapshot vocabulary; a view containing any control action forces the
/// version-4 format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlActionKind {
    /// Node sent on a remediation visit by the controller.
    RemediateNode,
    /// Node quarantined by the controller.
    QuarantineNode,
    /// A controller-initiated quarantine released back to service.
    ReleaseNode,
    /// Fabric routing switched static → adaptive.
    AdaptiveRouting,
    /// Fabric routing restored to its static baseline.
    RestoreRouting,
    /// A job profile's checkpoint cadence re-solved online.
    RetuneCheckpoint,
}

impl ControlActionKind {
    /// Stable snake_case label (the v4 snapshot row vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            ControlActionKind::RemediateNode => "remediate_node",
            ControlActionKind::QuarantineNode => "quarantine_node",
            ControlActionKind::ReleaseNode => "release_node",
            ControlActionKind::AdaptiveRouting => "adaptive_routing",
            ControlActionKind::RestoreRouting => "restore_routing",
            ControlActionKind::RetuneCheckpoint => "retune_checkpoint",
        }
    }
}

/// Which alert stream (or internal controller policy) triggered a control
/// action. Lives here rather than in `rsc-monitor` so the telemetry codec
/// has no upward dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlTrigger {
    /// A `LemonSuspect` alert.
    LemonSuspect,
    /// An `MttfRegression` alert.
    MttfRegression,
    /// A `QuarantineSurge` alert.
    QuarantineSurge,
    /// Internal controller policy (cooldown revert, probation release).
    Controller,
}

impl ControlTrigger {
    /// Stable snake_case label (the v4 snapshot row vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            ControlTrigger::LemonSuspect => "lemon_suspect",
            ControlTrigger::MttfRegression => "mttf_regression",
            ControlTrigger::QuarantineSurge => "quarantine_surge",
            ControlTrigger::Controller => "controller",
        }
    }
}

/// One closed-loop control action, recorded whether or not it was
/// accepted — budget-rejected actions log with `accepted == false` so
/// the action stream is a complete audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlActionEvent {
    /// When the driver drained the command.
    pub at: SimTime,
    /// What the controller did.
    pub kind: ControlActionKind,
    /// Which alert (or internal policy) prompted it.
    pub trigger: ControlTrigger,
    /// Target node, for node-scoped actions.
    pub node: Option<NodeId>,
    /// Target job, for job-scoped actions.
    pub job: Option<JobId>,
    /// Whether the action was applied (`false` = budget/cooldown reject).
    pub accepted: bool,
    /// Action-specific magnitude (e.g. the re-solved checkpoint interval
    /// in seconds for [`ControlActionKind::RetuneCheckpoint`]).
    pub value: u64,
}

/// A node lifecycle event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeEvent {
    /// The node.
    pub node: NodeId,
    /// When the transition happened.
    pub at: SimTime,
    /// What happened.
    pub kind: NodeEventKind,
}

/// A user excluding a node from their future submissions (the
/// `excl_jobid_count` lemon signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExclusionEvent {
    /// The excluded node.
    pub node: NodeId,
    /// The job whose failure prompted the exclusion.
    pub job: JobId,
    /// When the exclusion was added.
    pub at: SimTime,
}

/// Floor on budget-derived segment capacities: below this the per-record
/// chain-hash batching stops paying for itself.
pub const MIN_BUDGET_CAPACITY: usize = 64;

/// Append/rotation accounting for one store, summed across its streams
/// (the bench harness reports these as the seal-phase attribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentStats {
    /// Records per segment.
    pub capacity: usize,
    /// Segments rotated across all streams (excludes active tails).
    pub rotations: u64,
    /// Wall seconds spent batch-hashing at rotations.
    pub rotate_s: f64,
    /// Wall seconds spent in append calls — only measured after
    /// [`TelemetryStore::enable_append_timing`], otherwise zero.
    pub append_s: f64,
}

/// A rotated segment en route to the background spill writer.
enum SpillJob {
    Jobs(u64, Vec<JobRecord>),
    Health(u64, Vec<HealthEvent>),
    NodeEvents(u64, Vec<NodeEvent>),
    Exclusions(u64, Vec<ExclusionEvent>),
    Failures(u64, Vec<FailureEvent>),
    CkptFallbacks(u64, Vec<CheckpointFallbackEvent>),
    ControlActions(u64, Vec<ControlActionEvent>),
}

fn spill_path(dir: &Path, stream: &str, index: u64) -> PathBuf {
    dir.join(format!("{stream}-{index:06}.seg"))
}

fn write_spill_segment<T>(
    dir: &Path,
    stream: &str,
    index: u64,
    records: &[T],
    encode: impl Fn(&T) -> String,
) -> io::Result<()> {
    let mut text = String::new();
    for r in records {
        text.push_str(&encode(r));
        text.push('\n');
    }
    fs::write(spill_path(dir, stream, index), text)
}

#[derive(Debug)]
struct SpillState {
    dir: PathBuf,
    tx: Option<mpsc::Sender<SpillJob>>,
    worker: Option<thread::JoinHandle<io::Result<()>>>,
}

impl SpillState {
    fn start(dir: PathBuf) -> io::Result<Self> {
        fs::create_dir_all(&dir)?;
        let (tx, rx) = mpsc::channel::<SpillJob>();
        let worker_dir = dir.clone();
        let worker = thread::Builder::new()
            .name("telemetry-spill".to_string())
            .spawn(move || -> io::Result<()> {
                for job in rx {
                    match job {
                        SpillJob::Jobs(i, v) => {
                            write_spill_segment(&worker_dir, "jobs", i, &v, rows::encode_job)?
                        }
                        SpillJob::Health(i, v) => {
                            write_spill_segment(&worker_dir, "health", i, &v, rows::encode_health)?
                        }
                        SpillJob::NodeEvents(i, v) => write_spill_segment(
                            &worker_dir,
                            "node_events",
                            i,
                            &v,
                            rows::encode_node_event,
                        )?,
                        SpillJob::Exclusions(i, v) => write_spill_segment(
                            &worker_dir,
                            "exclusions",
                            i,
                            &v,
                            rows::encode_exclusion,
                        )?,
                        SpillJob::Failures(i, v) => write_spill_segment(
                            &worker_dir,
                            "failures",
                            i,
                            &v,
                            rows::encode_failure,
                        )?,
                        SpillJob::CkptFallbacks(i, v) => write_spill_segment(
                            &worker_dir,
                            "ckpt_fallbacks",
                            i,
                            &v,
                            rows::encode_ckpt_fallback,
                        )?,
                        SpillJob::ControlActions(i, v) => write_spill_segment(
                            &worker_dir,
                            "control_actions",
                            i,
                            &v,
                            rows::encode_control_action,
                        )?,
                    }
                }
                Ok(())
            })?;
        Ok(SpillState {
            dir,
            tx: Some(tx),
            worker: Some(worker),
        })
    }

    fn send(&self, job: SpillJob) {
        self.tx
            .as_ref()
            .expect("spill channel open while store is live")
            .send(job)
            .expect("telemetry spill worker died");
    }

    /// Closes the channel, joins the writer, and returns the spill
    /// directory for reloading. Panics if the writer hit an I/O error —
    /// the segments it failed to persist are unrecoverable.
    fn finish(mut self) -> PathBuf {
        drop(self.tx.take());
        let worker = self.worker.take().expect("spill worker joined twice");
        match worker.join() {
            Ok(Ok(())) => self.dir,
            Ok(Err(e)) => panic!("telemetry spill writer failed: {e}"),
            Err(_) => panic!("telemetry spill writer panicked"),
        }
    }
}

fn load_spill_segment<T>(
    dir: &Path,
    stream: &str,
    seal: &SegmentSeal,
    decode: impl Fn(&str) -> Result<T, String>,
) -> Vec<T> {
    let path = spill_path(dir, stream, seal.index);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading spilled segment {}: {e}", path.display()));
    let records: Vec<T> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            decode(line)
                .unwrap_or_else(|msg| panic!("spill {} line {}: {msg}", path.display(), i + 1))
        })
        .collect();
    let _ = fs::remove_file(&path);
    records
}

/// All telemetry collected from one simulated cluster run.
#[derive(Debug)]
pub struct TelemetryStore {
    cluster_name: String,
    num_nodes: u32,
    horizon: SimTime,
    jobs: SegmentedLog<JobRecord>,
    health_events: SegmentedLog<HealthEvent>,
    node_events: SegmentedLog<NodeEvent>,
    exclusions: SegmentedLog<ExclusionEvent>,
    ground_truth_failures: SegmentedLog<FailureEvent>,
    ckpt_fallbacks: SegmentedLog<CheckpointFallbackEvent>,
    control_actions: SegmentedLog<ControlActionEvent>,
    gpu_swaps: u64,
    node_health_index: Option<HashMap<NodeId, Vec<usize>>>,
    spill: Option<SpillState>,
    time_appends: bool,
    append_nanos: u64,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        TelemetryStore::with_segment_capacity(String::new(), 0, DEFAULT_SEGMENT_CAPACITY)
    }
}

impl Clone for TelemetryStore {
    /// Clones the resident store.
    ///
    /// # Panics
    ///
    /// Panics if spilling is enabled — the spill worker and its files
    /// belong to one store.
    fn clone(&self) -> Self {
        assert!(
            self.spill.is_none(),
            "cannot clone a store with spilling enabled"
        );
        TelemetryStore {
            cluster_name: self.cluster_name.clone(),
            num_nodes: self.num_nodes,
            horizon: self.horizon,
            jobs: self.jobs.clone(),
            health_events: self.health_events.clone(),
            node_events: self.node_events.clone(),
            exclusions: self.exclusions.clone(),
            ground_truth_failures: self.ground_truth_failures.clone(),
            ckpt_fallbacks: self.ckpt_fallbacks.clone(),
            control_actions: self.control_actions.clone(),
            gpu_swaps: self.gpu_swaps,
            node_health_index: self.node_health_index.clone(),
            spill: None,
            time_appends: self.time_appends,
            append_nanos: self.append_nanos,
        }
    }
}

impl TelemetryStore {
    /// Creates an empty store for a cluster with the default segment
    /// capacity ([`DEFAULT_SEGMENT_CAPACITY`]).
    pub fn new(cluster_name: impl Into<String>, num_nodes: u32) -> Self {
        TelemetryStore::with_segment_capacity(cluster_name, num_nodes, DEFAULT_SEGMENT_CAPACITY)
    }

    /// Creates an empty store whose streams rotate every `capacity`
    /// records. `usize::MAX` never rotates (the monolithic twin the
    /// lockstep tests compare against).
    pub fn with_segment_capacity(
        cluster_name: impl Into<String>,
        num_nodes: u32,
        capacity: usize,
    ) -> Self {
        TelemetryStore {
            cluster_name: cluster_name.into(),
            num_nodes,
            horizon: SimTime::ZERO,
            jobs: SegmentedLog::new(capacity),
            health_events: SegmentedLog::new(capacity),
            node_events: SegmentedLog::new(capacity),
            exclusions: SegmentedLog::new(capacity),
            ground_truth_failures: SegmentedLog::new(capacity),
            ckpt_fallbacks: SegmentedLog::new(capacity),
            control_actions: SegmentedLog::new(capacity),
            gpu_swaps: 0,
            node_health_index: None,
            spill: None,
            time_appends: false,
            append_nanos: 0,
        }
    }

    /// Replaces the segment capacity of an *empty* store.
    ///
    /// # Panics
    ///
    /// Panics if any stream already holds records (their segments are
    /// already chained at the old capacity).
    pub fn set_segment_capacity(&mut self, capacity: usize) {
        assert!(
            self.jobs.is_empty()
                && self.health_events.is_empty()
                && self.node_events.is_empty()
                && self.exclusions.is_empty()
                && self.ground_truth_failures.is_empty()
                && self.ckpt_fallbacks.is_empty()
                && self.control_actions.is_empty(),
            "segment capacity can only change on an empty store"
        );
        self.jobs = SegmentedLog::new(capacity);
        self.health_events = SegmentedLog::new(capacity);
        self.node_events = SegmentedLog::new(capacity);
        self.exclusions = SegmentedLog::new(capacity);
        self.ground_truth_failures = SegmentedLog::new(capacity);
        self.ckpt_fallbacks = SegmentedLog::new(capacity);
        self.control_actions = SegmentedLog::new(capacity);
    }

    /// Derives per-stream segment capacities from a resident-memory
    /// budget, replacing the uniform record-count capacity.
    ///
    /// The budget is split evenly across the seven streams; each stream's
    /// rotation capacity is its share divided by its record's struct size
    /// (a shallow estimate — heap payloads like a job's node list are not
    /// counted), floored at [`MIN_BUDGET_CAPACITY`] records so tiny
    /// budgets still batch hashing usefully. With spilling enabled, peak
    /// resident telemetry is then bounded by roughly the budget regardless
    /// of run length or cluster size; sealed bytes are capacity-invariant,
    /// so the budget never changes what a run records.
    ///
    /// # Panics
    ///
    /// Panics if any stream already holds records (their segments are
    /// already chained at the old capacity).
    pub fn set_memory_budget(&mut self, bytes: usize) {
        assert!(
            self.jobs.is_empty()
                && self.health_events.is_empty()
                && self.node_events.is_empty()
                && self.exclusions.is_empty()
                && self.ground_truth_failures.is_empty()
                && self.ckpt_fallbacks.is_empty()
                && self.control_actions.is_empty(),
            "memory budget can only change on an empty store"
        );
        let share = bytes / 7;
        fn cap<T>(share: usize) -> usize {
            (share / std::mem::size_of::<T>().max(1)).max(MIN_BUDGET_CAPACITY)
        }
        self.jobs = SegmentedLog::new(cap::<JobRecord>(share));
        self.health_events = SegmentedLog::new(cap::<HealthEvent>(share));
        self.node_events = SegmentedLog::new(cap::<NodeEvent>(share));
        self.exclusions = SegmentedLog::new(cap::<ExclusionEvent>(share));
        self.ground_truth_failures = SegmentedLog::new(cap::<FailureEvent>(share));
        self.ckpt_fallbacks = SegmentedLog::new(cap::<CheckpointFallbackEvent>(share));
        self.control_actions = SegmentedLog::new(cap::<ControlActionEvent>(share));
    }

    /// Per-stream rotation capacities, in stream-declaration order (jobs,
    /// health, node events, exclusions, ground-truth failures, checkpoint
    /// fallbacks, control actions).
    pub fn stream_capacities(&self) -> [usize; 7] {
        [
            self.jobs.capacity(),
            self.health_events.capacity(),
            self.node_events.capacity(),
            self.exclusions.capacity(),
            self.ground_truth_failures.capacity(),
            self.ckpt_fallbacks.capacity(),
            self.control_actions.capacity(),
        ]
    }

    /// Shallow estimate of record bytes currently resident across all
    /// streams (struct sizes only; heap payloads such as per-job node
    /// lists are not counted). With spilling enabled this is the quantity
    /// [`Self::set_memory_budget`] bounds.
    pub fn resident_record_bytes(&self) -> usize {
        self.jobs.resident_records() * std::mem::size_of::<JobRecord>()
            + self.health_events.resident_records() * std::mem::size_of::<HealthEvent>()
            + self.node_events.resident_records() * std::mem::size_of::<NodeEvent>()
            + self.exclusions.resident_records() * std::mem::size_of::<ExclusionEvent>()
            + self.ground_truth_failures.resident_records() * std::mem::size_of::<FailureEvent>()
            + self.ckpt_fallbacks.resident_records()
                * std::mem::size_of::<CheckpointFallbackEvent>()
            + self.control_actions.resident_records() * std::mem::size_of::<ControlActionEvent>()
    }

    /// Spills rotated segments to files under `dir` from a background
    /// writer thread, bounding peak resident telemetry by the segment
    /// capacity. [`Self::seal`] reloads and chain-verifies every spilled
    /// segment; until then the random-access queries
    /// ([`Self::health_events_for_node`]) and cursors are unavailable for
    /// spilled ranges.
    ///
    /// # Errors
    ///
    /// Propagates failures creating `dir` or spawning the writer.
    pub fn enable_spill(&mut self, dir: impl Into<PathBuf>) -> io::Result<()> {
        assert!(self.spill.is_none(), "spill already enabled");
        let spill = SpillState::start(dir.into())?;
        // Flush segments that sealed before spilling was enabled, so the
        // spilled range is always a contiguous stream prefix.
        while let Some(idx) = self.jobs.next_unspilled_segment() {
            let (seal, records) = self.jobs.take_segment(idx);
            spill.send(SpillJob::Jobs(seal.index, records));
        }
        while let Some(idx) = self.health_events.next_unspilled_segment() {
            let (seal, records) = self.health_events.take_segment(idx);
            spill.send(SpillJob::Health(seal.index, records));
        }
        while let Some(idx) = self.node_events.next_unspilled_segment() {
            let (seal, records) = self.node_events.take_segment(idx);
            spill.send(SpillJob::NodeEvents(seal.index, records));
        }
        while let Some(idx) = self.exclusions.next_unspilled_segment() {
            let (seal, records) = self.exclusions.take_segment(idx);
            spill.send(SpillJob::Exclusions(seal.index, records));
        }
        while let Some(idx) = self.ground_truth_failures.next_unspilled_segment() {
            let (seal, records) = self.ground_truth_failures.take_segment(idx);
            spill.send(SpillJob::Failures(seal.index, records));
        }
        while let Some(idx) = self.ckpt_fallbacks.next_unspilled_segment() {
            let (seal, records) = self.ckpt_fallbacks.take_segment(idx);
            spill.send(SpillJob::CkptFallbacks(seal.index, records));
        }
        while let Some(idx) = self.control_actions.next_unspilled_segment() {
            let (seal, records) = self.control_actions.take_segment(idx);
            spill.send(SpillJob::ControlActions(seal.index, records));
        }
        self.spill = Some(spill);
        Ok(())
    }

    /// Measures wall time spent inside append calls from now on (for the
    /// bench harness's seal attribution; off by default because it puts
    /// two clock reads on every append).
    pub fn enable_append_timing(&mut self) {
        self.time_appends = true;
    }

    /// Append/rotation accounting summed across the seven streams.
    pub fn segment_stats(&self) -> SegmentStats {
        SegmentStats {
            capacity: self.jobs.capacity(),
            rotations: self.jobs.rotations()
                + self.health_events.rotations()
                + self.node_events.rotations()
                + self.exclusions.rotations()
                + self.ground_truth_failures.rotations()
                + self.ckpt_fallbacks.rotations()
                + self.control_actions.rotations(),
            rotate_s: self.jobs.rotate_seconds()
                + self.health_events.rotate_seconds()
                + self.node_events.rotate_seconds()
                + self.exclusions.rotate_seconds()
                + self.ground_truth_failures.rotate_seconds()
                + self.ckpt_fallbacks.rotate_seconds()
                + self.control_actions.rotate_seconds(),
            append_s: self.append_nanos as f64 / 1e9,
        }
    }

    /// The cluster this telemetry came from.
    pub fn cluster_name(&self) -> &str {
        &self.cluster_name
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// End of the measurement window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Sets the measurement horizon (called once by the simulation driver).
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// Total GPU swaps performed by repairs over the run — the paper
    /// corroborates failure-rate differences with GPU swap rates (§III).
    pub fn gpu_swaps(&self) -> u64 {
        self.gpu_swaps
    }

    /// Records the cumulative GPU swap count (driver-maintained).
    pub fn set_gpu_swaps(&mut self, swaps: u64) {
        self.gpu_swaps = swaps;
    }

    #[inline]
    fn append_timer(&self) -> Option<Instant> {
        self.time_appends.then(Instant::now)
    }

    #[inline]
    fn note_append(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.append_nanos += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Appends a job accounting record.
    pub fn push_job(&mut self, record: JobRecord) {
        let t0 = self.append_timer();
        if let Some(idx) = self.jobs.push(record) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.jobs.take_segment(idx);
                spill.send(SpillJob::Jobs(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends many job records.
    pub fn extend_jobs<I: IntoIterator<Item = JobRecord>>(&mut self, records: I) {
        let t0 = self.append_timer();
        for idx in self.jobs.extend(records) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.jobs.take_segment(idx);
                spill.send(SpillJob::Jobs(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a health event, invalidating the per-node index.
    pub fn push_health_event(&mut self, event: HealthEvent) {
        let t0 = self.append_timer();
        self.node_health_index = None;
        if let Some(idx) = self.health_events.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.health_events.take_segment(idx);
                spill.send(SpillJob::Health(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends many health events, invalidating the per-node index once.
    pub fn extend_health_events<I: IntoIterator<Item = HealthEvent>>(&mut self, events: I) {
        let t0 = self.append_timer();
        self.node_health_index = None;
        for idx in self.health_events.extend(events) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.health_events.take_segment(idx);
                spill.send(SpillJob::Health(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a node lifecycle event.
    pub fn push_node_event(&mut self, event: NodeEvent) {
        let t0 = self.append_timer();
        if let Some(idx) = self.node_events.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.node_events.take_segment(idx);
                spill.send(SpillJob::NodeEvents(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a user node-exclusion event.
    pub fn push_exclusion(&mut self, event: ExclusionEvent) {
        let t0 = self.append_timer();
        if let Some(idx) = self.exclusions.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.exclusions.take_segment(idx);
                spill.send(SpillJob::Exclusions(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a ground-truth failure injection.
    pub fn push_ground_truth(&mut self, event: FailureEvent) {
        let t0 = self.append_timer();
        if let Some(idx) = self.ground_truth_failures.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.ground_truth_failures.take_segment(idx);
                spill.send(SpillJob::Failures(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a checkpoint-fallback event.
    pub fn push_ckpt_fallback(&mut self, event: CheckpointFallbackEvent) {
        let t0 = self.append_timer();
        if let Some(idx) = self.ckpt_fallbacks.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.ckpt_fallbacks.take_segment(idx);
                spill.send(SpillJob::CkptFallbacks(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Appends a closed-loop control action.
    pub fn push_control_action(&mut self, event: ControlActionEvent) {
        let t0 = self.append_timer();
        if let Some(idx) = self.control_actions.push(event) {
            if let Some(spill) = &self.spill {
                let (seal, records) = self.control_actions.take_segment(idx);
                spill.send(SpillJob::ControlActions(seal.index, records));
            }
        }
        self.note_append(t0);
    }

    /// Cursor over job accounting records, in completion order.
    ///
    /// # Panics
    ///
    /// Cursors require resident records: panics if spilling has rotated
    /// any segment of the stream out of memory (seal the store first).
    pub fn jobs(&self) -> Cursor<'_, JobRecord> {
        self.jobs.cursor()
    }

    /// Cursor over health events, in detection order (panics if spilled;
    /// see [`Self::jobs`]).
    pub fn health_events(&self) -> Cursor<'_, HealthEvent> {
        self.health_events.cursor()
    }

    /// Cursor over node lifecycle events (panics if spilled; see
    /// [`Self::jobs`]).
    pub fn node_events(&self) -> Cursor<'_, NodeEvent> {
        self.node_events.cursor()
    }

    /// Cursor over user node exclusions (panics if spilled; see
    /// [`Self::jobs`]).
    pub fn exclusions(&self) -> Cursor<'_, ExclusionEvent> {
        self.exclusions.cursor()
    }

    /// Cursor over ground-truth failure injections (not available to
    /// "operators"; used to validate attribution and detection). Panics
    /// if spilled; see [`Self::jobs`].
    pub fn ground_truth_failures(&self) -> Cursor<'_, FailureEvent> {
        self.ground_truth_failures.cursor()
    }

    /// Cursor over checkpoint-fallback events, in occurrence order
    /// (panics if spilled; see [`Self::jobs`]).
    pub fn ckpt_fallbacks(&self) -> Cursor<'_, CheckpointFallbackEvent> {
        self.ckpt_fallbacks.cursor()
    }

    /// Cursor over closed-loop control actions, in drain order (panics if
    /// spilled; see [`Self::jobs`]).
    pub fn control_actions(&self) -> Cursor<'_, ControlActionEvent> {
        self.control_actions.cursor()
    }

    /// Health events on `node` within `[from, to]`, in time order.
    ///
    /// Builds a per-node index on first use; call
    /// [`Self::build_indexes`] once after loading to pay the cost upfront.
    pub fn health_events_for_node(
        &mut self,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&HealthEvent> {
        self.build_indexes();
        let index = self.node_health_index.as_ref().expect("index built above");
        match index.get(&node) {
            Some(idxs) => idxs
                .iter()
                .map(|&i| self.health_events.get(i))
                .filter(|e| e.at >= from && e.at <= to)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Builds the per-node health-event index if absent.
    pub fn build_indexes(&mut self) {
        if self.node_health_index.is_some() {
            return;
        }
        let mut index: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, e) in self.health_events.cursor().enumerate() {
            index.entry(e.node).or_default().push(i);
        }
        self.node_health_index = Some(index);
    }

    /// Seals the store into an immutable, fully-indexed
    /// [`TelemetryView`](crate::view::TelemetryView).
    ///
    /// Sealing consumes the writer: each stream's chain is finished over
    /// its active tail, spilled segments are reloaded and re-verified
    /// against their seals, and the contiguous streams are indexed. After
    /// this point window queries are `&self` binary searches and the view
    /// can be shared freely across analyses and threads.
    ///
    /// # Panics
    ///
    /// Panics if a spilled segment cannot be read back or fails chain
    /// verification (a corrupted or foreign spill file).
    pub fn seal(mut self) -> crate::view::TelemetryView {
        let dir = self.spill.take().map(SpillState::finish);
        let dir_ref = dir.as_deref();
        let (jobs, jobs_head) = self.jobs.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "jobs", seal, rows::decode_job)
        });
        let (health_events, health_head) = self.health_events.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "health", seal, rows::decode_health)
        });
        let (node_events, node_head) = self.node_events.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "node_events", seal, |row| {
                rows::decode_node_event(row, crate::snapshot::SNAPSHOT_VERSION)
            })
        });
        let (exclusions, exclusion_head) = self.exclusions.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "exclusions", seal, rows::decode_exclusion)
        });
        let (ground_truth_failures, failure_head) =
            self.ground_truth_failures.into_contiguous(|seal| {
                let dir = dir_ref.expect("segment spilled without spill dir");
                load_spill_segment(dir, "failures", seal, rows::decode_failure)
            });
        let (ckpt_fallbacks, ckpt_head) = self.ckpt_fallbacks.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "ckpt_fallbacks", seal, rows::decode_ckpt_fallback)
        });
        let (control_actions, control_head) = self.control_actions.into_contiguous(|seal| {
            let dir = dir_ref.expect("segment spilled without spill dir");
            load_spill_segment(dir, "control_actions", seal, rows::decode_control_action)
        });

        crate::view::TelemetryView::from_parts(
            self.cluster_name,
            self.num_nodes,
            self.horizon,
            jobs,
            health_events,
            node_events,
            exclusions,
            ground_truth_failures,
            ckpt_fallbacks,
            control_actions,
            self.gpu_swaps,
            [
                jobs_head,
                health_head,
                node_head,
                exclusion_head,
                failure_head,
                ckpt_head,
                control_head,
            ],
        )
    }

    /// Total node-days of job runtime across all records (the failure-rate
    /// denominator), restricted to jobs using more than `min_gpus` GPUs.
    pub fn node_days_of_runtime(&self, min_gpus: u32) -> f64 {
        self.jobs
            .cursor()
            .filter(|r| r.gpus > min_gpus)
            .map(|r| r.node_days())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_failure::modes::Severity;
    use rsc_health::check::CheckKind;
    use rsc_sched::job::{JobStatus, QosClass};

    fn health_event(node: u32, at_secs: u64) -> HealthEvent {
        HealthEvent {
            at: SimTime::from_secs(at_secs),
            node: NodeId::new(node),
            check: CheckKind::IbLink,
            severity: Severity::High,
            signal: None,
            false_positive: false,
        }
    }

    fn job_record(gpus: u32, nodes: u32, hours: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(1),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: (0..nodes).map(NodeId::new).collect(),
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status: JobStatus::Completed,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn window_query_filters_by_node_and_time() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(1, 100));
        store.push_health_event(health_event(1, 200));
        store.push_health_event(health_event(2, 150));
        let hits = store.health_events_for_node(
            NodeId::new(1),
            SimTime::from_secs(150),
            SimTime::from_secs(300),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].at, SimTime::from_secs(200));
    }

    #[test]
    fn window_query_spans_segment_boundaries() {
        let mut store = TelemetryStore::with_segment_capacity("t", 4, 3);
        for i in 0..10 {
            store.push_health_event(health_event(1, 100 * (i + 1)));
        }
        let hits = store.health_events_for_node(NodeId::new(1), SimTime::ZERO, SimTime::MAX);
        assert_eq!(hits.len(), 10);
        assert_eq!(store.segment_stats().rotations, 3);
    }

    #[test]
    fn index_invalidated_on_push() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(1, 100));
        let _ = store.health_events_for_node(NodeId::new(1), SimTime::ZERO, SimTime::MAX);
        store.push_health_event(health_event(1, 500));
        let hits = store.health_events_for_node(NodeId::new(1), SimTime::ZERO, SimTime::MAX);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn node_days_filters_small_jobs() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(job_record(8, 1, 24)); // 1 node-day
        store.push_job(job_record(256, 32, 24)); // 32 node-days
        assert!((store.node_days_of_runtime(0) - 33.0).abs() < 1e-12);
        assert!((store.node_days_of_runtime(128) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_query_is_empty() {
        let mut store = TelemetryStore::new("t", 4);
        assert!(store
            .health_events_for_node(NodeId::new(3), SimTime::ZERO, SimTime::MAX)
            .is_empty());
    }

    #[test]
    fn sealing_a_segmented_store_matches_monolithic() {
        let fill = |capacity: usize| {
            let mut store = TelemetryStore::with_segment_capacity("twin", 8, capacity);
            for i in 0..25u64 {
                store.push_health_event(health_event((i % 8) as u32, i * 10));
                store.push_job(job_record(8, 1, 1 + i % 3));
            }
            store
        };
        let seg = fill(4);
        assert!(seg.segment_stats().rotations > 0);
        let mono = fill(usize::MAX);
        assert_eq!(mono.segment_stats().rotations, 0);
        let seg_view = seg.seal();
        let mono_view = mono.seal();
        assert_eq!(seg_view.health_events(), mono_view.health_events());
        assert_eq!(seg_view.jobs(), mono_view.jobs());
        assert_eq!(seg_view.chain_heads(), mono_view.chain_heads());
    }

    #[test]
    fn spilled_store_seals_to_the_same_view() {
        let dir = std::env::temp_dir().join(format!("rsc-spill-test-{}", std::process::id()));
        let fill = |spill: Option<&Path>| {
            let mut store = TelemetryStore::with_segment_capacity("sp", 8, 5);
            if let Some(dir) = spill {
                store.enable_spill(dir).unwrap();
            }
            for i in 0..23u64 {
                store.push_health_event(health_event((i % 8) as u32, i * 10));
                store.push_node_event(NodeEvent {
                    node: NodeId::new((i % 8) as u32),
                    at: SimTime::from_secs(i * 11),
                    kind: NodeEventKind::Drain,
                });
            }
            store.seal()
        };
        let spilled = fill(Some(&dir));
        let resident = fill(None);
        assert_eq!(spilled.health_events(), resident.health_events());
        assert_eq!(spilled.node_events(), resident.node_events());
        assert_eq!(spilled.chain_heads(), resident.chain_heads());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_budget_derives_per_stream_capacities() {
        let mut store = TelemetryStore::new("b", 8);
        store.set_memory_budget(7 * 64 * 1024); // 64 KiB per stream
        let caps = store.stream_capacities();
        // Bigger records get proportionally smaller segments; every
        // capacity respects the floor and the per-stream byte share.
        assert!(caps.iter().all(|&c| c >= MIN_BUDGET_CAPACITY));
        assert_eq!(
            caps[0],
            (64 * 1024 / std::mem::size_of::<JobRecord>()).max(MIN_BUDGET_CAPACITY)
        );
        assert!(caps[2] >= caps[0], "NodeEvent is smaller than JobRecord");
        // A tiny budget clamps to the floor instead of degenerating.
        let mut tiny = TelemetryStore::new("b", 8);
        tiny.set_memory_budget(16);
        assert!(tiny
            .stream_capacities()
            .iter()
            .all(|&c| c == MIN_BUDGET_CAPACITY));
    }

    #[test]
    fn memory_budget_does_not_change_sealed_view() {
        let fill = |budget: Option<usize>| {
            let mut store = TelemetryStore::new("b", 8);
            if let Some(b) = budget {
                store.set_memory_budget(b);
            }
            for i in 0..500u64 {
                store.push_health_event(health_event((i % 8) as u32, i * 10));
                store.push_job(job_record(8, 1, 1 + i % 3));
            }
            store
        };
        let budgeted = fill(Some(7 * 4096)); // forces mid-run rotations
        assert!(budgeted.segment_stats().rotations > 0);
        assert!(budgeted.resident_record_bytes() > 0);
        let default = fill(None);
        let a = budgeted.seal();
        let b = default.seal();
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.health_events(), b.health_events());
        assert_eq!(a.chain_heads(), b.chain_heads());
    }

    #[test]
    fn spill_bounds_resident_bytes_under_budget() {
        let dir = std::env::temp_dir().join(format!("rsc-budget-test-{}", std::process::id()));
        let mut store = TelemetryStore::new("b", 8);
        let budget = 7 * 4096;
        store.set_memory_budget(budget);
        store.enable_spill(&dir).unwrap();
        let mut peak = 0usize;
        for i in 0..5_000u64 {
            store.push_health_event(health_event((i % 8) as u32, i * 10));
            peak = peak.max(store.resident_record_bytes());
        }
        // Resident telemetry stays within the health stream's share plus
        // one record of slack, regardless of how many records were pushed.
        let share = budget / 7 + std::mem::size_of::<HealthEvent>();
        assert!(
            peak <= share,
            "peak resident {peak} bytes exceeds budget share {share}"
        );
        let view = store.seal();
        assert_eq!(view.health_events().len(), 5_000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn capacity_change_on_nonempty_store_panics() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(0, 1));
        store.set_segment_capacity(16);
    }
}
