//! The telemetry store: every log stream a simulation produces, with the
//! time-window queries the analyses need.
//!
//! This is the simulated stand-in for the paper's production data sources:
//! Slurm accounting (`sacct`), fleet health-check events, node lifecycle
//! transitions, user node-exclusion lists, and — unavailable in production
//! but invaluable for validation — the ground-truth failure injections.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::{JobId, NodeId};
use rsc_failure::injector::FailureEvent;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sim_core::time::{SimDuration, SimTime};

/// A node lifecycle transition.
///
/// The first three variants are the version-1 snapshot vocabulary; the
/// rest were added with the fallible-remediation lifecycle and force the
/// version-2 snapshot format when present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeEventKind {
    /// Node marked draining (low-severity check).
    Drain,
    /// Node pulled into remediation.
    EnterRemediation,
    /// Node repaired and returned to service.
    ExitRemediation,
    /// A repair attempt on the escalation ladder failed.
    RepairAttemptFailed,
    /// Repeated failures escalated the repair to a more drastic rung.
    RepairEscalated,
    /// A repaired node began its probation window.
    EnterProbation,
    /// The node passed probation (an `ExitRemediation` follows).
    ProbationPassed,
    /// The node flunked probation and went back down the ladder.
    ProbationFailed,
    /// The node exhausted its repair budget and was written off.
    Quarantined,
}

impl NodeEventKind {
    /// Whether this kind exists in the version-1 snapshot vocabulary.
    pub fn is_v1(self) -> bool {
        matches!(
            self,
            NodeEventKind::Drain | NodeEventKind::EnterRemediation | NodeEventKind::ExitRemediation
        )
    }
}

/// A job attempt restarting from an older checkpoint because newer ones
/// were unreadable (fallible recovery on the storage side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointFallbackEvent {
    /// When the fallback happened (at attempt start).
    pub at: SimTime,
    /// The restarting job.
    pub job: JobId,
    /// GPUs the job holds (so the lost work prices without a job lookup).
    pub gpus: u32,
    /// How many checkpoint intervals the attempt fell back.
    pub intervals: u32,
    /// Productive work discarded and re-done.
    pub lost: SimDuration,
}

/// A node lifecycle event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeEvent {
    /// The node.
    pub node: NodeId,
    /// When the transition happened.
    pub at: SimTime,
    /// What happened.
    pub kind: NodeEventKind,
}

/// A user excluding a node from their future submissions (the
/// `excl_jobid_count` lemon signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExclusionEvent {
    /// The excluded node.
    pub node: NodeId,
    /// The job whose failure prompted the exclusion.
    pub job: JobId,
    /// When the exclusion was added.
    pub at: SimTime,
}

/// All telemetry collected from one simulated cluster run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryStore {
    cluster_name: String,
    num_nodes: u32,
    horizon: SimTime,
    jobs: Vec<JobRecord>,
    health_events: Vec<HealthEvent>,
    node_events: Vec<NodeEvent>,
    exclusions: Vec<ExclusionEvent>,
    ground_truth_failures: Vec<FailureEvent>,
    #[serde(default)]
    ckpt_fallbacks: Vec<CheckpointFallbackEvent>,
    gpu_swaps: u64,
    #[serde(skip)]
    node_health_index: Option<HashMap<NodeId, Vec<usize>>>,
}

impl TelemetryStore {
    /// Creates an empty store for a cluster.
    pub fn new(cluster_name: impl Into<String>, num_nodes: u32) -> Self {
        TelemetryStore {
            cluster_name: cluster_name.into(),
            num_nodes,
            ..TelemetryStore::default()
        }
    }

    /// The cluster this telemetry came from.
    pub fn cluster_name(&self) -> &str {
        &self.cluster_name
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// End of the measurement window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Sets the measurement horizon (called once by the simulation driver).
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// Total GPU swaps performed by repairs over the run — the paper
    /// corroborates failure-rate differences with GPU swap rates (§III).
    pub fn gpu_swaps(&self) -> u64 {
        self.gpu_swaps
    }

    /// Records the cumulative GPU swap count (driver-maintained).
    pub fn set_gpu_swaps(&mut self, swaps: u64) {
        self.gpu_swaps = swaps;
    }

    /// Appends a job accounting record.
    pub fn push_job(&mut self, record: JobRecord) {
        self.jobs.push(record);
    }

    /// Appends many job records.
    pub fn extend_jobs<I: IntoIterator<Item = JobRecord>>(&mut self, records: I) {
        self.jobs.extend(records);
    }

    /// Appends a health event, invalidating the per-node index.
    pub fn push_health_event(&mut self, event: HealthEvent) {
        self.node_health_index = None;
        self.health_events.push(event);
    }

    /// Appends a node lifecycle event.
    pub fn push_node_event(&mut self, event: NodeEvent) {
        self.node_events.push(event);
    }

    /// Appends a user node-exclusion event.
    pub fn push_exclusion(&mut self, event: ExclusionEvent) {
        self.exclusions.push(event);
    }

    /// Appends a ground-truth failure injection.
    pub fn push_ground_truth(&mut self, event: FailureEvent) {
        self.ground_truth_failures.push(event);
    }

    /// Appends a checkpoint-fallback event.
    pub fn push_ckpt_fallback(&mut self, event: CheckpointFallbackEvent) {
        self.ckpt_fallbacks.push(event);
    }

    /// All job accounting records, in completion order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// All health events, in detection order.
    pub fn health_events(&self) -> &[HealthEvent] {
        &self.health_events
    }

    /// All node lifecycle events.
    pub fn node_events(&self) -> &[NodeEvent] {
        &self.node_events
    }

    /// All user node exclusions.
    pub fn exclusions(&self) -> &[ExclusionEvent] {
        &self.exclusions
    }

    /// Ground-truth failure injections (not available to "operators";
    /// used to validate attribution and detection).
    pub fn ground_truth_failures(&self) -> &[FailureEvent] {
        &self.ground_truth_failures
    }

    /// All checkpoint-fallback events, in occurrence order.
    pub fn ckpt_fallbacks(&self) -> &[CheckpointFallbackEvent] {
        &self.ckpt_fallbacks
    }

    /// Health events on `node` within `[from, to]`, in time order.
    ///
    /// Builds a per-node index on first use; call
    /// [`Self::build_indexes`] once after loading to pay the cost upfront.
    pub fn health_events_for_node(
        &mut self,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&HealthEvent> {
        self.build_indexes();
        let index = self.node_health_index.as_ref().expect("index built above");
        match index.get(&node) {
            Some(idxs) => idxs
                .iter()
                .map(|&i| &self.health_events[i])
                .filter(|e| e.at >= from && e.at <= to)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Builds the per-node health-event index if absent.
    pub fn build_indexes(&mut self) {
        if self.node_health_index.is_some() {
            return;
        }
        let mut index: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, e) in self.health_events.iter().enumerate() {
            index.entry(e.node).or_default().push(i);
        }
        self.node_health_index = Some(index);
    }

    /// Seals the store into an immutable, fully-indexed
    /// [`TelemetryView`](crate::view::TelemetryView).
    ///
    /// Sealing consumes the writer: after this point no events can be
    /// appended, window queries are `&self` binary searches, and the view
    /// can be shared freely across analyses and threads.
    pub fn seal(self) -> crate::view::TelemetryView {
        crate::view::TelemetryView::from_parts(
            self.cluster_name,
            self.num_nodes,
            self.horizon,
            self.jobs,
            self.health_events,
            self.node_events,
            self.exclusions,
            self.ground_truth_failures,
            self.ckpt_fallbacks,
            self.gpu_swaps,
        )
    }

    /// Total node-days of job runtime across all records (the failure-rate
    /// denominator), restricted to jobs using more than `min_gpus` GPUs.
    pub fn node_days_of_runtime(&self, min_gpus: u32) -> f64 {
        self.jobs
            .iter()
            .filter(|r| r.gpus > min_gpus)
            .map(|r| r.node_days())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_failure::modes::Severity;
    use rsc_health::check::CheckKind;
    use rsc_sched::job::{JobStatus, QosClass};

    fn health_event(node: u32, at_secs: u64) -> HealthEvent {
        HealthEvent {
            at: SimTime::from_secs(at_secs),
            node: NodeId::new(node),
            check: CheckKind::IbLink,
            severity: Severity::High,
            signal: None,
            false_positive: false,
        }
    }

    fn job_record(gpus: u32, nodes: u32, hours: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(1),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: (0..nodes).map(NodeId::new).collect(),
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status: JobStatus::Completed,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn window_query_filters_by_node_and_time() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(1, 100));
        store.push_health_event(health_event(1, 200));
        store.push_health_event(health_event(2, 150));
        let hits = store.health_events_for_node(
            NodeId::new(1),
            SimTime::from_secs(150),
            SimTime::from_secs(300),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].at, SimTime::from_secs(200));
    }

    #[test]
    fn index_invalidated_on_push() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(1, 100));
        let _ = store.health_events_for_node(NodeId::new(1), SimTime::ZERO, SimTime::MAX);
        store.push_health_event(health_event(1, 500));
        let hits = store.health_events_for_node(NodeId::new(1), SimTime::ZERO, SimTime::MAX);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn node_days_filters_small_jobs() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_job(job_record(8, 1, 24)); // 1 node-day
        store.push_job(job_record(256, 32, 24)); // 32 node-days
        assert!((store.node_days_of_runtime(0) - 33.0).abs() < 1e-12);
        assert!((store.node_days_of_runtime(128) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_query_is_empty() {
        let mut store = TelemetryStore::new("t", 4);
        assert!(store
            .health_events_for_node(NodeId::new(3), SimTime::ZERO, SimTime::MAX)
            .is_empty());
    }
}
