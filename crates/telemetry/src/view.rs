//! The immutable, fully-indexed read side of the telemetry pipeline.
//!
//! [`TelemetryStore`] is the append-only writer the simulation driver fills;
//! sealing it produces a [`TelemetryView`]: a frozen copy of every stream
//! plus per-node, time-sorted indexes built exactly once. Window queries on
//! the view are `&self` binary searches, so any number of analyses — or
//! threads, the view is `Send + Sync` — can share one sealed run.

use std::collections::HashMap;

use rsc_cluster::ids::NodeId;
use rsc_failure::injector::FailureEvent;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sim_core::time::SimTime;

use crate::store::{
    CheckpointFallbackEvent, ControlActionEvent, ExclusionEvent, NodeEvent, TelemetryStore,
};

/// An immutable, sealed view over one run's telemetry.
///
/// Constructed by [`TelemetryStore::seal`] or by loading a snapshot
/// ([`crate::snapshot`]). All accessors take `&self`; the per-node health
/// index is built once at seal time and never invalidated.
#[derive(Debug, Clone)]
pub struct TelemetryView {
    cluster_name: String,
    num_nodes: u32,
    horizon: SimTime,
    jobs: Vec<JobRecord>,
    health_events: Vec<HealthEvent>,
    node_events: Vec<NodeEvent>,
    exclusions: Vec<ExclusionEvent>,
    ground_truth_failures: Vec<FailureEvent>,
    ckpt_fallbacks: Vec<CheckpointFallbackEvent>,
    control_actions: Vec<ControlActionEvent>,
    gpu_swaps: u64,
    /// Chain heads of the seven streams (jobs, health, node events,
    /// exclusions, failures, ckpt fallbacks, control actions) — the
    /// running content-hash digests computed by the segmented store at
    /// seal time. Independent of the segment capacity the run used.
    chain_heads: [u64; 7],
    /// Per node: indices into `health_events`, sorted by (time, position).
    node_health_index: HashMap<NodeId, Vec<usize>>,
}

/// Below this many health events the seal-time index is built serially:
/// thread spawn overhead would dominate the scan.
const PARALLEL_SEAL_MIN_EVENTS: usize = 1 << 14;

/// Builds the per-node health index serially (the reference path).
fn build_health_index_serial(health_events: &[HealthEvent]) -> HashMap<NodeId, Vec<usize>> {
    let mut index: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, e) in health_events.iter().enumerate() {
        index.entry(e.node).or_default().push(i);
    }
    for idxs in index.values_mut() {
        // Stable by (time, insertion position) so equal timestamps keep
        // their detection order and the sort is deterministic.
        idxs.sort_by_key(|&i| (health_events[i].at, i));
    }
    index
}

/// Builds the per-node health index, sharding the node-id space across
/// worker threads for large event streams.
///
/// Shards are contiguous node-id ranges, so whole pods land in one shard
/// (pods are contiguous id ranges in [`rsc_cluster::topology`]). Each
/// worker scans the full event stream but indexes only its own nodes, so
/// the shard maps are disjoint and the merged result is identical to the
/// serial build — same keys, same sorted index vectors — for every worker
/// count, including 1. Worker count follows the `ScenarioRunner`
/// convention in `rsc-sim`: one thread per available core.
fn build_health_index(
    num_nodes: u32,
    health_events: &[HealthEvent],
) -> HashMap<NodeId, Vec<usize>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if health_events.len() < PARALLEL_SEAL_MIN_EVENTS || workers < 2 || num_nodes == 0 {
        return build_health_index_serial(health_events);
    }
    let shards = workers.min(num_nodes as usize);
    let per_shard = (num_nodes as usize).div_ceil(shards);
    // Out-of-range node ids (never produced by the driver, but accepted by
    // the store) clamp into the last shard so no event is ever dropped.
    let shard_of = |node: NodeId| (node.index() as usize / per_shard).min(shards - 1);
    let mut partials: Vec<HashMap<NodeId, Vec<usize>>> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                scope.spawn(move || {
                    let mut index: HashMap<NodeId, Vec<usize>> = HashMap::new();
                    for (i, e) in health_events.iter().enumerate() {
                        if shard_of(e.node) == s {
                            index.entry(e.node).or_default().push(i);
                        }
                    }
                    for idxs in index.values_mut() {
                        idxs.sort_by_key(|&i| (health_events[i].at, i));
                    }
                    index
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("seal shard worker panicked"));
        }
    });
    let mut index: HashMap<NodeId, Vec<usize>> =
        HashMap::with_capacity(partials.iter().map(HashMap::len).sum());
    for partial in partials {
        index.extend(partial);
    }
    index
}

impl TelemetryView {
    /// Builds a view from the parts of a consumed store.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cluster_name: String,
        num_nodes: u32,
        horizon: SimTime,
        jobs: Vec<JobRecord>,
        health_events: Vec<HealthEvent>,
        node_events: Vec<NodeEvent>,
        exclusions: Vec<ExclusionEvent>,
        ground_truth_failures: Vec<FailureEvent>,
        ckpt_fallbacks: Vec<CheckpointFallbackEvent>,
        control_actions: Vec<ControlActionEvent>,
        gpu_swaps: u64,
        chain_heads: [u64; 7],
    ) -> Self {
        let index = build_health_index(num_nodes, &health_events);
        TelemetryView {
            cluster_name,
            num_nodes,
            horizon,
            jobs,
            health_events,
            node_events,
            exclusions,
            ground_truth_failures,
            ckpt_fallbacks,
            control_actions,
            gpu_swaps,
            chain_heads,
            node_health_index: index,
        }
    }

    /// Chain heads of the seven streams, in snapshot section order: jobs,
    /// health, node events, exclusions, failures, ckpt fallbacks, control
    /// actions. Two views of the same records have the same heads
    /// regardless of the segment capacity (or spill setting) their stores
    /// ran with.
    pub fn chain_heads(&self) -> [u64; 7] {
        self.chain_heads
    }

    /// The cluster this telemetry came from.
    pub fn cluster_name(&self) -> &str {
        &self.cluster_name
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// End of the measurement window.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Total GPU swaps performed by repairs over the run.
    pub fn gpu_swaps(&self) -> u64 {
        self.gpu_swaps
    }

    /// All job accounting records, in completion order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// All health events, in detection order.
    pub fn health_events(&self) -> &[HealthEvent] {
        &self.health_events
    }

    /// All node lifecycle events.
    pub fn node_events(&self) -> &[NodeEvent] {
        &self.node_events
    }

    /// All user node exclusions.
    pub fn exclusions(&self) -> &[ExclusionEvent] {
        &self.exclusions
    }

    /// Ground-truth failure injections (not available to "operators";
    /// used to validate attribution and detection).
    pub fn ground_truth_failures(&self) -> &[FailureEvent] {
        &self.ground_truth_failures
    }

    /// All checkpoint-fallback events, in occurrence order.
    pub fn ckpt_fallbacks(&self) -> &[CheckpointFallbackEvent] {
        &self.ckpt_fallbacks
    }

    /// All closed-loop control actions, in drain order. Empty for every
    /// open-loop (controller-free) run.
    pub fn control_actions(&self) -> &[ControlActionEvent] {
        &self.control_actions
    }

    /// Health events on `node` within `[from, to]`, in time order.
    ///
    /// A binary search over the per-node index built at seal time — no
    /// mutation, no lazy state, safe to call from many threads at once.
    pub fn health_events_for_node(
        &self,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<&HealthEvent> {
        let Some(idxs) = self.node_health_index.get(&node) else {
            return Vec::new();
        };
        let lo = idxs.partition_point(|&i| self.health_events[i].at < from);
        let hi = idxs.partition_point(|&i| self.health_events[i].at <= to);
        idxs[lo..hi]
            .iter()
            .map(|&i| &self.health_events[i])
            .collect()
    }

    /// Total node-days of job runtime across all records (the failure-rate
    /// denominator), restricted to jobs using more than `min_gpus` GPUs.
    pub fn node_days_of_runtime(&self, min_gpus: u32) -> f64 {
        self.jobs
            .iter()
            .filter(|r| r.gpus > min_gpus)
            .map(|r| r.node_days())
            .sum()
    }

    /// Copies the view's streams back into an append-only store, e.g. to
    /// derive a modified scenario from a loaded snapshot.
    pub fn to_store(&self) -> TelemetryStore {
        let mut store = TelemetryStore::new(self.cluster_name.clone(), self.num_nodes);
        store.set_horizon(self.horizon);
        store.set_gpu_swaps(self.gpu_swaps);
        store.extend_jobs(self.jobs.iter().cloned());
        for e in &self.health_events {
            store.push_health_event(*e);
        }
        for e in &self.node_events {
            store.push_node_event(*e);
        }
        for e in &self.exclusions {
            store.push_exclusion(*e);
        }
        for e in &self.ground_truth_failures {
            store.push_ground_truth(*e);
        }
        for e in &self.ckpt_fallbacks {
            store.push_ckpt_fallback(*e);
        }
        for e in &self.control_actions {
            store.push_control_action(*e);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_failure::modes::Severity;
    use rsc_health::check::CheckKind;
    use rsc_sched::job::{JobStatus, QosClass};

    fn health_event(node: u32, at_secs: u64) -> HealthEvent {
        HealthEvent {
            at: SimTime::from_secs(at_secs),
            node: NodeId::new(node),
            check: CheckKind::IbLink,
            severity: Severity::High,
            signal: None,
            false_positive: false,
        }
    }

    fn job_record(gpus: u32, nodes: u32, hours: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(1),
            attempt: 0,
            run: None,
            gpus,
            qos: QosClass::Normal,
            nodes: (0..nodes).map(NodeId::new).collect(),
            enqueued_at: SimTime::ZERO,
            started_at: Some(SimTime::ZERO),
            ended_at: SimTime::from_hours(hours),
            status: JobStatus::Completed,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn sealed_window_query_matches_store() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(1, 100));
        store.push_health_event(health_event(1, 200));
        store.push_health_event(health_event(2, 150));
        store.push_health_event(health_event(1, 150));
        let mut mutable = store.clone();
        let expect: Vec<HealthEvent> = mutable
            .health_events_for_node(
                NodeId::new(1),
                SimTime::from_secs(120),
                SimTime::from_secs(300),
            )
            .into_iter()
            .copied()
            .collect();
        let view = store.seal();
        let got: Vec<HealthEvent> = view
            .health_events_for_node(
                NodeId::new(1),
                SimTime::from_secs(120),
                SimTime::from_secs(300),
            )
            .into_iter()
            .copied()
            .collect();
        assert_eq!(got.len(), 2);
        // The sealed index is time-sorted; the store returns insertion
        // order, which for the driver is also time order.
        let mut expect_sorted = expect;
        expect_sorted.sort_by_key(|e| e.at);
        assert_eq!(got, expect_sorted);
    }

    #[test]
    fn window_bounds_are_inclusive() {
        let mut store = TelemetryStore::new("t", 4);
        store.push_health_event(health_event(3, 100));
        store.push_health_event(health_event(3, 200));
        store.push_health_event(health_event(3, 300));
        let view = store.seal();
        let hits = view.health_events_for_node(
            NodeId::new(3),
            SimTime::from_secs(100),
            SimTime::from_secs(300),
        );
        assert_eq!(hits.len(), 3);
        let hits = view.health_events_for_node(
            NodeId::new(3),
            SimTime::from_secs(101),
            SimTime::from_secs(299),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unknown_node_query_is_empty() {
        let view = TelemetryStore::new("t", 4).seal();
        assert!(view
            .health_events_for_node(NodeId::new(3), SimTime::ZERO, SimTime::MAX)
            .is_empty());
    }

    #[test]
    fn scalars_and_streams_survive_sealing() {
        let mut store = TelemetryStore::new("rsc-test", 8);
        store.set_horizon(SimTime::from_hours(10));
        store.set_gpu_swaps(3);
        store.push_job(job_record(8, 1, 24));
        store.push_health_event(health_event(1, 60));
        let view = store.seal();
        assert_eq!(view.cluster_name(), "rsc-test");
        assert_eq!(view.num_nodes(), 8);
        assert_eq!(view.horizon(), SimTime::from_hours(10));
        assert_eq!(view.gpu_swaps(), 3);
        assert_eq!(view.jobs().len(), 1);
        assert_eq!(view.health_events().len(), 1);
        assert!((view.node_days_of_runtime(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_store_round_trips_all_streams() {
        let mut store = TelemetryStore::new("t", 4);
        store.set_horizon(SimTime::from_hours(1));
        store.push_job(job_record(8, 1, 1));
        store.push_health_event(health_event(1, 10));
        let view = store.clone().seal();
        let back = view.to_store();
        assert!(back.jobs().eq(store.jobs()));
        assert!(back.health_events().eq(store.health_events()));
        assert_eq!(back.horizon(), store.horizon());
    }

    #[test]
    fn sharded_index_matches_serial_on_large_stream() {
        // Enough events to cross PARALLEL_SEAL_MIN_EVENTS, with adversarial
        // ordering: duplicate timestamps, interleaved nodes, and one id
        // beyond num_nodes (clamps into the last shard, never dropped).
        let num_nodes = 64;
        let count = super::PARALLEL_SEAL_MIN_EVENTS + 1000;
        let mut x: u64 = 9;
        let events: Vec<HealthEvent> = (0..count)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let node = (x >> 33) % (num_nodes as u64 + 2);
                let at = (x >> 11) % 512;
                health_event(node as u32, at)
            })
            .collect();
        let serial = super::build_health_index_serial(&events);
        let sharded = super::build_health_index(num_nodes, &events);
        assert_eq!(serial, sharded);
        let total: usize = sharded.values().map(Vec::len).sum();
        assert_eq!(total, count);
        for idxs in sharded.values() {
            assert!(idxs
                .windows(2)
                .all(|w| (events[w[0]].at, w[0]) < (events[w[1]].at, w[1])));
        }
    }

    #[test]
    fn view_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TelemetryView>();
    }
}
